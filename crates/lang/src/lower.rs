//! Lowering from the mini-C AST to MIR.
//!
//! Lowering follows the LLVM `-O0` discipline the DiscoPoP instrumentation
//! pass relies on: every variable read becomes a `load`, every write a
//! `store`, and control regions (loops, branches) are delimited with
//! `RegionEnter`/`RegionExit`/`LoopIter` marker instructions so the
//! interpreter can emit control-structure events without CFG re-analysis.

use crate::ast::*;
use crate::CompileError;
use mir::{
    BinOp, FunctionBuilder, Instr, ModuleBuilder, Operand, Place, RegionId, RegionKind, Terminator,
    UnOp, Value, VarRef,
};
use std::collections::HashMap;

/// What a name resolves to.
#[derive(Debug, Clone, Copy)]
enum Binding {
    Global(mir::GlobalId, Type, u64),
    Local(mir::LocalId, Type, u64),
}

impl Binding {
    fn ty(&self) -> Type {
        match self {
            Binding::Global(_, t, _) | Binding::Local(_, t, _) => *t,
        }
    }
    fn elems(&self) -> u64 {
        match self {
            Binding::Global(_, _, e) | Binding::Local(_, _, e) => *e,
        }
    }
    fn var_ref(&self) -> VarRef {
        match self {
            Binding::Global(g, _, _) => VarRef::Global(*g),
            Binding::Local(l, _, _) => VarRef::Local(*l),
        }
    }
}

/// User-function signature used during lowering.
#[derive(Debug, Clone)]
struct Sig {
    index: usize,
    params: Vec<Type>,
    ret: Option<Type>,
}

/// Builtin signature: fixed parameter types and optional return.
struct Builtin {
    params: &'static [Type],
    ret: Option<Type>,
    variadic: bool,
}

fn builtin(name: &str) -> Option<Builtin> {
    use Type::*;
    let b = |params: &'static [Type], ret: Option<Type>| {
        Some(Builtin {
            params,
            ret,
            variadic: false,
        })
    };
    match name {
        "print" => Some(Builtin {
            params: &[],
            ret: None,
            variadic: true,
        }),
        "sqrt" | "sin" | "cos" | "exp" | "log" | "fabs" | "floor" | "ceil" => {
            b(&[Float], Some(Float))
        }
        "pow" | "fmin" | "fmax" => b(&[Float, Float], Some(Float)),
        "abs" => b(&[Int], Some(Int)),
        "min" | "max" => b(&[Int, Int], Some(Int)),
        "rand" => b(&[], Some(Int)),
        "frand" => b(&[], Some(Float)),
        "srand" => b(&[Int], None),
        "tid" => b(&[], Some(Int)),
        "lock" | "unlock" => b(&[Int], None),
        "join" => b(&[Int], None),
        // Actor mailboxes: `send(actor, value)` blocks when the target's
        // bounded mailbox is full; `receive()` blocks until a message
        // arrives in the calling actor's own mailbox.
        "send" => b(&[Int, Int], None),
        "receive" => b(&[], Some(Int)),
        _ => None,
    }
}

/// Lower a parsed [`Program`] to a MIR [`mir::Module`].
pub fn lower(prog: &Program, module_name: &str) -> Result<mir::Module, CompileError> {
    let mut mb = ModuleBuilder::new(module_name);
    let mut globals: HashMap<String, Binding> = HashMap::new();
    for g in &prog.globals {
        if globals.contains_key(&g.name) {
            return Err(CompileError::new(
                g.line,
                format!("duplicate global `{}`", g.name),
            ));
        }
        let id = mb.global(&g.name, g.ty.to_ir(), g.elems, g.line);
        globals.insert(g.name.clone(), Binding::Global(id, g.ty, g.elems));
    }
    let mut sigs: HashMap<String, Sig> = HashMap::new();
    for (i, f) in prog.functions.iter().enumerate() {
        if sigs.contains_key(&f.name) {
            return Err(CompileError::new(
                f.line,
                format!("duplicate function `{}`", f.name),
            ));
        }
        if builtin(&f.name).is_some() || f.name == "spawn" || f.name == "spawn_actor" {
            return Err(CompileError::new(
                f.line,
                format!("`{}` shadows a builtin", f.name),
            ));
        }
        sigs.insert(
            f.name.clone(),
            Sig {
                index: i,
                params: f.params.iter().map(|(_, t)| *t).collect(),
                ret: f.ret,
            },
        );
    }
    for f in &prog.functions {
        let func = FnLower::new(&globals, &sigs, f).run()?;
        mb.add_function(func);
    }
    Ok(mb.build())
}

struct FnLower<'a> {
    fb: FunctionBuilder,
    globals: &'a HashMap<String, Binding>,
    sigs: &'a HashMap<String, Sig>,
    decl: &'a FuncDecl,
    scopes: Vec<HashMap<String, Binding>>,
    /// Stack of `(continue_target, break_target)`.
    loops: Vec<(mir::BlockId, mir::BlockId)>,
    regions: Vec<RegionId>,
}

impl<'a> FnLower<'a> {
    fn new(
        globals: &'a HashMap<String, Binding>,
        sigs: &'a HashMap<String, Sig>,
        decl: &'a FuncDecl,
    ) -> Self {
        let fb = FunctionBuilder::new(&decl.name, decl.ret.map(Type::to_ir), decl.line);
        FnLower {
            fb,
            globals,
            sigs,
            decl,
            scopes: vec![HashMap::new()],
            loops: Vec::new(),
            regions: Vec::new(),
        }
    }

    fn run(mut self) -> Result<mir::Function, CompileError> {
        self.regions.push(self.fb.body_region());
        for (name, ty) in &self.decl.params {
            let id = self.fb.param(name, ty.to_ir(), self.decl.line);
            self.bind(name.clone(), Binding::Local(id, *ty, 1), self.decl.line)?;
        }
        self.lower_block_stmts(&self.decl.body)?;
        // Implicit return (zero for value-returning functions, C-style).
        if self.fb.is_open() {
            let term = match self.decl.ret {
                None => Terminator::Return(None),
                Some(t) => Terminator::Return(Some(Operand::Const(Value::zero(t.to_ir())))),
            };
            self.fb.terminate(term);
        }
        // Seal any dead blocks left open (e.g. merge blocks after both arms
        // returned) so the verifier's terminator check passes; they are
        // unreachable at runtime.
        let end = self.decl.end_line;
        let f = self.fb.function_mut();
        for b in &mut f.blocks {
            if matches!(b.term, Terminator::Unreachable) {
                b.term = match f.ret_ty {
                    None => Terminator::Return(None),
                    Some(t) => Terminator::Return(Some(Operand::Const(Value::zero(t)))),
                };
            }
        }
        Ok(self.fb.build(end))
    }

    fn cur_region(&self) -> RegionId {
        *self.regions.last().expect("region stack never empty")
    }

    fn bind(&mut self, name: String, b: Binding, line: u32) -> Result<(), CompileError> {
        let scope = self.scopes.last_mut().expect("scope stack never empty");
        if scope.contains_key(&name) {
            return Err(CompileError::new(
                line,
                format!("`{name}` already declared in this scope"),
            ));
        }
        scope.insert(name, b);
        Ok(())
    }

    fn lookup(&self, name: &str, line: u32) -> Result<Binding, CompileError> {
        for scope in self.scopes.iter().rev() {
            if let Some(b) = scope.get(name) {
                return Ok(*b);
            }
        }
        self.globals
            .get(name)
            .copied()
            .ok_or_else(|| CompileError::new(line, format!("unknown variable `{name}`")))
    }

    /// Lower the statements of a block inside a fresh lexical scope.
    fn lower_block_stmts(&mut self, blk: &Block) -> Result<(), CompileError> {
        self.scopes.push(HashMap::new());
        for s in &blk.stmts {
            if !self.fb.is_open() {
                break; // dead code after return/break/continue
            }
            self.stmt(s)?;
        }
        self.scopes.pop();
        Ok(())
    }

    fn stmt(&mut self, s: &Stmt) -> Result<(), CompileError> {
        match s {
            Stmt::Decl {
                name,
                ty,
                elems,
                init,
                line,
            } => {
                let region = if self.cur_region() == self.fb.body_region() {
                    None
                } else {
                    Some(self.cur_region())
                };
                let id = self.fb.local(name, ty.to_ir(), *elems, *line, region);
                self.bind(name.clone(), Binding::Local(id, *ty, *elems), *line)?;
                if let Some(e) = init {
                    if *elems > 1 {
                        return Err(CompileError::new(*line, "array initializers not supported"));
                    }
                    let (v, vty) = self.expr(e)?;
                    let v = self.coerce(v, vty, *ty, *line);
                    self.fb.store(Place::scalar(VarRef::Local(id)), v, *line);
                }
                Ok(())
            }
            Stmt::Assign {
                target,
                op,
                value,
                line,
            } => self.assign(target, *op, value, *line),
            Stmt::Return { value, line } => {
                match (self.decl.ret, value) {
                    (None, None) => self.fb.terminate(Terminator::Return(None)),
                    (Some(rt), Some(e)) => {
                        let (v, vty) = self.expr(e)?;
                        let v = self.coerce(v, vty, rt, *line);
                        self.fb.terminate(Terminator::Return(Some(v)));
                    }
                    (None, Some(_)) => {
                        return Err(CompileError::new(*line, "void function returns a value"))
                    }
                    (Some(_), None) => {
                        return Err(CompileError::new(*line, "missing return value"))
                    }
                }
                Ok(())
            }
            Stmt::Break { line } => {
                let (_, brk) = *self
                    .loops
                    .last()
                    .ok_or_else(|| CompileError::new(*line, "`break` outside loop"))?;
                self.fb.terminate(Terminator::Jump(brk));
                Ok(())
            }
            Stmt::Continue { line } => {
                let (cont, _) = *self
                    .loops
                    .last()
                    .ok_or_else(|| CompileError::new(*line, "`continue` outside loop"))?;
                self.fb.terminate(Terminator::Jump(cont));
                Ok(())
            }
            Stmt::ExprStmt { expr, line } => {
                match expr {
                    Expr::Call { name, args, line } => {
                        self.call(name, args, *line, true)?;
                    }
                    _ => {
                        // Evaluate for effect (loads still profile).
                        self.expr(expr)
                            .map(|_| ())
                            .map_err(|e| CompileError::new(*line, e.message))?;
                    }
                }
                Ok(())
            }
            Stmt::Block(b) => self.lower_block_stmts(b),
            Stmt::If {
                cond,
                then_blk,
                else_blk,
                line,
                end_line,
            } => self.if_stmt(cond, then_blk, else_blk.as_ref(), *line, *end_line),
            Stmt::While {
                cond,
                body,
                line,
                end_line,
            } => self.loop_stmt(None, Some(cond), None, body, *line, *end_line),
            Stmt::For {
                init,
                cond,
                step,
                body,
                line,
                end_line,
            } => self.loop_stmt(
                init.as_deref(),
                cond.as_ref(),
                step.as_deref(),
                body,
                *line,
                *end_line,
            ),
        }
    }

    fn assign(
        &mut self,
        target: &LValue,
        op: Option<BinOp>,
        value: &Expr,
        line: u32,
    ) -> Result<(), CompileError> {
        let b = self.lookup(&target.name, line)?;
        let place = match &target.index {
            Some(ix) => {
                if b.elems() <= 1 {
                    return Err(CompileError::new(
                        line,
                        format!("`{}` is not an array", target.name),
                    ));
                }
                let (iv, ity) = self.expr(ix)?;
                let iv = self.coerce(iv, ity, Type::Int, line);
                Place::indexed(b.var_ref(), iv)
            }
            None => {
                if b.elems() > 1 {
                    return Err(CompileError::new(
                        line,
                        format!("array `{}` assigned without index", target.name),
                    ));
                }
                Place::scalar(b.var_ref())
            }
        };
        let tty = b.ty();
        let rhs = match op {
            None => {
                let (v, vty) = self.expr(value)?;
                self.coerce(v, vty, tty, line)
            }
            Some(binop) => {
                let cur = self.fb.load(place, line);
                let (v, vty) = self.expr(value)?;
                let common = if tty == Type::Float || vty == Type::Float {
                    Type::Float
                } else {
                    Type::Int
                };
                let lhs = self.coerce(Operand::Reg(cur), tty, common, line);
                let v = self.coerce(v, vty, common, line);
                let r = self.fb.bin(binop, lhs, v, line);
                self.coerce(Operand::Reg(r), common, tty, line)
            }
        };
        self.fb.store(place, rhs, line);
        Ok(())
    }

    fn if_stmt(
        &mut self,
        cond: &Expr,
        then_blk: &Block,
        else_blk: Option<&Block>,
        line: u32,
        end_line: u32,
    ) -> Result<(), CompileError> {
        let region = self
            .fb
            .region(RegionKind::Branch, line, end_line, self.cur_region());
        self.fb.push(Instr::RegionEnter { region, line });
        let (c, _) = self.expr(cond)?;
        let then_bb = self.fb.new_block();
        let merge = self.fb.new_block();
        let else_bb = if else_blk.is_some() {
            self.fb.new_block()
        } else {
            merge
        };
        self.fb.terminate(Terminator::Branch {
            cond: c,
            then_bb,
            else_bb,
        });

        self.regions.push(region);
        self.fb.switch_to(then_bb);
        self.lower_block_stmts(then_blk)?;
        self.fb.terminate_if_open(Terminator::Jump(merge));
        if let Some(eb) = else_blk {
            self.fb.switch_to(else_bb);
            self.lower_block_stmts(eb)?;
            self.fb.terminate_if_open(Terminator::Jump(merge));
        }
        self.regions.pop();

        self.fb.switch_to(merge);
        self.fb.push(Instr::RegionExit {
            region,
            line: end_line,
        });
        Ok(())
    }

    /// Shared lowering for `while` (no init/step) and `for`.
    fn loop_stmt(
        &mut self,
        init: Option<&Stmt>,
        cond: Option<&Expr>,
        step: Option<&Stmt>,
        body: &Block,
        line: u32,
        end_line: u32,
    ) -> Result<(), CompileError> {
        let region = self
            .fb
            .region(RegionKind::Loop, line, end_line, self.cur_region());
        self.fb.push(Instr::RegionEnter { region, line });
        // The loop region opens before `init` so the induction variable is
        // scoped (and lifetime-bound) to the loop.
        self.regions.push(region);
        self.scopes.push(HashMap::new());
        if let Some(s) = init {
            self.stmt(s)?;
        }
        let cond_bb = self.fb.new_block();
        let body_bb = self.fb.new_block();
        let exit_bb = self.fb.new_block();
        let step_bb = if step.is_some() {
            self.fb.new_block()
        } else {
            cond_bb
        };
        self.fb.terminate(Terminator::Jump(cond_bb));

        self.fb.switch_to(cond_bb);
        // The iteration context opens before the condition is evaluated so
        // the condition's own reads belong to the iteration they guard.
        self.fb.push(Instr::LoopIter { region, line });
        let c = match cond {
            Some(e) => self.expr(e)?.0,
            None => Operand::Const(Value::I64(1)),
        };
        self.fb.terminate(Terminator::Branch {
            cond: c,
            then_bb: body_bb,
            else_bb: exit_bb,
        });

        self.fb.switch_to(body_bb);
        self.fb.push(Instr::LoopBody { region, line });
        self.loops.push((step_bb, exit_bb));
        self.lower_block_stmts(body)?;
        self.loops.pop();
        self.fb.terminate_if_open(Terminator::Jump(step_bb));

        if let Some(s) = step {
            self.fb.switch_to(step_bb);
            self.stmt(s)?;
            self.fb.terminate_if_open(Terminator::Jump(cond_bb));
        }

        self.scopes.pop();
        self.regions.pop();
        self.fb.switch_to(exit_bb);
        self.fb.push(Instr::RegionExit {
            region,
            line: end_line,
        });
        Ok(())
    }

    /// Lower a call in statement (`as_stmt`) or expression position.
    /// Returns the result operand and type for expression position.
    fn call(
        &mut self,
        name: &str,
        args: &[Expr],
        line: u32,
        as_stmt: bool,
    ) -> Result<Option<(Operand, Type)>, CompileError> {
        // `spawn(worker, arg…)` / `spawn_actor(worker, arg…)` — resolve
        // the callee statically. Both return the new thread/actor id;
        // `spawn_actor` marks the child as a mailbox-owning actor.
        if name == "spawn" || name == "spawn_actor" {
            let Some(Expr::Var(fname, _)) = args.first() else {
                return Err(CompileError::new(
                    line,
                    format!("first argument of `{name}` must be a function name"),
                ));
            };
            let sig = self.sigs.get(fname).ok_or_else(|| {
                CompileError::new(line, format!("unknown function `{fname}` in {name}"))
            })?;
            if args.len() - 1 != sig.params.len() {
                return Err(CompileError::new(
                    line,
                    format!(
                        "{name} of `{fname}`: expected {} args, got {}",
                        sig.params.len(),
                        args.len() - 1
                    ),
                ));
            }
            let mut ops = vec![Operand::Const(Value::I64(sig.index as i64))];
            let ptys = sig.params.clone();
            for (a, pty) in args[1..].iter().zip(ptys) {
                let (v, vty) = self.expr(a)?;
                ops.push(self.coerce(v, vty, pty, line));
            }
            let dst = self.fb.call(name, ops, true, line);
            return Ok(Some((Operand::Reg(dst.unwrap()), Type::Int)));
        }

        if let Some(sig) = self.sigs.get(name).cloned() {
            if args.len() != sig.params.len() {
                return Err(CompileError::new(
                    line,
                    format!(
                        "`{name}` expects {} args, got {}",
                        sig.params.len(),
                        args.len()
                    ),
                ));
            }
            let mut ops = Vec::with_capacity(args.len());
            for (a, pty) in args.iter().zip(&sig.params) {
                let (v, vty) = self.expr(a)?;
                ops.push(self.coerce(v, vty, *pty, line));
            }
            let has_result = sig.ret.is_some();
            let dst = self.fb.call(name, ops, has_result, line);
            return match (sig.ret, as_stmt) {
                (Some(t), _) => Ok(Some((Operand::Reg(dst.unwrap()), t))),
                (None, true) => Ok(None),
                (None, false) => Err(CompileError::new(
                    line,
                    format!("void function `{name}` used as a value"),
                )),
            };
        }

        if let Some(b) = builtin(name) {
            if !b.variadic && args.len() != b.params.len() {
                return Err(CompileError::new(
                    line,
                    format!(
                        "builtin `{name}` expects {} args, got {}",
                        b.params.len(),
                        args.len()
                    ),
                ));
            }
            let mut ops = Vec::with_capacity(args.len());
            for (i, a) in args.iter().enumerate() {
                let (v, vty) = self.expr(a)?;
                let v = if b.variadic {
                    v
                } else {
                    self.coerce(v, vty, b.params[i], line)
                };
                ops.push(v);
            }
            let has_result = b.ret.is_some();
            let dst = self.fb.call(name, ops, has_result, line);
            return match (b.ret, as_stmt) {
                (Some(t), _) => Ok(Some((Operand::Reg(dst.unwrap()), t))),
                (None, true) => Ok(None),
                (None, false) => Err(CompileError::new(
                    line,
                    format!("void builtin `{name}` used as a value"),
                )),
            };
        }

        Err(CompileError::new(
            line,
            format!("unknown function `{name}`"),
        ))
    }

    fn coerce(&mut self, v: Operand, from: Type, to: Type, line: u32) -> Operand {
        if from == to {
            return v;
        }
        // Fold constants directly.
        if let Operand::Const(c) = v {
            return Operand::Const(match to {
                Type::Int => Value::I64(c.as_i64()),
                Type::Float => Value::F64(c.as_f64()),
            });
        }
        let op = match to {
            Type::Float => UnOp::ToF64,
            Type::Int => UnOp::ToI64,
        };
        Operand::Reg(self.fb.un(op, v, line))
    }

    fn expr(&mut self, e: &Expr) -> Result<(Operand, Type), CompileError> {
        match e {
            Expr::Int(n, _) => Ok((Operand::Const(Value::I64(*n)), Type::Int)),
            Expr::Float(x, _) => Ok((Operand::Const(Value::F64(*x)), Type::Float)),
            Expr::Var(name, line) => {
                let b = self.lookup(name, *line)?;
                if b.elems() > 1 {
                    return Err(CompileError::new(
                        *line,
                        format!("array `{name}` used without index"),
                    ));
                }
                let r = self.fb.load(Place::scalar(b.var_ref()), *line);
                Ok((Operand::Reg(r), b.ty()))
            }
            Expr::Index(name, idx, line) => {
                let b = self.lookup(name, *line)?;
                if b.elems() <= 1 {
                    return Err(CompileError::new(
                        *line,
                        format!("`{name}` is not an array"),
                    ));
                }
                let (iv, ity) = self.expr(idx)?;
                let iv = self.coerce(iv, ity, Type::Int, *line);
                let r = self.fb.load(Place::indexed(b.var_ref(), iv), *line);
                Ok((Operand::Reg(r), b.ty()))
            }
            Expr::Un { op, expr, line } => {
                let (v, vty) = self.expr(expr)?;
                match op {
                    UnOpKind::Neg => {
                        let r = self.fb.un(UnOp::Neg, v, *line);
                        Ok((Operand::Reg(r), vty))
                    }
                    UnOpKind::Not => {
                        let v = self.coerce(v, vty, Type::Int, *line);
                        let r = self.fb.un(UnOp::Not, v, *line);
                        Ok((Operand::Reg(r), Type::Int))
                    }
                }
            }
            Expr::Bin { op, lhs, rhs, line } => {
                let (lv, lty) = self.expr(lhs)?;
                let (rv, rty) = self.expr(rhs)?;
                // Integer-only operators force int; otherwise promote to
                // float if either side is float.
                let int_only = matches!(
                    op,
                    BinOp::Rem | BinOp::And | BinOp::Or | BinOp::Xor | BinOp::Shl | BinOp::Shr
                );
                let common = if int_only {
                    Type::Int
                } else if lty == Type::Float || rty == Type::Float {
                    Type::Float
                } else {
                    Type::Int
                };
                let lv = self.coerce(lv, lty, common, *line);
                let rv = self.coerce(rv, rty, common, *line);
                let r = self.fb.bin(*op, lv, rv, *line);
                let result_ty = if op.is_cmp() { Type::Int } else { common };
                Ok((Operand::Reg(r), result_ty))
            }
            Expr::Call { name, args, line } => self
                .call(name, args, *line, false)?
                .ok_or_else(|| CompileError::new(*line, "void call used as a value")),
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::compile;
    use mir::{Instr, RegionKind};

    #[test]
    fn loop_region_markers_present() {
        let m = compile(
            "fn main() { int s = 0; for (int i = 0; i < 4; i = i + 1) { s = s + i; } }",
            "m",
        )
        .unwrap();
        let (_, f) = m.function("main").unwrap();
        let instrs: Vec<&Instr> = f.blocks.iter().flat_map(|b| b.instrs.iter()).collect();
        assert!(instrs
            .iter()
            .any(|i| matches!(i, Instr::RegionEnter { .. })));
        assert!(instrs.iter().any(|i| matches!(i, Instr::RegionExit { .. })));
        assert!(instrs.iter().any(|i| matches!(i, Instr::LoopIter { .. })));
        // Two regions: function body + loop.
        assert_eq!(f.regions.len(), 2);
        assert_eq!(f.regions[1].kind, RegionKind::Loop);
    }

    #[test]
    fn loop_induction_var_scoped_to_loop() {
        let m = compile("fn main() { for (int i = 0; i < 4; i = i + 1) { } }", "m").unwrap();
        let (_, f) = m.function("main").unwrap();
        let i_var = f.local_by_name("i").unwrap();
        assert_eq!(f.locals[i_var.index()].region, Some(mir::RegionId(1)));
        assert_eq!(f.regions[1].owned_locals, vec![i_var]);
    }

    #[test]
    fn compound_assign_loads_then_stores() {
        let m = compile("global int g; fn main() { g += 2; }", "m").unwrap();
        let (_, f) = m.function("main").unwrap();
        let instrs: Vec<&Instr> = f.blocks.iter().flat_map(|b| b.instrs.iter()).collect();
        let loads = instrs
            .iter()
            .filter(|i| matches!(i, Instr::Load { .. }))
            .count();
        let stores = instrs
            .iter()
            .filter(|i| matches!(i, Instr::Store { .. }))
            .count();
        assert_eq!(loads, 1);
        assert_eq!(stores, 1);
    }

    #[test]
    fn float_promotion() {
        let m = compile(
            "fn main() -> float { float x = 1.5; int y = 2; return x + y; }",
            "m",
        )
        .unwrap();
        let (_, f) = m.function("main").unwrap();
        let has_tof64 = f.blocks.iter().flat_map(|b| b.instrs.iter()).any(|i| {
            matches!(
                i,
                Instr::Un {
                    op: mir::UnOp::ToF64,
                    ..
                }
            )
        });
        assert!(has_tof64, "int operand must be promoted to f64");
    }

    #[test]
    fn spawn_resolves_function_index() {
        let m = compile(
            "fn worker(int x) { } fn main() { int t = spawn(worker, 3); join(t); }",
            "m",
        )
        .unwrap();
        let (_, f) = m.function("main").unwrap();
        let spawn = f
            .blocks
            .iter()
            .flat_map(|b| b.instrs.iter())
            .find_map(|i| match i {
                Instr::Call { func, args, .. } if func == "spawn" => Some(args.clone()),
                _ => None,
            })
            .expect("spawn call present");
        assert_eq!(spawn[0], mir::Operand::Const(mir::Value::I64(0)));
    }

    #[test]
    fn errors_reported() {
        assert!(compile("fn main() { x = 1; }", "m").is_err());
        assert!(compile("fn main() { int a[4]; a = 1; }", "m").is_err());
        assert!(compile("fn main() { break; }", "m").is_err());
        assert!(compile("fn main() { foo(); }", "m").is_err());
        assert!(compile("fn f() {} fn f() {}", "m").is_err());
        assert!(compile("fn main() { int x; int x; }", "m").is_err());
        assert!(compile("fn main() -> int { int v = nothing(); }", "m").is_err());
    }

    #[test]
    fn while_with_break_and_continue_compiles() {
        let m = compile(
            "fn main() -> int {
                int i = 0;
                int s = 0;
                while (1) {
                    i = i + 1;
                    if (i % 2 == 0) { continue; }
                    if (i > 9) { break; }
                    s = s + i;
                }
                return s;
            }",
            "m",
        )
        .unwrap();
        assert!(mir::verify_module(&m).is_empty());
    }

    #[test]
    fn nested_loops_have_nested_regions() {
        let m = compile(
            "fn main() {
                for (int i = 0; i < 2; i = i + 1) {
                    for (int j = 0; j < 2; j = j + 1) { }
                }
            }",
            "m",
        )
        .unwrap();
        let (_, f) = m.function("main").unwrap();
        assert_eq!(f.regions.len(), 3);
        assert_eq!(f.regions[2].parent, Some(mir::RegionId(1)));
    }
}
