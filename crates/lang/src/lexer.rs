//! Lexer for mini-C.

use crate::CompileError;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    // Literals and identifiers.
    Ident(String),
    Int(i64),
    Float(f64),
    // Keywords.
    KwGlobal,
    KwFn,
    KwInt,
    KwFloat,
    KwIf,
    KwElse,
    KwWhile,
    KwFor,
    KwReturn,
    KwBreak,
    KwContinue,
    // Punctuation.
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Comma,
    Semi,
    Arrow,
    Assign,
    PlusAssign,
    MinusAssign,
    StarAssign,
    SlashAssign,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Amp,
    Pipe,
    Caret,
    Shl,
    Shr,
    AmpAmp,
    PipePipe,
    Bang,
    EqEq,
    NotEq,
    Lt,
    Le,
    Gt,
    Ge,
}

/// A token with its 1-based source line.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub tok: Tok,
    pub line: u32,
}

/// Tokenize `source`. `//` line comments are skipped.
pub fn lex(source: &str) -> Result<Vec<Token>, CompileError> {
    let mut out = Vec::new();
    let bytes = source.as_bytes();
    let mut i = 0;
    let mut line: u32 = 1;
    let n = bytes.len();

    while i < n {
        let c = bytes[i] as char;
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            ' ' | '\t' | '\r' => i += 1,
            '/' if i + 1 < n && bytes[i + 1] == b'/' => {
                while i < n && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '0'..='9' => {
                let start = i;
                while i < n && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let mut is_float = false;
                if i + 1 < n && bytes[i] == b'.' && bytes[i + 1].is_ascii_digit() {
                    is_float = true;
                    i += 1;
                    while i < n && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                // Exponent part (e.g. 1e9, 2.5e-3).
                if i < n && (bytes[i] == b'e' || bytes[i] == b'E') {
                    let mut j = i + 1;
                    if j < n && (bytes[j] == b'+' || bytes[j] == b'-') {
                        j += 1;
                    }
                    if j < n && bytes[j].is_ascii_digit() {
                        is_float = true;
                        i = j;
                        while i < n && bytes[i].is_ascii_digit() {
                            i += 1;
                        }
                    }
                }
                let text = &source[start..i];
                let tok = if is_float {
                    Tok::Float(text.parse().map_err(|_| {
                        CompileError::new(line, format!("bad float literal `{text}`"))
                    })?)
                } else {
                    Tok::Int(text.parse().map_err(|_| {
                        CompileError::new(line, format!("bad int literal `{text}`"))
                    })?)
                };
                out.push(Token { tok, line });
            }
            'a'..='z' | 'A'..='Z' | '_' => {
                let start = i;
                while i < n && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                let word = &source[start..i];
                let tok = match word {
                    "global" => Tok::KwGlobal,
                    "fn" => Tok::KwFn,
                    "int" => Tok::KwInt,
                    "float" => Tok::KwFloat,
                    "if" => Tok::KwIf,
                    "else" => Tok::KwElse,
                    "while" => Tok::KwWhile,
                    "for" => Tok::KwFor,
                    "return" => Tok::KwReturn,
                    "break" => Tok::KwBreak,
                    "continue" => Tok::KwContinue,
                    _ => Tok::Ident(word.to_string()),
                };
                out.push(Token { tok, line });
            }
            _ => {
                // Multi-char operators first.
                let two = if i + 1 < n { &source[i..i + 2] } else { "" };
                let (tok, len) = match two {
                    "->" => (Tok::Arrow, 2),
                    "==" => (Tok::EqEq, 2),
                    "!=" => (Tok::NotEq, 2),
                    "<=" => (Tok::Le, 2),
                    ">=" => (Tok::Ge, 2),
                    "<<" => (Tok::Shl, 2),
                    ">>" => (Tok::Shr, 2),
                    "&&" => (Tok::AmpAmp, 2),
                    "||" => (Tok::PipePipe, 2),
                    "+=" => (Tok::PlusAssign, 2),
                    "-=" => (Tok::MinusAssign, 2),
                    "*=" => (Tok::StarAssign, 2),
                    "/=" => (Tok::SlashAssign, 2),
                    _ => match c {
                        '(' => (Tok::LParen, 1),
                        ')' => (Tok::RParen, 1),
                        '{' => (Tok::LBrace, 1),
                        '}' => (Tok::RBrace, 1),
                        '[' => (Tok::LBracket, 1),
                        ']' => (Tok::RBracket, 1),
                        ',' => (Tok::Comma, 1),
                        ';' => (Tok::Semi, 1),
                        '=' => (Tok::Assign, 1),
                        '+' => (Tok::Plus, 1),
                        '-' => (Tok::Minus, 1),
                        '*' => (Tok::Star, 1),
                        '/' => (Tok::Slash, 1),
                        '%' => (Tok::Percent, 1),
                        '&' => (Tok::Amp, 1),
                        '|' => (Tok::Pipe, 1),
                        '^' => (Tok::Caret, 1),
                        '!' => (Tok::Bang, 1),
                        '<' => (Tok::Lt, 1),
                        '>' => (Tok::Gt, 1),
                        other => {
                            return Err(CompileError::new(
                                line,
                                format!("unexpected character `{other}`"),
                            ))
                        }
                    },
                };
                out.push(Token { tok, line });
                i += len;
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn lexes_keywords_and_idents() {
        assert_eq!(
            toks("fn foo int"),
            vec![Tok::KwFn, Tok::Ident("foo".into()), Tok::KwInt]
        );
    }

    #[test]
    fn lexes_numbers() {
        assert_eq!(toks("42"), vec![Tok::Int(42)]);
        assert_eq!(toks("3.5"), vec![Tok::Float(3.5)]);
        assert_eq!(toks("1e3"), vec![Tok::Float(1000.0)]);
        assert_eq!(toks("2.5e-1"), vec![Tok::Float(0.25)]);
    }

    #[test]
    fn lexes_operators() {
        assert_eq!(
            toks("a += b << 2"),
            vec![
                Tok::Ident("a".into()),
                Tok::PlusAssign,
                Tok::Ident("b".into()),
                Tok::Shl,
                Tok::Int(2)
            ]
        );
        assert_eq!(
            toks("-> == != <= >="),
            vec![Tok::Arrow, Tok::EqEq, Tok::NotEq, Tok::Le, Tok::Ge]
        );
    }

    #[test]
    fn tracks_lines_and_skips_comments() {
        let ts = lex("a\n// comment\nb").unwrap();
        assert_eq!(ts.len(), 2);
        assert_eq!(ts[0].line, 1);
        assert_eq!(ts[1].line, 3);
    }

    #[test]
    fn rejects_bad_char() {
        assert!(lex("a $ b").is_err());
    }
}
