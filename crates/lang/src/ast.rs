//! Abstract syntax tree for mini-C.

/// Scalar surface types.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Type {
    Int,
    Float,
}

impl Type {
    /// The corresponding IR type.
    pub fn to_ir(self) -> mir::Ty {
        match self {
            Type::Int => mir::Ty::I64,
            Type::Float => mir::Ty::F64,
        }
    }
}

/// A whole program.
#[derive(Debug, Clone, Default)]
pub struct Program {
    pub globals: Vec<GlobalDecl>,
    pub functions: Vec<FuncDecl>,
}

/// `global int name;` or `global float name[N];`
#[derive(Debug, Clone)]
pub struct GlobalDecl {
    pub name: String,
    pub ty: Type,
    pub elems: u64,
    pub line: u32,
}

/// `fn name(params) -> ret { body }`
#[derive(Debug, Clone)]
pub struct FuncDecl {
    pub name: String,
    pub params: Vec<(String, Type)>,
    pub ret: Option<Type>,
    pub body: Block,
    pub line: u32,
    pub end_line: u32,
}

/// A `{ … }` statement list.
#[derive(Debug, Clone)]
pub struct Block {
    pub stmts: Vec<Stmt>,
    pub line: u32,
    pub end_line: u32,
}

/// An assignable location: `name` or `name[expr]`.
#[derive(Debug, Clone)]
pub struct LValue {
    pub name: String,
    pub index: Option<Expr>,
    pub line: u32,
}

/// Binary operators (surface level, mapped 1:1 to [`mir::BinOp`]).
pub type BinOp = mir::BinOp;

/// Statements.
#[derive(Debug, Clone)]
pub enum Stmt {
    /// `int x = e;` / `float a[N];`
    Decl {
        name: String,
        ty: Type,
        elems: u64,
        init: Option<Expr>,
        line: u32,
    },
    /// `lv = e;` or `lv op= e;` (op is the compound operator).
    Assign {
        target: LValue,
        op: Option<BinOp>,
        value: Expr,
        line: u32,
    },
    /// `if (c) { … } else { … }`
    If {
        cond: Expr,
        then_blk: Block,
        else_blk: Option<Block>,
        line: u32,
        end_line: u32,
    },
    /// `while (c) { … }`
    While {
        cond: Expr,
        body: Block,
        line: u32,
        end_line: u32,
    },
    /// `for (init; cond; step) { … }`
    For {
        init: Option<Box<Stmt>>,
        cond: Option<Expr>,
        step: Option<Box<Stmt>>,
        body: Block,
        line: u32,
        end_line: u32,
    },
    /// `return e?;`
    Return { value: Option<Expr>, line: u32 },
    /// `break;`
    Break { line: u32 },
    /// `continue;`
    Continue { line: u32 },
    /// An expression evaluated for effect (e.g. a call).
    ExprStmt { expr: Expr, line: u32 },
    /// A nested block.
    Block(Block),
}

impl Stmt {
    /// The first source line of this statement.
    pub fn line(&self) -> u32 {
        match self {
            Stmt::Decl { line, .. }
            | Stmt::Assign { line, .. }
            | Stmt::If { line, .. }
            | Stmt::While { line, .. }
            | Stmt::For { line, .. }
            | Stmt::Return { line, .. }
            | Stmt::Break { line }
            | Stmt::Continue { line }
            | Stmt::ExprStmt { line, .. } => *line,
            Stmt::Block(b) => b.line,
        }
    }
}

/// Expressions.
#[derive(Debug, Clone)]
pub enum Expr {
    Int(i64, u32),
    Float(f64, u32),
    /// Variable read.
    Var(String, u32),
    /// Array element read: `name[expr]`.
    Index(String, Box<Expr>, u32),
    /// Function or builtin call.
    Call {
        name: String,
        args: Vec<Expr>,
        line: u32,
    },
    Bin {
        op: BinOp,
        lhs: Box<Expr>,
        rhs: Box<Expr>,
        line: u32,
    },
    Un {
        op: UnOpKind,
        expr: Box<Expr>,
        line: u32,
    },
}

/// Surface unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOpKind {
    Neg,
    Not,
}

impl Expr {
    /// The source line of this expression.
    pub fn line(&self) -> u32 {
        match self {
            Expr::Int(_, l)
            | Expr::Float(_, l)
            | Expr::Var(_, l)
            | Expr::Index(_, _, l)
            | Expr::Call { line: l, .. }
            | Expr::Bin { line: l, .. }
            | Expr::Un { line: l, .. } => *l,
        }
    }
}
