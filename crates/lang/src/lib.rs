//! `lang` — a small C-like language ("mini-C") that compiles to the `mir`
//! intermediate representation.
//!
//! The DiscoPoP reproduction uses this frontend where the original work used
//! Clang: benchmark kernels (NAS-, Starbench-, BOTS-style workloads in the
//! `workloads` crate) are written in mini-C, compiled to MIR, and executed by
//! the instrumenting interpreter in `interp`.
//!
//! # Example
//!
//! ```
//! let src = r#"
//!     fn main() -> int {
//!         int sum = 0;
//!         for (int i = 0; i < 10; i = i + 1) {
//!             sum = sum + i;
//!         }
//!         return sum;
//!     }
//! "#;
//! let module = lang::compile(src, "demo").unwrap();
//! assert!(module.function("main").is_some());
//! ```

pub mod ast;
pub mod lexer;
pub mod lower;
pub mod parser;

use std::fmt;

/// A compilation failure with a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileError {
    /// 1-based source line.
    pub line: u32,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for CompileError {}

impl CompileError {
    pub(crate) fn new(line: u32, message: impl Into<String>) -> Self {
        CompileError {
            line,
            message: message.into(),
        }
    }
}

/// Compile mini-C source text to a verified MIR [`mir::Module`].
pub fn compile(source: &str, module_name: &str) -> Result<mir::Module, CompileError> {
    let tokens = lexer::lex(source)?;
    let program = parser::parse(tokens)?;
    let module = lower::lower(&program, module_name)?;
    let errs = mir::verify_module(&module);
    if let Some(e) = errs.first() {
        return Err(CompileError::new(0, format!("internal lowering bug: {e}")));
    }
    Ok(module)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compile_smoke() {
        let m = compile("fn main() -> int { return 42; }", "m").unwrap();
        assert_eq!(m.functions.len(), 1);
    }

    #[test]
    fn error_has_line() {
        let e = compile("fn main() -> int { return x; }", "m").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.message.contains("x"));
    }
}
