//! Recursive-descent parser for mini-C with precedence-climbing expressions.

use crate::ast::*;
use crate::lexer::{Tok, Token};
use crate::CompileError;
use mir::BinOp;

/// Parse a token stream into a [`Program`].
pub fn parse(tokens: Vec<Token>) -> Result<Program, CompileError> {
    let mut p = Parser { tokens, pos: 0 };
    p.program()
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.tokens.get(self.pos).map(|t| &t.tok)
    }

    fn peek2(&self) -> Option<&Tok> {
        self.tokens.get(self.pos + 1).map(|t| &t.tok)
    }

    fn line(&self) -> u32 {
        self.tokens
            .get(self.pos)
            .or_else(|| self.tokens.last())
            .map(|t| t.line)
            .unwrap_or(1)
    }

    fn prev_line(&self) -> u32 {
        self.tokens
            .get(self.pos.saturating_sub(1))
            .map(|t| t.line)
            .unwrap_or(1)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.tokens.get(self.pos).map(|t| t.tok.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, tok: &Tok) -> bool {
        if self.peek() == Some(tok) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, tok: Tok, what: &str) -> Result<(), CompileError> {
        if self.eat(&tok) {
            Ok(())
        } else {
            Err(CompileError::new(
                self.line(),
                format!("expected {what}, found {:?}", self.peek()),
            ))
        }
    }

    fn ident(&mut self, what: &str) -> Result<String, CompileError> {
        match self.bump() {
            Some(Tok::Ident(s)) => Ok(s),
            other => Err(CompileError::new(
                self.prev_line(),
                format!("expected {what}, found {other:?}"),
            )),
        }
    }

    fn ty(&mut self) -> Result<Type, CompileError> {
        match self.bump() {
            Some(Tok::KwInt) => Ok(Type::Int),
            Some(Tok::KwFloat) => Ok(Type::Float),
            other => Err(CompileError::new(
                self.prev_line(),
                format!("expected type, found {other:?}"),
            )),
        }
    }

    fn program(&mut self) -> Result<Program, CompileError> {
        let mut prog = Program::default();
        while let Some(tok) = self.peek() {
            match tok {
                Tok::KwGlobal => prog.globals.push(self.global_decl()?),
                Tok::KwFn => prog.functions.push(self.func_decl()?),
                other => {
                    return Err(CompileError::new(
                        self.line(),
                        format!("expected `global` or `fn` at top level, found {other:?}"),
                    ))
                }
            }
        }
        Ok(prog)
    }

    fn global_decl(&mut self) -> Result<GlobalDecl, CompileError> {
        let line = self.line();
        self.expect(Tok::KwGlobal, "`global`")?;
        let ty = self.ty()?;
        let name = self.ident("global name")?;
        let elems = if self.eat(&Tok::LBracket) {
            let n = match self.bump() {
                Some(Tok::Int(n)) if n > 0 => n as u64,
                other => {
                    return Err(CompileError::new(
                        self.prev_line(),
                        format!("expected positive array size, found {other:?}"),
                    ))
                }
            };
            self.expect(Tok::RBracket, "`]`")?;
            n
        } else {
            1
        };
        self.expect(Tok::Semi, "`;`")?;
        Ok(GlobalDecl {
            name,
            ty,
            elems,
            line,
        })
    }

    fn func_decl(&mut self) -> Result<FuncDecl, CompileError> {
        let line = self.line();
        self.expect(Tok::KwFn, "`fn`")?;
        let name = self.ident("function name")?;
        self.expect(Tok::LParen, "`(`")?;
        let mut params = Vec::new();
        if self.peek() != Some(&Tok::RParen) {
            loop {
                let pty = self.ty()?;
                let pname = self.ident("parameter name")?;
                params.push((pname, pty));
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
        }
        self.expect(Tok::RParen, "`)`")?;
        let ret = if self.eat(&Tok::Arrow) {
            Some(self.ty()?)
        } else {
            None
        };
        let body = self.block()?;
        let end_line = body.end_line;
        Ok(FuncDecl {
            name,
            params,
            ret,
            body,
            line,
            end_line,
        })
    }

    fn block(&mut self) -> Result<Block, CompileError> {
        let line = self.line();
        self.expect(Tok::LBrace, "`{`")?;
        let mut stmts = Vec::new();
        while self.peek() != Some(&Tok::RBrace) {
            if self.peek().is_none() {
                return Err(CompileError::new(self.line(), "unclosed block"));
            }
            stmts.push(self.stmt()?);
        }
        let end_line = self.line();
        self.expect(Tok::RBrace, "`}`")?;
        Ok(Block {
            stmts,
            line,
            end_line,
        })
    }

    fn stmt(&mut self) -> Result<Stmt, CompileError> {
        let line = self.line();
        match self.peek() {
            Some(Tok::KwInt) | Some(Tok::KwFloat) => self.decl_stmt(),
            Some(Tok::KwIf) => self.if_stmt(),
            Some(Tok::KwWhile) => self.while_stmt(),
            Some(Tok::KwFor) => self.for_stmt(),
            Some(Tok::KwReturn) => {
                self.bump();
                let value = if self.peek() == Some(&Tok::Semi) {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(Tok::Semi, "`;`")?;
                Ok(Stmt::Return { value, line })
            }
            Some(Tok::KwBreak) => {
                self.bump();
                self.expect(Tok::Semi, "`;`")?;
                Ok(Stmt::Break { line })
            }
            Some(Tok::KwContinue) => {
                self.bump();
                self.expect(Tok::Semi, "`;`")?;
                Ok(Stmt::Continue { line })
            }
            Some(Tok::LBrace) => Ok(Stmt::Block(self.block()?)),
            Some(Tok::Ident(_)) => {
                let s = self.simple_stmt()?;
                self.expect(Tok::Semi, "`;`")?;
                Ok(s)
            }
            other => Err(CompileError::new(
                line,
                format!("expected statement, found {other:?}"),
            )),
        }
    }

    fn decl_stmt(&mut self) -> Result<Stmt, CompileError> {
        let line = self.line();
        let ty = self.ty()?;
        let name = self.ident("variable name")?;
        let elems = if self.eat(&Tok::LBracket) {
            let n = match self.bump() {
                Some(Tok::Int(n)) if n > 0 => n as u64,
                other => {
                    return Err(CompileError::new(
                        self.prev_line(),
                        format!("expected positive array size, found {other:?}"),
                    ))
                }
            };
            self.expect(Tok::RBracket, "`]`")?;
            n
        } else {
            1
        };
        let init = if self.eat(&Tok::Assign) {
            Some(self.expr()?)
        } else {
            None
        };
        self.expect(Tok::Semi, "`;`")?;
        Ok(Stmt::Decl {
            name,
            ty,
            elems,
            init,
            line,
        })
    }

    /// An assignment or expression statement, *without* the trailing `;`
    /// (shared by statement position and `for` headers).
    fn simple_stmt(&mut self) -> Result<Stmt, CompileError> {
        let line = self.line();
        // Lookahead: IDENT followed by an assignment operator (possibly after
        // an index expression) is an assignment; otherwise an expression.
        let is_assign = matches!(self.peek(), Some(Tok::Ident(_)))
            && matches!(
                self.peek2(),
                Some(Tok::Assign)
                    | Some(Tok::PlusAssign)
                    | Some(Tok::MinusAssign)
                    | Some(Tok::StarAssign)
                    | Some(Tok::SlashAssign)
                    | Some(Tok::LBracket)
            );
        if is_assign {
            // Could still be an expression like `a[i] + 1` — parse the lvalue
            // and check for an assignment operator; if absent, backtrack.
            let save = self.pos;
            let name = self.ident("lvalue")?;
            let index = if self.eat(&Tok::LBracket) {
                let e = self.expr()?;
                self.expect(Tok::RBracket, "`]`")?;
                Some(e)
            } else {
                None
            };
            let op = match self.peek() {
                Some(Tok::Assign) => Some(None),
                Some(Tok::PlusAssign) => Some(Some(BinOp::Add)),
                Some(Tok::MinusAssign) => Some(Some(BinOp::Sub)),
                Some(Tok::StarAssign) => Some(Some(BinOp::Mul)),
                Some(Tok::SlashAssign) => Some(Some(BinOp::Div)),
                _ => None,
            };
            if let Some(op) = op {
                self.bump();
                let value = self.expr()?;
                return Ok(Stmt::Assign {
                    target: LValue { name, index, line },
                    op,
                    value,
                    line,
                });
            }
            self.pos = save;
        }
        let expr = self.expr()?;
        Ok(Stmt::ExprStmt { expr, line })
    }

    fn if_stmt(&mut self) -> Result<Stmt, CompileError> {
        let line = self.line();
        self.expect(Tok::KwIf, "`if`")?;
        self.expect(Tok::LParen, "`(`")?;
        let cond = self.expr()?;
        self.expect(Tok::RParen, "`)`")?;
        let then_blk = self.block()?;
        let mut end_line = then_blk.end_line;
        let else_blk = if self.eat(&Tok::KwElse) {
            let blk = if self.peek() == Some(&Tok::KwIf) {
                // `else if` — wrap the nested if in a synthetic block.
                let nested = self.if_stmt()?;
                let l = nested.line();
                let e = match &nested {
                    Stmt::If { end_line, .. } => *end_line,
                    _ => l,
                };
                Block {
                    stmts: vec![nested],
                    line: l,
                    end_line: e,
                }
            } else {
                self.block()?
            };
            end_line = blk.end_line;
            Some(blk)
        } else {
            None
        };
        Ok(Stmt::If {
            cond,
            then_blk,
            else_blk,
            line,
            end_line,
        })
    }

    fn while_stmt(&mut self) -> Result<Stmt, CompileError> {
        let line = self.line();
        self.expect(Tok::KwWhile, "`while`")?;
        self.expect(Tok::LParen, "`(`")?;
        let cond = self.expr()?;
        self.expect(Tok::RParen, "`)`")?;
        let body = self.block()?;
        let end_line = body.end_line;
        Ok(Stmt::While {
            cond,
            body,
            line,
            end_line,
        })
    }

    fn for_stmt(&mut self) -> Result<Stmt, CompileError> {
        let line = self.line();
        self.expect(Tok::KwFor, "`for`")?;
        self.expect(Tok::LParen, "`(`")?;
        let init = if self.eat(&Tok::Semi) {
            None
        } else if matches!(self.peek(), Some(Tok::KwInt) | Some(Tok::KwFloat)) {
            Some(Box::new(self.decl_stmt()?)) // consumes the `;`
        } else {
            let s = self.simple_stmt()?;
            self.expect(Tok::Semi, "`;`")?;
            Some(Box::new(s))
        };
        let cond = if self.peek() == Some(&Tok::Semi) {
            None
        } else {
            Some(self.expr()?)
        };
        self.expect(Tok::Semi, "`;`")?;
        let step = if self.peek() == Some(&Tok::RParen) {
            None
        } else {
            Some(Box::new(self.simple_stmt()?))
        };
        self.expect(Tok::RParen, "`)`")?;
        let body = self.block()?;
        let end_line = body.end_line;
        Ok(Stmt::For {
            init,
            cond,
            step,
            body,
            line,
            end_line,
        })
    }

    // ---- expressions (precedence climbing) ----

    fn expr(&mut self) -> Result<Expr, CompileError> {
        self.bin_expr(0)
    }

    fn bin_expr(&mut self, min_prec: u8) -> Result<Expr, CompileError> {
        let mut lhs = self.unary()?;
        loop {
            let (op, prec) = match self.peek() {
                Some(Tok::PipePipe) => (BinOp::Or, 1),
                Some(Tok::AmpAmp) => (BinOp::And, 2),
                Some(Tok::Pipe) => (BinOp::Or, 3),
                Some(Tok::Caret) => (BinOp::Xor, 3),
                Some(Tok::Amp) => (BinOp::And, 3),
                Some(Tok::EqEq) => (BinOp::Eq, 4),
                Some(Tok::NotEq) => (BinOp::Ne, 4),
                Some(Tok::Lt) => (BinOp::Lt, 5),
                Some(Tok::Le) => (BinOp::Le, 5),
                Some(Tok::Gt) => (BinOp::Gt, 5),
                Some(Tok::Ge) => (BinOp::Ge, 5),
                Some(Tok::Shl) => (BinOp::Shl, 6),
                Some(Tok::Shr) => (BinOp::Shr, 6),
                Some(Tok::Plus) => (BinOp::Add, 7),
                Some(Tok::Minus) => (BinOp::Sub, 7),
                Some(Tok::Star) => (BinOp::Mul, 8),
                Some(Tok::Slash) => (BinOp::Div, 8),
                Some(Tok::Percent) => (BinOp::Rem, 8),
                _ => break,
            };
            if prec < min_prec {
                break;
            }
            let line = self.line();
            self.bump();
            let rhs = self.bin_expr(prec + 1)?;
            lhs = Expr::Bin {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                line,
            };
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, CompileError> {
        let line = self.line();
        if self.eat(&Tok::Minus) {
            let e = self.unary()?;
            return Ok(Expr::Un {
                op: UnOpKind::Neg,
                expr: Box::new(e),
                line,
            });
        }
        if self.eat(&Tok::Bang) {
            let e = self.unary()?;
            return Ok(Expr::Un {
                op: UnOpKind::Not,
                expr: Box::new(e),
                line,
            });
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr, CompileError> {
        let line = self.line();
        match self.bump() {
            Some(Tok::Int(n)) => Ok(Expr::Int(n, line)),
            Some(Tok::Float(x)) => Ok(Expr::Float(x, line)),
            Some(Tok::LParen) => {
                let e = self.expr()?;
                self.expect(Tok::RParen, "`)`")?;
                Ok(e)
            }
            Some(Tok::Ident(name)) => {
                if self.eat(&Tok::LParen) {
                    let mut args = Vec::new();
                    if self.peek() != Some(&Tok::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat(&Tok::Comma) {
                                break;
                            }
                        }
                    }
                    self.expect(Tok::RParen, "`)`")?;
                    Ok(Expr::Call { name, args, line })
                } else if self.eat(&Tok::LBracket) {
                    let idx = self.expr()?;
                    self.expect(Tok::RBracket, "`]`")?;
                    Ok(Expr::Index(name, Box::new(idx), line))
                } else {
                    Ok(Expr::Var(name, line))
                }
            }
            other => Err(CompileError::new(
                self.prev_line(),
                format!("expected expression, found {other:?}"),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> Program {
        parse(lex(src).unwrap()).unwrap()
    }

    #[test]
    fn parses_global_and_fn() {
        let p = parse_src("global int g[8];\nfn main() -> int { return 0; }");
        assert_eq!(p.globals.len(), 1);
        assert_eq!(p.globals[0].elems, 8);
        assert_eq!(p.functions.len(), 1);
        assert_eq!(p.functions[0].ret, Some(Type::Int));
    }

    #[test]
    fn parses_for_loop() {
        let p = parse_src("fn f() { for (int i = 0; i < 10; i = i + 1) { } }");
        match &p.functions[0].body.stmts[0] {
            Stmt::For {
                init, cond, step, ..
            } => {
                assert!(init.is_some());
                assert!(cond.is_some());
                assert!(step.is_some());
            }
            other => panic!("expected For, got {other:?}"),
        }
    }

    #[test]
    fn parses_else_if_chain() {
        let p = parse_src("fn f(int x) { if (x == 0) { } else if (x == 1) { } else { } }");
        match &p.functions[0].body.stmts[0] {
            Stmt::If { else_blk, .. } => {
                let blk = else_blk.as_ref().unwrap();
                assert!(matches!(blk.stmts[0], Stmt::If { .. }));
            }
            other => panic!("expected If, got {other:?}"),
        }
    }

    #[test]
    fn parses_compound_assign_and_index() {
        let p = parse_src("fn f() { int a[4]; a[2] += 3; }");
        match &p.functions[0].body.stmts[1] {
            Stmt::Assign { target, op, .. } => {
                assert_eq!(target.name, "a");
                assert!(target.index.is_some());
                assert_eq!(*op, Some(BinOp::Add));
            }
            other => panic!("expected Assign, got {other:?}"),
        }
    }

    #[test]
    fn precedence_mul_over_add() {
        let p = parse_src("fn f() -> int { return 1 + 2 * 3; }");
        match &p.functions[0].body.stmts[0] {
            Stmt::Return { value: Some(e), .. } => match e {
                Expr::Bin { op, rhs, .. } => {
                    assert_eq!(*op, BinOp::Add);
                    assert!(matches!(**rhs, Expr::Bin { op: BinOp::Mul, .. }));
                }
                other => panic!("expected Bin, got {other:?}"),
            },
            other => panic!("expected Return, got {other:?}"),
        }
    }

    #[test]
    fn expr_stmt_call() {
        let p = parse_src("fn f() { print(1, 2); }");
        assert!(matches!(
            p.functions[0].body.stmts[0],
            Stmt::ExprStmt { .. }
        ));
    }

    #[test]
    fn array_read_not_mistaken_for_assign() {
        let p = parse_src("fn f(int i) -> int { int a[4]; return a[i] + 1; }");
        assert!(matches!(p.functions[0].body.stmts[1], Stmt::Return { .. }));
    }

    #[test]
    fn break_continue() {
        let p = parse_src("fn f() { while (1) { break; continue; } }");
        match &p.functions[0].body.stmts[0] {
            Stmt::While { body, .. } => {
                assert!(matches!(body.stmts[0], Stmt::Break { .. }));
                assert!(matches!(body.stmts[1], Stmt::Continue { .. }));
            }
            other => panic!("expected While, got {other:?}"),
        }
    }
}
