//! CU construction: the top-down algorithm (Algorithm 3, §3.2.3) and the
//! bottom-up variant kept for comparison.

use crate::graph::{CuEdge, CuGraph, CuId};
use crate::vars::{self, RegionVars, VarId};
use fxhash::FxHashMap;
use interp::Program;
use mir::{RegionId, RegionKind};
use profiler::{DepSet, DepType, Pet};
use serde::Serialize;
use std::collections::{BTreeMap, BTreeSet};

/// How a CU came to be.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum CuKind {
    /// A whole control region satisfied the read-compute-write condition.
    Region,
    /// A fragment of a region, split at violating reads.
    Fragment,
}

/// A computational unit.
#[derive(Debug, Clone, Serialize)]
pub struct Cu {
    /// Function index.
    pub func: u32,
    /// Region the CU belongs to (equals the CU for `Region` kind).
    pub region: u32,
    /// First source line covered.
    pub start_line: u32,
    /// Last source line covered.
    pub end_line: u32,
    /// Whole region or fragment.
    pub kind: CuKind,
    /// Variables (global to the region) read — the read phase sources.
    pub read_set: BTreeSet<VarId>,
    /// Variables (global to the region) written — the write phase targets.
    pub write_set: BTreeSet<VarId>,
    /// The exact lines of a fragment CU (region CUs cover their full span).
    pub lines: Vec<u32>,
    /// Static memory+compute instruction count under this CU.
    pub static_instrs: usize,
    /// Dynamic weight estimate (instructions executed), for ranking.
    pub weight: u64,
}

impl Cu {
    /// Does this CU cover `line`?
    pub fn covers(&self, line: u32) -> bool {
        match self.kind {
            CuKind::Region => self.start_line <= line && line <= self.end_line,
            CuKind::Fragment => self.lines.contains(&line),
        }
    }
}

/// Inputs to CU-graph construction.
pub struct CuBuildInput<'a> {
    /// The executable program (module + symbol table).
    pub program: &'a Program,
    /// Profiled dependences.
    pub deps: &'a DepSet,
    /// Execution tree for dynamic weights (optional).
    pub pet: Option<&'a Pet>,
}

/// Build the CU graph for every function of the program (top-down).
pub fn build_cu_graph(input: &CuBuildInput) -> CuGraph<Cu> {
    build_impl(input, false)
}

/// Like [`build_cu_graph`], but function bodies are always decomposed into
/// their child regions and plain-line fragments, even when the whole body
/// satisfies read-compute-write. Task discovery (§4.2) uses this finer
/// granularity: "the top-down approach … goes down to cover fine-grained
/// parallelism if coarse-grained parallelism is not found" (§3.3).
pub fn build_cu_graph_fine(input: &CuBuildInput) -> CuGraph<Cu> {
    build_impl(input, true)
}

fn build_impl(input: &CuBuildInput, split_bodies: bool) -> CuGraph<Cu> {
    let mut graph = CuGraph::new();
    let module = &input.program.module;
    for (fi, _) in module.functions.iter().enumerate() {
        let mut b = FnBuilder::new(input, fi as u32);
        b.split_bodies = split_bodies;
        b.run(&mut graph);
    }
    add_edges(input, &mut graph);
    graph
}

struct FnBuilder<'a> {
    input: &'a CuBuildInput<'a>,
    func: u32,
    rv: RegionVars,
    /// For every line with accesses: static instruction count.
    line_instrs: BTreeMap<u32, usize>,
    /// Violating read lines per region: sinks of intra-region RAWs on
    /// region-global variables.
    violations: Vec<BTreeSet<u32>>,
    /// Force decomposition of the function-body region (fine granularity).
    split_bodies: bool,
}

impl<'a> FnBuilder<'a> {
    fn new(input: &'a CuBuildInput<'a>, func: u32) -> Self {
        let module = &input.program.module;
        let f = &module.functions[func as usize];
        let rv = vars::analyze(module, func);

        let mut line_instrs: BTreeMap<u32, usize> = BTreeMap::new();
        for (_, b) in f.iter_blocks() {
            for i in &b.instrs {
                if !i.is_marker() {
                    *line_instrs.entry(i.line()).or_insert(0) += 1;
                }
            }
        }

        // Determine violating reads per region. A read of a region-global
        // variable violates the read-compute-write pattern when it happens
        // after a write inside the same execution of the region: a RAW
        // whose endpoints both lie in the region and that is not carried by
        // the region itself or an enclosing loop.
        let mut violations: Vec<BTreeSet<u32>> = vec![BTreeSet::new(); f.regions.len()];
        for (d, _) in input.deps.iter() {
            if d.ty != DepType::Raw {
                continue;
            }
            let (s, e) = (f.start_line, f.end_line);
            if d.sink.line < s || d.sink.line > e || d.source.line < s || d.source.line > e {
                continue;
            }
            let name = input.program.symbol(d.var);
            for (ri, r) in f.regions.iter().enumerate() {
                if d.sink.line < r.start_line
                    || d.sink.line > r.end_line
                    || d.source.line < r.start_line
                    || d.source.line > r.end_line
                {
                    continue;
                }
                // Carried by this region or an ancestor: a cross-instance
                // dependence, not a violation.
                if let Some((cf, cr)) = d.carried_by {
                    if cf == func {
                        let carrier = RegionId(cr);
                        let here = RegionId(ri as u32);
                        if vars::region_contains(f, carrier, here) {
                            continue;
                        }
                    }
                }
                // The variable must be global to this region.
                let is_global = rv.global_vars[ri]
                    .iter()
                    .any(|&v| vars::var_name(module, v) == name);
                if is_global {
                    violations[ri].insert(d.sink.line);
                }
            }
        }

        FnBuilder {
            input,
            func,
            rv,
            line_instrs,
            violations,
            split_bodies: false,
        }
    }

    fn run(mut self, graph: &mut CuGraph<Cu>) {
        self.process(RegionId(0), graph);
    }

    /// Recursive top-down construction: a violation-free region is one CU;
    /// otherwise children recurse and the region's plain lines are split
    /// into fragments at violating reads.
    fn process(&mut self, region: RegionId, graph: &mut CuGraph<Cu>) -> Vec<CuId> {
        let module = &self.input.program.module;
        let f = &module.functions[self.func as usize];
        let r = &f.regions[region.index()];

        let force_split = self.split_bodies && region == RegionId(0);
        if self.violations[region.index()].is_empty() && !force_split {
            let (read_set, write_set) = self.phase_sets(region, r.start_line, r.end_line, None);
            let static_instrs: usize = self
                .line_instrs
                .range(r.start_line..=r.end_line)
                .map(|(_, &c)| c)
                .sum();
            let cu = Cu {
                func: self.func,
                region: region.0,
                start_line: r.start_line,
                end_line: r.end_line,
                kind: CuKind::Region,
                read_set,
                write_set,
                lines: Vec::new(),
                static_instrs,
                weight: self.weight(region, static_instrs),
            };
            return vec![graph.add_cu(cu)];
        }

        // Region is not a CU: recurse into children, fragment plain lines.
        let children: Vec<RegionId> = f
            .regions
            .iter()
            .enumerate()
            .filter(|(_, c)| c.parent == Some(region))
            .map(|(i, _)| RegionId(i as u32))
            .collect();
        let mut out = Vec::new();
        for &c in &children {
            out.extend(self.process(c, graph));
        }

        // Plain lines: lines with accesses inside this region but outside
        // every child region.
        let child_spans: Vec<(u32, u32)> = children
            .iter()
            .map(|c| {
                let cr = &f.regions[c.index()];
                (cr.start_line, cr.end_line)
            })
            .collect();
        let plain: Vec<u32> = self
            .line_instrs
            .range(r.start_line..=r.end_line)
            .map(|(&l, _)| l)
            .filter(|&l| !child_spans.iter().any(|&(s, e)| s <= l && l <= e))
            .collect();

        let viol = &self.violations[region.index()];
        let mut fragment: Vec<u32> = Vec::new();
        let mut fragments: Vec<Vec<u32>> = Vec::new();
        let mut prev: Option<u32> = None;
        for &l in &plain {
            // Start a new fragment at violating reads, and whenever a child
            // region intervenes between consecutive plain lines (fragments
            // must not straddle nested regions).
            let child_between =
                prev.is_some_and(|p| child_spans.iter().any(|&(s, e)| p < s && e < l));
            if (viol.contains(&l) || child_between) && !fragment.is_empty() {
                fragments.push(std::mem::take(&mut fragment));
            }
            fragment.push(l);
            prev = Some(l);
        }
        if !fragment.is_empty() {
            fragments.push(fragment);
        }
        for lines in fragments {
            let (read_set, write_set) =
                self.phase_sets(region, lines[0], *lines.last().unwrap(), Some(&lines));
            let static_instrs: usize = lines
                .iter()
                .map(|l| self.line_instrs.get(l).copied().unwrap_or(0))
                .sum();
            let cu = Cu {
                func: self.func,
                region: region.0,
                start_line: lines[0],
                end_line: *lines.last().unwrap(),
                kind: CuKind::Fragment,
                read_set,
                write_set,
                lines,
                static_instrs,
                weight: self.weight(region, static_instrs),
            };
            out.push(graph.add_cu(cu));
        }
        out
    }

    /// Read/write phase variable sets: region-global variables accessed in
    /// the line span (or the explicit line list).
    fn phase_sets(
        &self,
        region: RegionId,
        start: u32,
        end: u32,
        lines: Option<&[u32]>,
    ) -> (BTreeSet<VarId>, BTreeSet<VarId>) {
        let globals = &self.rv.global_vars[region.index()];
        let mut read_set = BTreeSet::new();
        let mut write_set = BTreeSet::new();
        let in_span = |l: u32| match lines {
            Some(ls) => ls.contains(&l),
            None => start <= l && l <= end,
        };
        for (&l, vs) in self.rv.reads.range(start..=end) {
            if in_span(l) {
                for v in vs.intersection(globals) {
                    read_set.insert(*v);
                }
            }
        }
        for (&l, vs) in self.rv.writes.range(start..=end) {
            if in_span(l) {
                for v in vs.intersection(globals) {
                    write_set.insert(*v);
                }
            }
        }
        (read_set, write_set)
    }

    /// Dynamic weight: executed instructions attributed to the CU. Loops
    /// use the PET's measured counts; other CUs scale static size by the
    /// iteration count of the innermost enclosing loop (or the function
    /// entry count).
    fn weight(&self, region: RegionId, static_instrs: usize) -> u64 {
        let Some(pet) = self.input.pet else {
            return static_instrs as u64;
        };
        let module = &self.input.program.module;
        let f = &module.functions[self.func as usize];
        if f.regions[region.index()].kind == RegionKind::Loop {
            if let Some((_, _, dyn_instrs)) =
                pet.loops_aggregated().get(&(self.func, region.0)).copied()
            {
                if dyn_instrs > 0 {
                    return dyn_instrs;
                }
            }
        }
        // Innermost enclosing loop's iterations, else function entries.
        let mut cur = Some(region);
        while let Some(c) = cur {
            if f.regions[c.index()].kind == RegionKind::Loop {
                if let Some((_, iters, _)) = pet.loops_aggregated().get(&(self.func, c.0)) {
                    return static_instrs as u64 * iters.max(&1);
                }
            }
            cur = f.regions[c.index()].parent;
        }
        let entries = pet
            .nodes
            .iter()
            .find(|n| n.kind == profiler::PetNodeKind::Function(self.func))
            .map(|n| n.entries)
            .unwrap_or(1);
        static_instrs as u64 * entries
    }
}

/// Wire dependence edges between CUs: every profiled dependence whose sink
/// and source lines map to CUs becomes an edge, subject to the Table 3.1
/// rules enforced by [`CuGraph::add_edge`].
fn add_edges(input: &CuBuildInput, graph: &mut CuGraph<Cu>) {
    // line -> cu: fragments take precedence over region CUs; smaller
    // region CUs take precedence over enclosing ones. Lookup-only, so the
    // fast in-repo hasher is safe (no iteration-order dependence).
    let mut by_line: FxHashMap<u32, CuId> = FxHashMap::default();
    let span_of = |cu: &Cu| cu.end_line - cu.start_line;
    let mut order: Vec<CuId> = (0..graph.cus.len()).collect();
    order.sort_by_key(|&i| {
        let c = &graph.cus[i];
        (
            match c.kind {
                CuKind::Fragment => 0u8,
                CuKind::Region => 1,
            },
            span_of(c),
        )
    });
    for &i in &order {
        let c = &graph.cus[i];
        match c.kind {
            CuKind::Fragment => {
                for &l in &c.lines {
                    by_line.entry(l).or_insert(i);
                }
            }
            CuKind::Region => {
                for l in c.start_line..=c.end_line {
                    by_line.entry(l).or_insert(i);
                }
            }
        }
    }
    for (d, _) in input.deps.iter() {
        if d.ty == DepType::Init {
            continue;
        }
        let (Some(&from), Some(&to)) = (by_line.get(&d.sink.line), by_line.get(&d.source.line))
        else {
            continue;
        };
        graph.add_edge(CuEdge {
            from,
            to,
            ty: d.ty,
            carried: d.carried_by.is_some(),
        });
    }
}

/// Bottom-up CU construction (§3.2.3), at source-line granularity: every
/// accessed line in the region starts as its own CU; CUs connected by
/// intra-iteration WAR dependences merge (a write joins the readers it
/// overwrites); RAW dependences become edges. Produces the fine-grained
/// graphs the dissertation found "too fine to discover coarse-grained
/// parallel tasks" — kept for comparison experiments.
pub fn build_cus_bottom_up(
    program: &Program,
    deps: &DepSet,
    func: u32,
    start_line: u32,
    end_line: u32,
) -> CuGraph<Vec<u32>> {
    let f = &program.module.functions[func as usize];
    let _ = f;
    let mut lines: BTreeSet<u32> = BTreeSet::new();
    for (d, _) in deps.iter() {
        for l in [d.sink.line, d.source.line] {
            if start_line <= l && l <= end_line {
                lines.insert(l);
            }
        }
    }
    let lines: Vec<u32> = lines.into_iter().collect();
    let idx: FxHashMap<u32, usize> = lines.iter().enumerate().map(|(i, &l)| (l, i)).collect();

    // Union-find over lines; WAR (anti-dependence) merges.
    let mut parent: Vec<usize> = (0..lines.len()).collect();
    fn find(parent: &mut [usize], x: usize) -> usize {
        let mut r = x;
        while parent[r] != r {
            r = parent[r];
        }
        let mut c = x;
        while parent[c] != c {
            let n = parent[c];
            parent[c] = r;
            c = n;
        }
        r
    }
    for (d, _) in deps.iter() {
        if d.ty == DepType::War && d.carried_by.is_none() {
            if let (Some(&a), Some(&b)) = (idx.get(&d.sink.line), idx.get(&d.source.line)) {
                let (ra, rb) = (find(&mut parent, a), find(&mut parent, b));
                if ra != rb {
                    parent[ra] = rb;
                }
            }
        }
    }

    // Materialize merged CUs.
    let mut groups: BTreeMap<usize, Vec<u32>> = BTreeMap::new();
    for (i, &l) in lines.iter().enumerate() {
        groups.entry(find(&mut parent, i)).or_default().push(l);
    }
    let mut graph: CuGraph<Vec<u32>> = CuGraph::new();
    let mut cu_of: FxHashMap<u32, CuId> = FxHashMap::default();
    for (_, ls) in groups {
        let id = graph.add_cu(ls.clone());
        for l in ls {
            cu_of.insert(l, id);
        }
    }
    for (d, _) in deps.iter() {
        if d.ty != DepType::Raw {
            continue;
        }
        if let (Some(&from), Some(&to)) = (cu_of.get(&d.sink.line), cu_of.get(&d.source.line)) {
            graph.add_edge(CuEdge {
                from,
                to,
                ty: DepType::Raw,
                carried: d.carried_by.is_some(),
            });
        }
    }
    graph
}

#[cfg(test)]
mod tests {
    use super::*;
    use profiler::profile_program;

    fn setup(src: &str) -> (Program, CuGraph<Cu>) {
        let p = Program::new(lang::compile(src, "t").unwrap());
        let out = profile_program(&p).unwrap();
        let graph = build_cu_graph(&CuBuildInput {
            program: &p,
            deps: &out.deps,
            pet: Some(&out.pet),
        });
        (p, graph)
    }

    /// Fig. 3.4: the loop body reads x, computes via locals a and b, and
    /// writes x back — the whole loop is a single CU.
    #[test]
    fn fig_3_4_loop_is_one_cu() {
        let src = "global int x;\nfn main() {\nfor (int i = 0; i < 8; i = i + 1) {\nint a = x + i / (x + 1);\nint b = x - i / (x + 1);\nx = a + b;\n}\n}";
        let (_, g) = setup(src);
        // The loop region (lines 3..7) must be one Region CU.
        let loop_cu = g
            .cus
            .iter()
            .find(|c| c.kind == CuKind::Region && c.start_line == 3)
            .expect("loop CU");
        assert_eq!(loop_cu.end_line, 7);
        // Its RAW self-loop (iterative pattern) must be present.
        let id = g.cus.iter().position(|c| std::ptr::eq(c, loop_cu)).unwrap();
        assert!(g
            .edges
            .iter()
            .any(|e| e.from == id && e.to == id && e.ty == DepType::Raw));
    }

    /// Fig. 3.4 variant: a and b declared *outside* the loop become global
    /// to it; the intra-iteration RAW on them (x = a + b after a = …)
    /// violates read-compute-write and splits the body into two CUs.
    #[test]
    fn fig_3_4_variant_splits_into_two_cus() {
        let src = "global int x;\nfn main() {\nint a = 0;\nint b = 0;\nfor (int i = 0; i < 8; i = i + 1) {\na = x + i / (x + 1);\nb = x - i / (x + 1);\nx = a + b;\n}\n}";
        let (_, g) = setup(src);
        let frags: Vec<&Cu> = g
            .cus
            .iter()
            .filter(|c| c.kind == CuKind::Fragment && c.region == 1)
            .collect();
        assert!(
            frags.len() >= 2,
            "body must split into fragments: {:?}",
            g.cus
        );
        // Lines 6-7 (computing a, b) in one CU, line 8 (x = a + b) another.
        assert!(frags
            .iter()
            .any(|c| c.lines.contains(&6) && c.lines.contains(&7)));
        assert!(frags
            .iter()
            .any(|c| c.lines.contains(&8) && !c.lines.contains(&6)));
    }

    #[test]
    fn pure_function_is_single_cu() {
        let src =
            "fn square(int v) -> int {\nreturn v * v;\n}\nfn main() {\nint r = square(7);\nprint(r);\n}";
        let (p, g) = setup(src);
        let (fid, _) = p.module.function("square").unwrap();
        let cus: Vec<&Cu> = g.cus.iter().filter(|c| c.func == fid.0).collect();
        assert_eq!(cus.len(), 1, "a pure function is one CU: {cus:?}");
        assert_eq!(cus[0].kind, CuKind::Region);
    }

    #[test]
    fn read_write_sets_have_region_globals_only() {
        let src = "global int g;\nfn main() {\nfor (int i = 0; i < 4; i = i + 1) {\nint t = g * 2;\ng = t + 1;\n}\n}";
        let (p, g) = setup(src);
        let loop_cu = g.cus.iter().find(|c| c.start_line == 3).expect("loop cu");
        let names: Vec<String> = loop_cu
            .read_set
            .iter()
            .map(|&v| vars::var_name(&p.module, v))
            .collect();
        assert!(names.contains(&"g".to_string()));
        assert!(!names.contains(&"t".to_string()), "t is loop-local");
        assert!(!names.contains(&"i".to_string()), "i is the induction var");
    }

    #[test]
    fn independent_computations_get_independent_cus() {
        // Two separate accumulations into different globals from different
        // sources; the two loops must be independent CUs.
        let src = "global int a;\nglobal int b;\nfn main() {\nfor (int i = 0; i < 9; i = i + 1) {\na = a + i;\n}\nfor (int j = 0; j < 9; j = j + 1) {\nb = b + j * 2;\n}\n}";
        let (_, g) = setup(src);
        let l1 = g.cus.iter().position(|c| c.start_line == 4).unwrap();
        let l2 = g.cus.iter().position(|c| c.start_line == 7).unwrap();
        assert!(g.independent(l1, l2), "edges: {:?}", g.edges);
    }

    #[test]
    fn dependent_loops_are_ordered() {
        let src = "global int a;\nglobal int b;\nfn main() {\nfor (int i = 0; i < 9; i = i + 1) {\na = a + i;\n}\nfor (int j = 0; j < 9; j = j + 1) {\nb = b + a;\n}\n}";
        let (_, g) = setup(src);
        let l1 = g.cus.iter().position(|c| c.start_line == 4).unwrap();
        let l2 = g.cus.iter().position(|c| c.start_line == 7).unwrap();
        assert!(g.depends_on(l2, l1), "second loop reads a: {:?}", g.edges);
        assert!(!g.depends_on(l1, l2));
    }

    #[test]
    fn every_accessed_line_covered_by_some_cu() {
        let src = "global int x;\nglobal int y;\nfn main() {\nint t = x + 1;\ny = t * 2;\nif (y > 3) {\nx = y - 1;\n}\n}";
        let (_, g) = setup(src);
        for line in [4u32, 5, 7] {
            assert!(
                g.cus.iter().any(|c| c.covers(line)),
                "line {line} not covered: {:?}",
                g.cus
            );
        }
    }

    #[test]
    fn bottom_up_merges_on_war() {
        let src = "global int x;\nglobal int a;\nfn main() {\nfor (int i = 0; i < 8; i = i + 1) {\na = x + i;\nx = a + 1;\n}\n}";
        let p = Program::new(lang::compile(src, "t").unwrap());
        let out = profile_program(&p).unwrap();
        let g = build_cus_bottom_up(&p, &out.deps, 0, 4, 7);
        assert!(!g.is_empty());
        // Some CU must span multiple lines (WAR-driven merge of the
        // read of x at line 5 with the write at line 6).
        assert!(g.cus.iter().any(|ls| ls.len() >= 2), "{:?}", g.cus);
    }

    #[test]
    fn weights_scale_with_iterations() {
        let src = "global int g;\nfn main() {\nfor (int i = 0; i < 100; i = i + 1) {\ng = g + i;\n}\ng = g * 2;\n}";
        let (_, g) = setup(src);
        let loop_cu = g.cus.iter().find(|c| c.start_line == 3).unwrap();
        let tail = g
            .cus
            .iter()
            .find(|c| c.kind == CuKind::Fragment && c.lines.contains(&6))
            .or_else(|| g.cus.iter().find(|c| c.covers(6) && c.start_line != 3));
        assert!(loop_cu.weight > 100, "loop weight: {}", loop_cu.weight);
        if let Some(t) = tail {
            assert!(loop_cu.weight > t.weight);
        }
    }
}

#[cfg(test)]
mod violation_tests {
    use super::*;
    use profiler::profile_program;
    /// Regression: body-declared locals must not be misclassified as
    /// induction variables, which would make the loop body violate
    /// read-compute-write and split spuriously.
    #[test]
    fn fig_3_4_loop_has_no_violations() {
        let src = "global int x;\nfn main() {\nfor (int i = 0; i < 8; i = i + 1) {\nint a = x + i / (x + 1);\nint b = x - i / (x + 1);\nx = a + b;\n}\n}";
        let p = Program::new(lang::compile(src, "t").unwrap());
        let out = profile_program(&p).unwrap();
        let input = CuBuildInput {
            program: &p,
            deps: &out.deps,
            pet: None,
        };
        let fb = FnBuilder::new(&input, 0);
        assert!(
            fb.violations[1].is_empty(),
            "loop region must satisfy read-compute-write: {:?}",
            fb.violations
        );
        let g = build_cu_graph(&input);
        assert_eq!(
            g.cus.iter().filter(|c| c.region == 1).count(),
            1,
            "loop is exactly one CU: {:?}",
            g.cus
        );
    }
}
