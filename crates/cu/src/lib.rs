//! `cu` — Computational Units (dissertation Ch. 3).
//!
//! A *computational unit* (CU) is a collection of instructions following the
//! read-compute-write pattern: a set of variables global to a code section
//! is read, computation happens on locals, and results are written back.
//! CUs are the smallest units mapped onto threads; unlike loops or
//! functions, they are not required to align with language constructs, so
//! parallelism that crosses construct boundaries becomes visible.
//!
//! This crate implements:
//! - global/local variable analysis per control region (§3.2.1),
//! - the **top-down CU construction** algorithm (Algorithm 3, §3.2.3) that
//!   checks each region against the read-compute-write condition
//!   `∀v ∈ GV: I_v → O_v` using profiled dependences, splitting regions at
//!   violating reads,
//! - the **bottom-up** construction (§3.2.3) used for comparison,
//! - the **CU graph** (§3.4) with the edge rules of Table 3.1, SCC and
//!   chain condensation (§4.2.2 / Fig. 4.5), and DOT export (Figs. 3.6/3.7),
//! - control-dependence utilities (§3.2.2): re-convergence points and
//!   dynamic control-dependence queries.

pub mod build;
pub mod ctrl;
pub mod graph;
pub mod vars;

pub use build::{
    build_cu_graph, build_cu_graph_fine, build_cus_bottom_up, Cu, CuBuildInput, CuKind,
};
pub use ctrl::{control_dependent_blocks, reconvergence_points};
pub use graph::{CuEdge, CuGraph, CuId};
pub use vars::{region_of_line, RegionVars, VarClass};
