//! Control-dependence utilities (§3.2.2).
//!
//! The dissertation's dynamic analysis finds *re-convergence points* — the
//! first instruction after a branch where unconditional execution resumes —
//! by looking ahead over the not-taken alternatives (Fig. 3.1). With the
//! full CFG available, the re-convergence point of a branch block is its
//! immediate post-dominator; control dependence follows the classical
//! Ferrante/Ottenstein/Warren formulation quoted in §1.2.2.

use mir::cfg::post_dominators;
use mir::{BlockId, Function, Terminator};

/// For every block ending in a conditional branch, the re-convergence
/// point: the nearest block that post-dominates it (solid black circle of
/// Fig. 3.1). `None` for non-branch blocks or when no such block exists
/// (e.g. both arms return).
pub fn reconvergence_points(f: &Function) -> Vec<Option<BlockId>> {
    let pd = post_dominators(f);
    let n = f.blocks.len();
    let mut out = vec![None; n];
    for (id, b) in f.iter_blocks() {
        if !matches!(b.term, Terminator::Branch { .. }) {
            continue;
        }
        // Candidates: blocks that post-dominate `id`, other than itself.
        // The nearest one post-dominates no other candidate... equivalently
        // it is post-dominated by every other candidate.
        let candidates: Vec<usize> = (0..n)
            .filter(|&d| d != id.index() && pd[id.index()][d])
            .collect();
        let nearest = candidates
            .iter()
            .copied()
            .find(|&c| candidates.iter().all(|&o| o == c || pd[c][o]));
        out[id.index()] = nearest.map(|c| BlockId(c as u32));
    }
    out
}

/// Classical control dependence: block `B` is control dependent on branch
/// block `A` iff `A` has a successor through which every path reaches `B`
/// (B post-dominates the successor) while `B` does not post-dominate `A`
/// (§1.2.2). Returns, for each block, the set of blocks control-dependent
/// on it.
pub fn control_dependent_blocks(f: &Function) -> Vec<Vec<BlockId>> {
    let pd = post_dominators(f);
    let n = f.blocks.len();
    let mut out = vec![Vec::new(); n];
    for (a, blk) in f.iter_blocks() {
        let succs = blk.term.successors();
        if succs.len() < 2 {
            continue;
        }
        #[allow(clippy::needless_range_loop)]
        for b in 0..n {
            if b == a.index() {
                continue;
            }
            if pd[a.index()][b] {
                continue; // B post-dominates A: executes regardless
            }
            let guarded = succs.iter().any(|s| pd[s.index()][b] || s.index() == b);
            if guarded {
                out[a.index()].push(BlockId(b as u32));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn func_of(src: &str, name: &str) -> Function {
        let m = lang::compile(src, "t").unwrap();
        m.function(name).unwrap().1.clone()
    }

    /// The §1.2.2 example: S2 is control dependent on S1, S3 is not.
    #[test]
    fn section_1_2_2_example() {
        let f = func_of(
            "fn main(){\nint a = 1;\nint b = 1;\nif (a == b) {\na = a + b;\n}\nb = a + b;\n}",
            "main",
        );
        let cd = control_dependent_blocks(&f);
        let rc = reconvergence_points(&f);
        // Find the branch block (the one with two successors).
        let branch = f
            .iter_blocks()
            .find(|(_, b)| matches!(b.term, Terminator::Branch { .. }))
            .map(|(id, _)| id)
            .expect("branch block exists");
        // Exactly the then-arm is control dependent on the branch.
        assert!(!cd[branch.index()].is_empty());
        // The re-convergence point exists (the merge block with b = a + b).
        let r = rc[branch.index()].expect("re-convergence point");
        // The merge block must contain the RegionExit marker.
        assert!(f.blocks[r.index()]
            .instrs
            .iter()
            .any(|i| matches!(i, mir::Instr::RegionExit { .. })));
    }

    #[test]
    fn if_else_reconverges_at_merge() {
        let f = func_of(
            "fn main(){\nint a = 1;\nif (a > 0) {\na = 2;\n} else {\na = 3;\n}\na = a + 1;\n}",
            "main",
        );
        let rc = reconvergence_points(&f);
        let branch = f
            .iter_blocks()
            .find(|(_, b)| matches!(b.term, Terminator::Branch { .. }))
            .map(|(id, _)| id)
            .unwrap();
        let r = rc[branch.index()].expect("merge exists");
        // Both arms are control dependent; merge is not.
        let cd = control_dependent_blocks(&f);
        assert!(cd[branch.index()].len() >= 2);
        assert!(!cd[branch.index()].contains(&r));
    }

    #[test]
    fn loop_body_control_dependent_on_header() {
        let f = func_of(
            "fn main(){\nint s = 0;\nfor (int i = 0; i < 3; i = i + 1) {\ns = s + i;\n}\n}",
            "main",
        );
        let cd = control_dependent_blocks(&f);
        let header = f
            .iter_blocks()
            .find(|(_, b)| matches!(b.term, Terminator::Branch { .. }))
            .map(|(id, _)| id)
            .unwrap();
        assert!(
            !cd[header.index()].is_empty(),
            "loop body depends on the header condition"
        );
    }

    #[test]
    fn straight_line_code_has_no_control_dependences() {
        let f = func_of("fn main(){\nint a = 1;\nint b = a + 2;\n}", "main");
        let cd = control_dependent_blocks(&f);
        assert!(cd.iter().all(|v| v.is_empty()));
    }
}
