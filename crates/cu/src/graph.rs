//! The CU graph (§3.4): vertices are computational units, edges are data
//! dependences following Table 3.1, plus the condensation machinery used by
//! MPMD task detection (§4.2.2, Fig. 4.5) and DOT export (Figs. 3.6/3.7).

use fxhash::FxHashMap;
use profiler::DepType;
use serde::Serialize;
use std::collections::BTreeSet;

/// Index of a CU within its graph.
pub type CuId = usize;

/// An edge `from → to` meaning "`from` depends on `to`" (the sink of the
/// dependence points at its source, as in §3.2.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize)]
pub struct CuEdge {
    /// The dependent (later) CU.
    pub from: CuId,
    /// The depended-on (earlier) CU.
    pub to: CuId,
    /// Dependence type.
    pub ty: DepType,
    /// True when the underlying dependence is loop-carried.
    pub carried: bool,
}

/// A CU graph over any vertex payload `V` (the `build` module instantiates
/// it with [`crate::build::Cu`]).
#[derive(Debug, Clone, Serialize)]
pub struct CuGraph<V> {
    /// Vertex payloads.
    pub cus: Vec<V>,
    /// Dependence edges (deduplicated).
    pub edges: Vec<CuEdge>,
}

impl<V> CuGraph<V> {
    /// An empty graph.
    pub fn new() -> Self {
        CuGraph {
            cus: Vec::new(),
            edges: Vec::new(),
        }
    }

    /// Add a vertex, returning its id.
    pub fn add_cu(&mut self, v: V) -> CuId {
        self.cus.push(v);
        self.cus.len() - 1
    }

    /// Add an edge applying the Table 3.1 rules: WAR/WAW self-loops are
    /// dropped (they contribute nothing to parallelism discovery); RAW
    /// self-loops are kept (the iterative read-compute-write pattern).
    /// Returns true if the edge was stored.
    pub fn add_edge(&mut self, e: CuEdge) -> bool {
        if e.from == e.to && e.ty != DepType::Raw {
            return false;
        }
        if e.ty == DepType::Init {
            return false;
        }
        if self.edges.contains(&e) {
            return false;
        }
        self.edges.push(e);
        true
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.cus.len()
    }

    /// True if the graph has no vertices.
    pub fn is_empty(&self) -> bool {
        self.cus.is_empty()
    }

    /// Successor lists over RAW edges only (the true-dependence skeleton).
    pub fn raw_successors(&self) -> Vec<Vec<CuId>> {
        let mut succ = vec![Vec::new(); self.cus.len()];
        for e in &self.edges {
            if e.ty == DepType::Raw && e.from != e.to {
                succ[e.from].push(e.to);
            }
        }
        succ
    }

    /// Is there a (non-empty) RAW path from `a` to `b` — does `a`
    /// transitively depend on `b`?
    pub fn depends_on(&self, a: CuId, b: CuId) -> bool {
        let succ = self.raw_successors();
        let mut seen = vec![false; self.cus.len()];
        let mut stack: Vec<CuId> = succ[a].clone();
        while let Some(n) = stack.pop() {
            if n == b {
                return true;
            }
            if seen[n] {
                continue;
            }
            seen[n] = true;
            stack.extend(succ[n].iter().copied());
        }
        false
    }

    /// Two CUs are *independent* when neither transitively depends on the
    /// other — they can run in parallel (Bernstein on the CU graph).
    pub fn independent(&self, a: CuId, b: CuId) -> bool {
        a != b && !self.depends_on(a, b) && !self.depends_on(b, a)
    }

    /// Strongly connected components over RAW edges (Tarjan, iterative).
    /// Returns `component[cu] = scc index`; indices are in reverse
    /// topological order of the condensation.
    pub fn sccs(&self) -> Vec<usize> {
        let n = self.cus.len();
        let succ = self.raw_successors();
        let mut index = vec![usize::MAX; n];
        let mut low = vec![0usize; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<usize> = Vec::new();
        let mut comp = vec![usize::MAX; n];
        let mut next_index = 0usize;
        let mut next_comp = 0usize;

        // Iterative Tarjan with an explicit call stack.
        enum Frame {
            Enter(usize),
            Resume(usize, usize),
        }
        for start in 0..n {
            if index[start] != usize::MAX {
                continue;
            }
            let mut call = vec![Frame::Enter(start)];
            while let Some(f) = call.pop() {
                match f {
                    Frame::Enter(v) => {
                        index[v] = next_index;
                        low[v] = next_index;
                        next_index += 1;
                        stack.push(v);
                        on_stack[v] = true;
                        call.push(Frame::Resume(v, 0));
                    }
                    Frame::Resume(v, mut i) => {
                        let mut descended = false;
                        while i < succ[v].len() {
                            let w = succ[v][i];
                            i += 1;
                            if index[w] == usize::MAX {
                                call.push(Frame::Resume(v, i));
                                call.push(Frame::Enter(w));
                                descended = true;
                                break;
                            } else if on_stack[w] {
                                low[v] = low[v].min(index[w]);
                            }
                        }
                        if descended {
                            continue;
                        }
                        if low[v] == index[v] {
                            loop {
                                let w = stack.pop().unwrap();
                                on_stack[w] = false;
                                comp[w] = next_comp;
                                if w == v {
                                    break;
                                }
                            }
                            next_comp += 1;
                        }
                        // Propagate low to parent.
                        if let Some(Frame::Resume(p, _)) = call.last() {
                            let p = *p;
                            low[p] = low[p].min(low[v]);
                        }
                    }
                }
            }
        }
        comp
    }

    /// Condense the graph: SCCs become single vertices, then *chains* —
    /// maximal linear sequences where each vertex has exactly one RAW
    /// predecessor and one successor — are further merged (Fig. 4.5).
    /// Returns `(group[cu] = group index, number of groups, group edges)`.
    pub fn condense(&self) -> (Vec<usize>, usize, Vec<(usize, usize)>) {
        let comp = self.sccs();
        let ncomp = comp.iter().map(|&c| c + 1).max().unwrap_or(0);
        // Build the SCC DAG (edges follow dependence direction from → to).
        let mut dag_edges: BTreeSet<(usize, usize)> = BTreeSet::new();
        for e in &self.edges {
            if e.ty == DepType::Raw && comp[e.from] != comp[e.to] {
                dag_edges.insert((comp[e.from], comp[e.to]));
            }
        }
        // In/out degree per SCC.
        let mut out_deg = vec![0usize; ncomp];
        let mut in_deg = vec![0usize; ncomp];
        let mut out_to = vec![usize::MAX; ncomp];
        let mut in_from = vec![usize::MAX; ncomp];
        for &(a, b) in &dag_edges {
            out_deg[a] += 1;
            out_to[a] = b;
            in_deg[b] += 1;
            in_from[b] = a;
        }
        // Union chains: a → b merge when out_deg[a]==1 and in_deg[b]==1.
        let mut parent: Vec<usize> = (0..ncomp).collect();
        fn find(parent: &mut [usize], x: usize) -> usize {
            let mut r = x;
            while parent[r] != r {
                r = parent[r];
            }
            let mut c = x;
            while parent[c] != c {
                let next = parent[c];
                parent[c] = r;
                c = next;
            }
            r
        }
        for a in 0..ncomp {
            if out_deg[a] == 1 {
                let b = out_to[a];
                if in_deg[b] == 1 {
                    let ra = find(&mut parent, a);
                    let rb = find(&mut parent, b);
                    if ra != rb {
                        parent[ra] = rb;
                    }
                }
            }
        }
        // Renumber groups densely (group ids follow cu order, so the map
        // is lookup-only and hash order cannot leak into the output).
        let mut remap: FxHashMap<usize, usize> = FxHashMap::default();
        let mut group = vec![0usize; self.cus.len()];
        for (cu, &c) in comp.iter().enumerate() {
            let root = find(&mut parent, c);
            let next = remap.len();
            let g = *remap.entry(root).or_insert(next);
            group[cu] = g;
        }
        let ngroups = remap.len();
        let mut gedges: BTreeSet<(usize, usize)> = BTreeSet::new();
        for &(a, b) in &dag_edges {
            let (ga, gb) = (
                group[self
                    .cus_in_comp(&comp, a)
                    .next()
                    .expect("non-empty component")],
                group[self
                    .cus_in_comp(&comp, b)
                    .next()
                    .expect("non-empty component")],
            );
            if ga != gb {
                gedges.insert((ga, gb));
            }
        }
        (group, ngroups, gedges.into_iter().collect())
    }

    fn cus_in_comp<'a>(&'a self, comp: &'a [usize], c: usize) -> impl Iterator<Item = CuId> + 'a {
        comp.iter()
            .enumerate()
            .filter(move |(_, &cc)| cc == c)
            .map(|(i, _)| i)
    }

    /// Topological layers of the RAW DAG over condensation groups: groups
    /// in the same layer are mutually independent. Used for pipeline-stage
    /// and MPMD analysis.
    pub fn layers(&self) -> Vec<Vec<usize>> {
        let (group, ngroups, gedges) = self.condense();
        let _ = group;
        // Edge a → b means a depends on b, so b must be "earlier".
        let mut indeg = vec![0usize; ngroups];
        let mut succ: Vec<Vec<usize>> = vec![Vec::new(); ngroups];
        for &(a, b) in &gedges {
            // b → a in execution order.
            succ[b].push(a);
            indeg[a] += 1;
        }
        let mut layer = Vec::new();
        let mut ready: Vec<usize> = (0..ngroups).filter(|&g| indeg[g] == 0).collect();
        let mut seen = 0;
        while !ready.is_empty() {
            layer.push(ready.clone());
            let mut next = Vec::new();
            for &g in &ready {
                seen += 1;
                for &s in &succ[g] {
                    indeg[s] -= 1;
                    if indeg[s] == 0 {
                        next.push(s);
                    }
                }
            }
            ready = next;
        }
        debug_assert_eq!(seen, ngroups, "condensation must be acyclic");
        layer
    }
}

impl<V> Default for CuGraph<V> {
    fn default() -> Self {
        Self::new()
    }
}

/// Render the graph in Graphviz DOT form; `label` renders each vertex.
pub fn to_dot<V>(g: &CuGraph<V>, name: &str, label: &dyn Fn(CuId, &V) -> String) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{name}\" {{");
    let _ = writeln!(out, "  node [shape=box];");
    for (i, v) in g.cus.iter().enumerate() {
        let _ = writeln!(out, "  cu{} [label=\"{}\"];", i, label(i, v));
    }
    for e in &g.edges {
        let color = match e.ty {
            DepType::Raw => "red",
            DepType::War => "blue",
            DepType::Waw => "green",
            DepType::Init => "gray",
        };
        let style = if e.carried { "dashed" } else { "solid" };
        let _ = writeln!(
            out,
            "  cu{} -> cu{} [color={color}, style={style}];",
            e.from, e.to
        );
    }
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn raw(from: CuId, to: CuId) -> CuEdge {
        CuEdge {
            from,
            to,
            ty: DepType::Raw,
            carried: false,
        }
    }

    #[test]
    fn table_3_1_edge_rules() {
        let mut g: CuGraph<u32> = CuGraph::new();
        let a = g.add_cu(0);
        // RAW self-loop kept.
        assert!(g.add_edge(raw(a, a)));
        // WAR/WAW self-loops dropped.
        assert!(!g.add_edge(CuEdge {
            from: a,
            to: a,
            ty: DepType::War,
            carried: false
        }));
        assert!(!g.add_edge(CuEdge {
            from: a,
            to: a,
            ty: DepType::Waw,
            carried: false
        }));
        // Duplicates dropped.
        assert!(!g.add_edge(raw(a, a)));
    }

    #[test]
    fn independence_query() {
        let mut g: CuGraph<u32> = CuGraph::new();
        let a = g.add_cu(0);
        let b = g.add_cu(1);
        let c = g.add_cu(2);
        g.add_edge(raw(b, a)); // b depends on a
        assert!(!g.independent(a, b));
        assert!(g.independent(b, c));
        assert!(g.independent(a, c));
    }

    #[test]
    fn scc_detects_cycle() {
        let mut g: CuGraph<u32> = CuGraph::new();
        let a = g.add_cu(0);
        let b = g.add_cu(1);
        let c = g.add_cu(2);
        g.add_edge(raw(a, b));
        g.add_edge(raw(b, a));
        g.add_edge(raw(c, a));
        let comp = g.sccs();
        assert_eq!(comp[a], comp[b]);
        assert_ne!(comp[a], comp[c]);
    }

    #[test]
    fn chain_condensation_merges_linear_sequences() {
        // a <- b <- c (a chain) plus d independent.
        let mut g: CuGraph<u32> = CuGraph::new();
        let a = g.add_cu(0);
        let b = g.add_cu(1);
        let c = g.add_cu(2);
        let d = g.add_cu(3);
        g.add_edge(raw(b, a));
        g.add_edge(raw(c, b));
        let (group, ngroups, _) = g.condense();
        assert_eq!(ngroups, 2);
        assert_eq!(group[a], group[b]);
        assert_eq!(group[b], group[c]);
        assert_ne!(group[a], group[d]);
    }

    #[test]
    fn condense_keeps_fork_join_structure() {
        // root <- left, root <- right, sink <- left, sink <- right:
        // diamond; left and right must stay separate groups.
        let mut g: CuGraph<u32> = CuGraph::new();
        let root = g.add_cu(0);
        let left = g.add_cu(1);
        let right = g.add_cu(2);
        let sink = g.add_cu(3);
        g.add_edge(raw(left, root));
        g.add_edge(raw(right, root));
        g.add_edge(raw(sink, left));
        g.add_edge(raw(sink, right));
        let (group, ngroups, _) = g.condense();
        assert_eq!(ngroups, 4);
        assert_ne!(group[left], group[right]);
        let layers = g.layers();
        // root | {left, right} | sink.
        assert_eq!(layers.len(), 3);
        assert_eq!(layers[1].len(), 2);
        let _ = (root, sink);
    }

    #[test]
    fn dot_export_contains_edges() {
        let mut g: CuGraph<u32> = CuGraph::new();
        let a = g.add_cu(7);
        let b = g.add_cu(8);
        g.add_edge(raw(b, a));
        let dot = to_dot(&g, "test", &|i, v| format!("cu{i}:{v}"));
        assert!(dot.contains("digraph"));
        assert!(dot.contains("cu1 -> cu0"));
        assert!(dot.contains("color=red"));
    }
}
