//! Global/local variable analysis per control region (§3.2.1).
//!
//! For a region `R`, a variable is *local* when it is declared inside `R`
//! (it cannot carry dependences across `R`'s boundary) and *global*
//! otherwise. Module globals are global to every region; function
//! parameters are global to the function body (they enter the read set,
//! §3.2.5). Loop iteration variables are local to their loop unless the
//! loop *body* writes them (§3.2.5).

use mir::{Function, Instr, Module, RegionId, VarRef};
use std::collections::{BTreeMap, BTreeSet};

/// Classification of one variable relative to a region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VarClass {
    /// Declared within the region (or an induction variable of it).
    Local,
    /// Lives beyond the region boundary.
    Global,
}

/// A variable as seen by CU analysis: module global or function local.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize)]
pub enum VarId {
    /// Module global by index.
    Global(u32),
    /// Function-local by (function, local) indices.
    Local(u32, u32),
}

/// Per-region variable facts for one function.
#[derive(Debug, Clone)]
pub struct RegionVars {
    /// For each region: variables accessed anywhere within its line range.
    pub accessed: Vec<BTreeSet<VarId>>,
    /// For each region: the subset global to it.
    pub global_vars: Vec<BTreeSet<VarId>>,
    /// Lines on which each variable is read (line, var) pairs.
    pub reads: BTreeMap<u32, BTreeSet<VarId>>,
    /// Lines on which each variable is written.
    pub writes: BTreeMap<u32, BTreeSet<VarId>>,
}

/// The innermost region of `f` whose line span contains `line`. Regions are
/// syntactic in mini-C, so line containment is exact.
pub fn region_of_line(f: &Function, line: u32) -> RegionId {
    let mut best = RegionId(0);
    let mut best_span = u32::MAX;
    for (i, r) in f.regions.iter().enumerate() {
        if r.start_line <= line && line <= r.end_line {
            let span = r.end_line - r.start_line;
            if span < best_span {
                best_span = span;
                best = RegionId(i as u32);
            }
        }
    }
    best
}

/// True if `anc` is `r` or an ancestor of `r` in the region tree.
pub fn region_contains(f: &Function, anc: RegionId, r: RegionId) -> bool {
    let mut cur = Some(r);
    while let Some(c) = cur {
        if c == anc {
            return true;
        }
        cur = f.regions[c.index()].parent;
    }
    false
}

/// Compute per-region variable facts for function `func_idx` of `module`.
pub fn analyze(module: &Module, func_idx: u32) -> RegionVars {
    let f = &module.functions[func_idx as usize];
    let nregions = f.regions.len();
    let mut accessed: Vec<BTreeSet<VarId>> = vec![BTreeSet::new(); nregions];
    let mut reads: BTreeMap<u32, BTreeSet<VarId>> = BTreeMap::new();
    let mut writes: BTreeMap<u32, BTreeSet<VarId>> = BTreeMap::new();

    let var_id = |v: VarRef| match v {
        VarRef::Global(g) => VarId::Global(g.0),
        VarRef::Local(l) => VarId::Local(func_idx, l.0),
    };

    for (_, b) in f.iter_blocks() {
        for i in &b.instrs {
            let (place, line, is_write) = match i {
                Instr::Load { place, line, .. } => (place, *line, false),
                Instr::Store { place, line, .. } => (place, *line, true),
                _ => continue,
            };
            let v = var_id(place.var);
            // Attribute the access to the innermost region of its line and
            // to every ancestor.
            let mut r = Some(region_of_line(f, line));
            while let Some(cur) = r {
                accessed[cur.index()].insert(v);
                r = f.regions[cur.index()].parent;
            }
            if is_write {
                writes.entry(line).or_default().insert(v);
            } else {
                reads.entry(line).or_default().insert(v);
            }
        }
    }

    // A variable is local to region R if it is declared in R or any region
    // nested inside R; otherwise it is global to R. Loop induction
    // variables (locals owned by a loop region) stay local unless written
    // by the loop *body* — i.e. on a line other than the loop's header
    // line (§3.2.5).
    let mut global_vars: Vec<BTreeSet<VarId>> = vec![BTreeSet::new(); nregions];
    for (ri, _) in f.regions.iter().enumerate() {
        let rid = RegionId(ri as u32);
        for &v in &accessed[ri] {
            let class = classify(module, func_idx, v, rid, &writes);
            if class == VarClass::Global {
                global_vars[ri].insert(v);
            }
        }
    }

    RegionVars {
        accessed,
        global_vars,
        reads,
        writes,
    }
}

/// Classify variable `v` relative to region `rid` of `func_idx`.
pub fn classify(
    module: &Module,
    func_idx: u32,
    v: VarId,
    rid: RegionId,
    writes: &BTreeMap<u32, BTreeSet<VarId>>,
) -> VarClass {
    let f = &module.functions[func_idx as usize];
    match v {
        VarId::Global(_) => VarClass::Global,
        VarId::Local(fi, li) => {
            debug_assert_eq!(fi, func_idx);
            let var = &f.locals[li as usize];
            // Parameters are global to the function body: they form the
            // read set of the function-level CU (§3.2.5).
            if var.is_param {
                return VarClass::Global;
            }
            let decl_region = var.region.unwrap_or(mir::RegionId(0));
            if !region_contains(f, rid, decl_region) {
                // Declared outside `rid`: global to it.
                return VarClass::Global;
            }
            // Declared inside. Loop *iteration* variables — declared on the
            // loop header line itself — are local unless written inside the
            // body (§3.2.5). Ordinary locals declared in the body are
            // simply local.
            let decl = &f.regions[decl_region.index()];
            if decl.kind == mir::RegionKind::Loop
                && f.regions[decl_region.index()]
                    .owned_locals
                    .contains(&mir::LocalId(li))
                && var.line == decl.start_line
            {
                let header = decl.start_line;
                let written_in_body = writes.iter().any(|(&line, vars)| {
                    line != header
                        && line >= decl.start_line
                        && line <= decl.end_line
                        && vars.contains(&v)
                });
                if written_in_body {
                    return VarClass::Global;
                }
            }
            VarClass::Local
        }
    }
}

/// Human-readable name of a [`VarId`].
pub fn var_name(module: &Module, v: VarId) -> String {
    match v {
        VarId::Global(g) => module.globals[g as usize].name.clone(),
        VarId::Local(f, l) => module.functions[f as usize].locals[l as usize].name.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn module(src: &str) -> Module {
        lang::compile(src, "t").unwrap()
    }

    #[test]
    fn innermost_region_selected() {
        let m = module(
            "fn main() {\nfor (int i = 0; i < 2; i = i + 1) {\nfor (int j = 0; j < 2; j = j + 1) {\nint x = 0;\n}\n}\n}",
        );
        let (_, f) = m.function("main").unwrap();
        // Line 4 is inside the inner loop (region 2).
        assert_eq!(region_of_line(f, 4), RegionId(2));
        // Line 2 is the outer loop header.
        assert_eq!(region_of_line(f, 2), RegionId(1));
    }

    #[test]
    fn induction_var_is_local_globals_are_global() {
        let m = module(
            "global int g;\nfn main() {\nfor (int i = 0; i < 4; i = i + 1) {\ng = g + i;\n}\n}",
        );
        let rv = analyze(&m, 0);
        let (_, f) = m.function("main").unwrap();
        let loop_region = f
            .regions
            .iter()
            .position(|r| r.kind == mir::RegionKind::Loop)
            .unwrap();
        let globals = &rv.global_vars[loop_region];
        // g is global to the loop; i is not.
        assert!(globals.iter().any(|&v| matches!(v, VarId::Global(0))));
        let i_local = f.local_by_name("i").unwrap();
        assert!(!globals.contains(&VarId::Local(0, i_local.0)));
    }

    #[test]
    fn induction_var_written_in_body_becomes_global() {
        let m = module("fn main() {\nfor (int i = 0; i < 4; i = i + 1) {\ni = i + 2;\n}\n}");
        let rv = analyze(&m, 0);
        let (_, f) = m.function("main").unwrap();
        let i_local = f.local_by_name("i").unwrap();
        let loop_region = f
            .regions
            .iter()
            .position(|r| r.kind == mir::RegionKind::Loop)
            .unwrap();
        assert!(
            rv.global_vars[loop_region].contains(&VarId::Local(0, i_local.0)),
            "i written in the body must be global to the loop"
        );
    }

    #[test]
    fn outer_local_is_global_to_inner_loop() {
        let m = module(
            "fn main() {\nint acc = 0;\nfor (int i = 0; i < 4; i = i + 1) {\nacc = acc + i;\n}\n}",
        );
        let rv = analyze(&m, 0);
        let (_, f) = m.function("main").unwrap();
        let acc = f.local_by_name("acc").unwrap();
        let loop_region = f
            .regions
            .iter()
            .position(|r| r.kind == mir::RegionKind::Loop)
            .unwrap();
        assert!(rv.global_vars[loop_region].contains(&VarId::Local(0, acc.0)));
        // But acc is local to the function body (declared there).
        assert!(!rv.global_vars[0].contains(&VarId::Local(0, acc.0)));
    }

    #[test]
    fn params_global_to_body() {
        let m = module("fn f(int n) -> int {\nreturn n + 1;\n}\nfn main() {\nint x = f(3);\n}");
        let rv = analyze(&m, 0);
        assert!(rv.global_vars[0]
            .iter()
            .any(|&v| matches!(v, VarId::Local(0, _))));
    }
}
