//! Instrumentation events and the sink trait consumed by analyses.
//!
//! Events are emitted by the pre-decoded run loop ([`crate::machine`]) and,
//! identically, by the tree-walking oracle ([`crate::reference`]): the
//! decode layer is invisible at this boundary — same events, same order,
//! same field values — so every downstream consumer (profiler engines, PET
//! builder, recorded traces) is unaffected by how dispatch is implemented.

use mir::RegionKind;

/// A single profiled memory access.
///
/// Carries everything the DiscoPoP dependence representation needs
/// (dissertation §2.3.1): source line, variable name (as a symbol id
/// resolvable through [`crate::Program::symbol`]), thread id, and a
/// monotonically increasing timestamp used for race detection on
/// multi-threaded targets (§2.3.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemEvent {
    /// `true` for stores, `false` for loads.
    pub is_write: bool,
    /// The accessed address (word-aligned logical address).
    pub addr: u64,
    /// Static id of the memory *operation* (the load/store instruction in
    /// the IR); distinct from the dynamic memory *instruction* this event
    /// represents. The skip optimization (dissertation §2.4) keys its
    /// per-operation state on this.
    pub op: u32,
    /// Source line of the access.
    pub line: u32,
    /// Symbol id of the accessed variable.
    pub var: u32,
    /// Executing thread.
    pub thread: u32,
    /// Global step counter at the time of the access.
    pub ts: u64,
}

/// Emitted when a control region (loop or branch) exits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegionExitEvent {
    /// Function containing the region.
    pub func: u32,
    /// Region id within the function.
    pub region: u32,
    /// Loop or branch.
    pub kind: RegionKind,
    /// First source line of the region.
    pub start_line: u32,
    /// Last source line of the region.
    pub end_line: u32,
    /// Iterations executed (loops only; 0 for branches).
    pub iters: u64,
    /// Dynamic instructions executed inside the region (inclusive).
    pub dyn_instrs: u64,
    /// Executing thread.
    pub thread: u32,
}

/// The full instrumentation event stream.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A load or store.
    Mem(MemEvent),
    /// Control enters a region.
    RegionEnter {
        func: u32,
        region: u32,
        kind: RegionKind,
        start_line: u32,
        end_line: u32,
        thread: u32,
    },
    /// Control leaves a region.
    RegionExit(RegionExitEvent),
    /// A loop region starts an iteration.
    LoopIter { func: u32, region: u32, thread: u32 },
    /// A function is entered (after arguments are bound).
    FuncEnter { func: u32, line: u32, thread: u32 },
    /// A function returns.
    FuncExit { func: u32, line: u32, thread: u32 },
    /// A contiguous address range of `words` machine words died (frame pop
    /// or region-scoped local going out of scope). Drives variable-lifetime
    /// analysis (dissertation §2.3.5).
    VarDealloc { addr: u64, words: u64, thread: u32 },
    /// `child` was spawned by `parent`.
    ThreadSpawn { parent: u32, child: u32, line: u32 },
    /// `thread` completed a `join(target)` — a synchronization point: all
    /// of `target`'s events happen before `thread`'s subsequent events.
    ThreadJoin { thread: u32, target: u32, line: u32 },
    /// A thread finished.
    ThreadEnd { thread: u32 },
    /// A lock was acquired.
    LockAcquire { id: i64, thread: u32, line: u32 },
    /// A lock was released.
    LockRelease { id: i64, thread: u32, line: u32 },
}

impl Event {
    /// The thread that produced this event.
    pub fn thread(&self) -> u32 {
        match self {
            Event::Mem(m) => m.thread,
            Event::RegionEnter { thread, .. }
            | Event::RegionExit(RegionExitEvent { thread, .. })
            | Event::LoopIter { thread, .. }
            | Event::FuncEnter { thread, .. }
            | Event::FuncExit { thread, .. }
            | Event::VarDealloc { thread, .. }
            | Event::ThreadJoin { thread, .. }
            | Event::ThreadEnd { thread }
            | Event::LockAcquire { thread, .. }
            | Event::LockRelease { thread, .. } => *thread,
            Event::ThreadSpawn { parent, .. } => *parent,
        }
    }
}

/// Consumer of the instrumentation stream.
///
/// Implementations must be cheap when they ignore events: the interpreter
/// calls [`Sink::event`] inline on the hot path, so a no-op sink measures
/// "native" execution and any other sink measures instrumented execution —
/// the ratio is the profiling slowdown reported in the experiments.
///
/// # Batched delivery
///
/// When [`Sink::batch_hint`] returns `true` (the default), the interpreter
/// coalesces events into a reusable buffer and delivers them through
/// [`Sink::events`] in chunks of [`crate::RunConfig::batch_cap`], instead of
/// crossing the interpreter→sink boundary once per memory access. Delivery
/// order is exactly emission order, so a sink observes the identical stream
/// either way — batching is purely a throughput optimization (it replaces a
/// per-event call + dispatch with a buffer push, and lets sinks run their
/// per-event match loop over a slice). Sinks that discard events
/// ([`NullSink`]) opt out so the uninstrumented baseline pays nothing.
pub trait Sink {
    /// Compile-time interest flag: `false` promises every event is ignored,
    /// letting the interpreter's emit path — including construction of the
    /// event values themselves — compile away entirely for that sink. This
    /// is what makes the "native" baseline truly uninstrumented dispatch.
    const WANTS_EVENTS: bool = true;

    /// Handle one event.
    fn event(&mut self, ev: &Event);

    /// Handle a batch of events, in delivery order. The default forwards to
    /// [`Sink::event`]; hot sinks override this to hoist per-batch work out
    /// of the loop.
    fn events(&mut self, evs: &[Event]) {
        for ev in evs {
            self.event(ev);
        }
    }

    /// Should the interpreter buffer events and deliver them in batches?
    /// Return `false` when each event is ignored or trivially cheap, so the
    /// interpreter skips buffer pushes entirely.
    fn batch_hint(&self) -> bool {
        true
    }
}

/// Discards everything: the "uninstrumented run" baseline.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl Sink for NullSink {
    const WANTS_EVENTS: bool = false;

    #[inline(always)]
    fn event(&mut self, _ev: &Event) {}

    #[inline(always)]
    fn events(&mut self, _evs: &[Event]) {}

    fn batch_hint(&self) -> bool {
        false
    }
}

/// Records every event; used by tests and by offline analyses (CU
/// construction) that want the full trace.
#[derive(Debug, Default, Clone)]
pub struct RecordingSink {
    /// The recorded trace, in delivery order.
    pub events: Vec<Event>,
}

impl Sink for RecordingSink {
    fn event(&mut self, ev: &Event) {
        self.events.push(ev.clone());
    }

    fn events(&mut self, evs: &[Event]) {
        self.events.extend_from_slice(evs);
    }
}

impl<S: Sink + ?Sized> Sink for &mut S {
    const WANTS_EVENTS: bool = S::WANTS_EVENTS;

    #[inline(always)]
    fn event(&mut self, ev: &Event) {
        (**self).event(ev);
    }

    #[inline(always)]
    fn events(&mut self, evs: &[Event]) {
        (**self).events(evs);
    }

    fn batch_hint(&self) -> bool {
        (**self).batch_hint()
    }
}

/// Fan out one stream to two sinks (e.g. profile and record simultaneously).
pub struct TeeSink<A, B>(pub A, pub B);

impl<A: Sink, B: Sink> Sink for TeeSink<A, B> {
    const WANTS_EVENTS: bool = A::WANTS_EVENTS || B::WANTS_EVENTS;

    #[inline(always)]
    fn event(&mut self, ev: &Event) {
        self.0.event(ev);
        self.1.event(ev);
    }

    #[inline(always)]
    fn events(&mut self, evs: &[Event]) {
        self.0.events(evs);
        self.1.events(evs);
    }

    fn batch_hint(&self) -> bool {
        self.0.batch_hint() || self.1.batch_hint()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recording_sink_records() {
        let mut s = RecordingSink::default();
        s.event(&Event::ThreadEnd { thread: 0 });
        assert_eq!(s.events.len(), 1);
    }

    #[test]
    fn event_thread_extraction() {
        let e = Event::ThreadSpawn {
            parent: 2,
            child: 3,
            line: 1,
        };
        assert_eq!(e.thread(), 2);
        let m = Event::Mem(MemEvent {
            is_write: true,
            addr: 8,
            op: 0,
            line: 1,
            var: 0,
            thread: 5,
            ts: 0,
        });
        assert_eq!(m.thread(), 5);
    }

    #[test]
    fn tee_fans_out() {
        let mut tee = TeeSink(RecordingSink::default(), RecordingSink::default());
        tee.event(&Event::ThreadEnd { thread: 1 });
        assert_eq!(tee.0.events.len(), 1);
        assert_eq!(tee.1.events.len(), 1);
    }
}
