//! Pre-decoded bytecode: the compact flat execution form of a verified
//! module.
//!
//! [`mir`] functions are tree-shaped — blocks of enum instructions with
//! name-keyed calls and symbolic places — which is the right shape for
//! construction and verification but a poor shape for the interpreter hot
//! loop. [`Program::new`](crate::Program::new) therefore lowers each
//! function once into a [`FuncCode`] built around a *hot/cold split*:
//!
//! - The execution stream is one contiguous array of fixed-size [`HotOp`]
//!   records (≤ 16 bytes each, compile-time asserted — a quarter of the
//!   old enum-of-structs op). A hot op carries only the opcode and small
//!   `u32` operand fields; everything bulky lives in per-function *side
//!   pools* indexed by those fields:
//!   - [`MemRef`] pool: precompiled place descriptors (segment/slot base,
//!     element count, symbol, line, static memory-op id) for loads/stores,
//!   - immediate pool: deduplicated constant [`Value`]s, referenced by
//!     [`Opnd`] operands,
//!   - call-arg pool: argument operand slices for calls,
//!   - superinstruction pools: the cold bodies of fused ops (below).
//! - Block starts are flattened to absolute pcs (block terminators become
//!   explicit [`HotOp::Jump`]/[`HotOp::Branch`]/[`HotOp::Return`] ops, so
//!   one dynamic instruction is exactly one decoded slot and step counts
//!   are unchanged); branch successors are pc *deltas* relative to the
//!   branching op.
//! - Call targets are pre-resolved to function indices
//!   ([`HotOp::CallUser`]) or [`Builtin`] ids ([`HotOp::CallBuiltin`]);
//!   names that resolve to nothing decode to [`HotOp::CallUnknown`] so the
//!   runtime error still surfaces only if the call actually executes.
//!
//! # Superinstructions
//!
//! A decode-time peephole (on by default, [`DecodeConfig::fuse`]) fuses the
//! frequent adjacent sequences of the dispatch loop into single ops:
//!
//! | fused op                  | constituent slots          | typical shape |
//! |---------------------------|----------------------------|---------------|
//! | [`HotOp::CmpBranch`]      | `Bin`,`Branch`             | loop/if condition |
//! | [`HotOp::LoadCmpBranch`]  | `Load`,`Bin`,`Branch`      | `i < n` loop header |
//! | [`HotOp::Rmw`]            | `Load`,`Bin`,`Store`       | `i = i + 1`, `x += v` |
//! | [`HotOp::RmwJump`]        | `Load`,`Bin`,`Store`,`Jump`| loop-increment block |
//! | [`HotOp::LoadRmw`]        | `Load`,`Load`,`Bin`,`Store`| `a[i] = a[i] op b[j]` |
//! | [`HotOp::LoadRmwJump`]    | `Load`,`Load`,`Bin`,`Store`,`Jump` | body-final array update |
//! | [`HotOp::LoadLoadBin`]    | `Load`,`Load`,`Bin`        | `a[i] op b[j]` subterm |
//! | [`HotOp::LoadBin`]        | `Load`,`Bin`                | `a[i] * x` subterm |
//!
//! The `*Jump` variants fold a block's trailing unconditional `Jump`
//! terminator into the superinstruction exit (the jump is one charged
//! constituent, its delta rides in the hot record relative to the jump's
//! own slot), so a loop's increment block or body-final update dispatches
//! once instead of twice.
//!
//! Fusion is *observationally invisible* — the invariants, pinned by
//! `tests/decode_equivalence.rs` against the tree-walking oracle in
//! [`crate::reference`]:
//!
//! - A fused op executes its constituents verbatim, in order, emitting the
//!   same [`Event`](crate::Event)/[`MemEvent`](crate::MemEvent) sequence
//!   with the same static op ids and timestamps.
//! - Each constituent counts as one logical step against the scheduler
//!   slice budget, so slice boundaries — and therefore batch/racy delivery
//!   boundaries — are unchanged.
//! - Only the *head* slot of a fused sequence is rewritten; the tail slots
//!   keep their plain ops. When the budget expires or a constituent traps
//!   mid-sequence, the machine parks the pc at the first unexecuted (or
//!   trapping) constituent's own slot, and execution resumes — or the
//!   error reports — exactly as in the unfused stream.
//! - The peephole never crosses a block seam (patterns match only inside
//!   one block's slot range, so no jump target can land between a head and
//!   its tail expecting fused state), and it skips `Div`/`Rem` bins, whose
//!   division-by-zero trap would need the cold line table mid-sequence.
//!
//! The decode is purely mechanical: [`crate::reference`] interprets the
//! original tree form and must produce a byte-identical event stream
//! (`tests/decode_equivalence.rs` pins this on real workloads, with the
//! peephole both enabled and disabled).

use crate::program::{MemOpMeta, GLOBAL_BASE, WORD};
use fxhash::FxHashMap;
use mir::{
    BinOp, Function, Module, Operand, Place, RegId, RegionKind, Terminator, UnOp, Value, VarRef,
};

/// Built-in functions callable from mini-C, pre-resolved at decode time.
///
/// User functions shadow builtins of the same name, matching the resolution
/// order of the original interpreter (module functions first).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Builtin {
    /// `print(args…)` — collect output.
    Print,
    /// `sqrt(x)`.
    Sqrt,
    /// `sin(x)`.
    Sin,
    /// `cos(x)`.
    Cos,
    /// `exp(x)`.
    Exp,
    /// `log(x)`.
    Log,
    /// `fabs(x)`.
    Fabs,
    /// `floor(x)`.
    Floor,
    /// `ceil(x)`.
    Ceil,
    /// `pow(x, y)`.
    Pow,
    /// `fmin(x, y)`.
    Fmin,
    /// `fmax(x, y)`.
    Fmax,
    /// `abs(x)` (integer).
    Abs,
    /// `min(x, y)` (integer).
    Min,
    /// `max(x, y)` (integer).
    Max,
    /// `rand()` — seeded program-visible RNG.
    Rand,
    /// `frand()` — uniform f64 in [0, 1).
    Frand,
    /// `srand(seed)`.
    Srand,
    /// `tid()` — current thread id.
    Tid,
    /// `lock(id)` — may block.
    Lock,
    /// `unlock(id)`.
    Unlock,
    /// `join(tid)` — may block.
    Join,
    /// `spawn(func_index, args…)`.
    Spawn,
    /// `spawn_actor(func_index, args…)` — like `spawn`; the child is an
    /// actor addressable with `send`. (Every thread is an actor; the
    /// distinct name keeps message-passing workloads self-describing.)
    SpawnActor,
    /// `send(actor, value)` — deliver into the target's bounded mailbox;
    /// blocks while the mailbox is full.
    Send,
    /// `receive()` — take the oldest message from the calling actor's
    /// mailbox; blocks while it is empty.
    Receive,
}

impl Builtin {
    /// Resolve a builtin by source name.
    pub fn from_name(name: &str) -> Option<Builtin> {
        Some(match name {
            "print" => Builtin::Print,
            "sqrt" => Builtin::Sqrt,
            "sin" => Builtin::Sin,
            "cos" => Builtin::Cos,
            "exp" => Builtin::Exp,
            "log" => Builtin::Log,
            "fabs" => Builtin::Fabs,
            "floor" => Builtin::Floor,
            "ceil" => Builtin::Ceil,
            "pow" => Builtin::Pow,
            "fmin" => Builtin::Fmin,
            "fmax" => Builtin::Fmax,
            "abs" => Builtin::Abs,
            "min" => Builtin::Min,
            "max" => Builtin::Max,
            "rand" => Builtin::Rand,
            "frand" => Builtin::Frand,
            "srand" => Builtin::Srand,
            "tid" => Builtin::Tid,
            "lock" => Builtin::Lock,
            "unlock" => Builtin::Unlock,
            "join" => Builtin::Join,
            "spawn" => Builtin::Spawn,
            "spawn_actor" => Builtin::SpawnActor,
            "send" => Builtin::Send,
            "receive" => Builtin::Receive,
            _ => return None,
        })
    }

    /// Does this builtin touch a mailbox? Such call sites get a static
    /// memory-op id (appended after the load/store id range) because their
    /// sends/receives are emitted as [`crate::MemEvent`]s over mailbox
    /// addresses — dependence-bearing accesses like any other.
    pub fn is_mailbox_op(self) -> bool {
        matches!(self, Builtin::Send | Builtin::Receive)
    }
}

/// Decode options for [`crate::Program`] construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeConfig {
    /// Run the superinstruction peephole (fusion). Off, the stream is the
    /// plain one-op-per-slot form; on (the default), frequent adjacent
    /// sequences fuse into single dispatches. Both forms are required to
    /// produce byte-identical event streams.
    pub fuse: bool,
}

impl Default for DecodeConfig {
    fn default() -> Self {
        DecodeConfig { fuse: true }
    }
}

/// High bit of a packed operand: set for immediates.
const IMM_BIT: u32 = 1 << 31;
/// Second-highest bit: among immediates, set for inline small integers.
const INLINE_BIT: u32 = 1 << 30;
/// Payload mask of an immediate operand.
const IMM_MASK: u32 = INLINE_BIT - 1;
/// Inclusive bound of inline-encodable integers (signed 30-bit payload).
const INLINE_MAX: i64 = (1 << 29) - 1;
const INLINE_MIN: i64 = -(1 << 29);

/// Register-destination sentinel for calls with no result.
pub const DST_NONE: u32 = u32::MAX;

/// A packed instruction operand — one `u32` against the 16-byte
/// [`mir::Operand`]:
///
/// - bit 31 clear: a register index;
/// - bits 31+30 set: an inline signed 30-bit integer constant (the
///   overwhelmingly common immediate — loop bounds, strides, ±1 — pays no
///   pool load);
/// - bit 31 set, bit 30 clear: an index into the function's immediate pool
///   (floats and out-of-range integers).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Opnd(u32);

impl Opnd {
    /// Pack a register operand.
    fn reg(r: RegId) -> Opnd {
        assert!(r.0 < IMM_BIT, "register index exceeds packed-operand range");
        Opnd(r.0)
    }

    /// Pack an immediate-pool reference.
    fn pool(idx: usize) -> Opnd {
        assert!(
            (idx as u64) < IMM_MASK as u64,
            "immediate pool exceeds packed-operand range"
        );
        Opnd(IMM_BIT | idx as u32)
    }

    /// Pack an inline small-integer constant (`INLINE_MIN..=INLINE_MAX`).
    fn inline_int(v: i64) -> Opnd {
        debug_assert!((INLINE_MIN..=INLINE_MAX).contains(&v));
        Opnd(IMM_BIT | INLINE_BIT | (v as u32 & IMM_MASK))
    }

    /// Evaluate against the current register file and the function's
    /// immediate pool. The dispatch-loop equivalent of
    /// `op_val(Operand::Reg | Operand::Const)`.
    #[inline]
    pub fn value(self, regs: &[Value], imms: &[Value]) -> Value {
        let x = self.0;
        if (x as i32) >= 0 {
            regs[x as usize]
        } else if x & INLINE_BIT != 0 {
            // Sign-extend the 30-bit payload: shift it to the top and
            // arithmetic-shift back down.
            Value::I64((((x << 2) as i32) >> 2) as i64)
        } else {
            imms[(x & IMM_MASK) as usize]
        }
    }
}

/// A precompiled memory reference — the cold record behind
/// [`HotOp::Load`]/[`HotOp::Store`] (and the fused ops' mem constituents):
/// everything address resolution and event emission need without touching
/// the module.
///
/// The interpreter resolves a global reference as
/// `GLOBAL_BASE + (base + index) * WORD` and a local one as
/// `STACK_BASE + thread * STACK_SPAN + (frame_base + base + index) * WORD`.
/// Kept to 32 bytes (two per cache line): the out-of-bounds error message
/// reconstructs the variable name from the interned symbol, so no variable
/// reference needs to travel here.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemRef {
    /// Element count (1 for scalars) — the bounds check limit.
    pub elems: u64,
    /// Word slot base: global-segment slot for globals, frame-relative word
    /// offset for locals.
    pub base: u32,
    /// Interned symbol id reported in [`crate::MemEvent::var`].
    pub sym: u32,
    /// Packed index operand; meaningful only when [`MemRef::has_index`].
    pub index: Opnd,
    /// Source line, reported in the memory event.
    pub line: u32,
    /// Static memory-operation id.
    pub op_id: u32,
    /// `false` addresses element 0 (scalar access; `index` is unused).
    pub has_index: bool,
    /// `true` = global data segment, `false` = current frame.
    pub global: bool,
}

/// Cold body of a fused `Bin`+`Branch` ([`HotOp::CmpBranch`]).
///
/// Branch deltas stay relative to the *branch constituent's* slot (head pc
/// + 1), exactly as in the unfused stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CmpBranchCode {
    /// The (non-trapping) binary operator.
    pub op: BinOp,
    /// Bin destination register.
    pub dst: u32,
    /// Bin left operand.
    pub lhs: Opnd,
    /// Bin right operand.
    pub rhs: Opnd,
    /// Branch condition operand.
    pub cond: Opnd,
    /// Taken-successor delta from the branch slot.
    pub then_delta: i32,
    /// Not-taken-successor delta from the branch slot.
    pub else_delta: i32,
}

/// Cold body of a fused `Load`+`Bin`+`Branch` ([`HotOp::LoadCmpBranch`]) —
/// the `i < n` loop-header triple.
///
/// Memory constituents embed their [`MemRef`] by value (duplicating the
/// pool entry the plain tail op still uses), so the fused path reads one
/// sequential record instead of chasing a second dependent pool hop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadCmpBranchCode {
    /// Load destination register.
    pub load_dst: u32,
    /// Load memory reference (copy of the tail slot's pool entry).
    pub load: MemRef,
    /// The compare-and-branch tail (deltas relative to head pc + 2).
    pub cmp: CmpBranchCode,
}

/// Cold body of a fused `Load`+`Bin`+`Store` ([`HotOp::Rmw`]) — the
/// read-modify-write triple (`i = i + 1`, `x += v`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RmwCode {
    /// Load destination register.
    pub load_dst: u32,
    /// Load memory reference (copy of the head slot's pool entry).
    pub load: MemRef,
    /// The (non-trapping) binary operator.
    pub op: BinOp,
    /// Bin destination register.
    pub bin_dst: u32,
    /// Bin left operand.
    pub lhs: Opnd,
    /// Bin right operand.
    pub rhs: Opnd,
    /// Store memory reference (copy of the tail slot's pool entry).
    pub store: MemRef,
    /// Store value operand.
    pub store_src: Opnd,
}

/// Cold body of a fused `Load`+`Load`+`Bin`+`Store` ([`HotOp::LoadRmw`]) —
/// the array-update quadruple (`a[i] = a[i] op b[j]`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadRmwCode {
    /// First load destination register.
    pub load_dst: u32,
    /// First load memory reference (copy of the head slot's pool entry).
    pub load: MemRef,
    /// Second load + bin + store tail.
    pub rmw: RmwCode,
}

/// Cold body of a fused `Load`+`Load`+`Bin` ([`HotOp::LoadLoadBin`]) —
/// the two-array subterm triple (`a[i] op b[j]`), hot in CG's
/// sparse-matrix inner products per PR 5's static counts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadLoadBinCode {
    /// First load destination register.
    pub load_dst: u32,
    /// First load memory reference (copy of the head slot's pool entry).
    pub load: MemRef,
    /// Second load destination register.
    pub load2_dst: u32,
    /// Second load memory reference (copy of the tail slot's pool entry).
    pub load2: MemRef,
    /// The (non-trapping) binary operator.
    pub op: BinOp,
    /// Bin destination register.
    pub bin_dst: u32,
    /// Bin left operand.
    pub lhs: Opnd,
    /// Bin right operand.
    pub rhs: Opnd,
}

/// Cold body of a fused `Load`+`Bin` ([`HotOp::LoadBin`]) — the
/// array-subterm pair (`a[i] op x`), the most frequent 2-op pattern left
/// after the longer fusions per PR 5's static counts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadBinCode {
    /// Load destination register.
    pub load_dst: u32,
    /// Load memory reference (copy of the head slot's pool entry).
    pub load: MemRef,
    /// The (non-trapping) binary operator.
    pub op: BinOp,
    /// Bin destination register.
    pub bin_dst: u32,
    /// Bin left operand.
    pub lhs: Opnd,
    /// Bin right operand.
    pub rhs: Opnd,
}

/// A decoded instruction slot of the flat stream — the fixed-size hot
/// record of the hot/cold split. Exactly one slot per dynamic instruction
/// of the unfused stream; fused ops occupy their head constituent's slot
/// (tails keep their plain ops for mid-sequence resume).
///
/// The 16-byte bound is what makes the dispatch loop walk a dense array —
/// enforced at compile time below and regression-guarded in CI.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum HotOp {
    /// `dst = load mems[mem]`, emitting a memory event.
    Load {
        /// Destination register.
        dst: u32,
        /// [`MemRef`] pool index.
        mem: u32,
    },
    /// `store mems[mem], src`, emitting a memory event.
    Store {
        /// [`MemRef`] pool index.
        mem: u32,
        /// Value operand.
        src: Opnd,
    },
    /// `dst = lhs op rhs` for operators that cannot trap.
    Bin {
        /// Operator (never `Div`/`Rem`).
        op: BinOp,
        /// Destination register.
        dst: u32,
        /// Left operand.
        lhs: Opnd,
        /// Right operand.
        rhs: Opnd,
    },
    /// `dst = lhs op rhs` for `Div`/`Rem`, which can raise
    /// division-by-zero; the source line for the error is looked up in the
    /// cold [`FuncCode::trap_lines`] table by pc.
    BinChecked {
        /// Operator (`Div` or `Rem`).
        op: BinOp,
        /// Destination register.
        dst: u32,
        /// Left operand.
        lhs: Opnd,
        /// Right operand.
        rhs: Opnd,
    },
    /// `dst = op src`.
    Un {
        /// Operator.
        op: UnOp,
        /// Destination register.
        dst: u32,
        /// Operand.
        src: Opnd,
    },
    /// Call of a user function, target pre-resolved to its index.
    CallUser {
        /// Callee function index.
        target: u32,
        /// Call-arg pool index.
        args: u32,
        /// Register receiving the return value; [`DST_NONE`] if none.
        dst: u32,
    },
    /// Call of a builtin, pre-resolved to its [`Builtin`] id.
    CallBuiltin {
        /// The builtin.
        builtin: Builtin,
        /// Call-arg pool index.
        args: u32,
        /// Register receiving the return value; [`DST_NONE`] if none.
        dst: u32,
        /// Source line (thread/lock events and errors).
        line: u32,
    },
    /// Call of a name that resolved to nothing at decode time; executing it
    /// raises [`crate::RuntimeError::UnknownFunction`], preserving the lazy
    /// failure semantics of name-map resolution.
    CallUnknown {
        /// Index into [`FuncCode::unknown_names`].
        name: u32,
    },
    /// Control enters region `region`; kind and end line pre-resolved.
    RegionEnter {
        /// Region kind.
        kind: RegionKind,
        /// Region id within the function.
        region: u32,
        /// Start line (from the marker instruction).
        line: u32,
        /// Last source line of the region.
        end_line: u32,
    },
    /// Control leaves region `region`.
    RegionExit {
        /// Region id within the function.
        region: u32,
    },
    /// A loop region starts an iteration.
    LoopIter {
        /// Region id within the function.
        region: u32,
    },
    /// The loop body is entered (executed-iteration count).
    LoopBody {
        /// Region id within the function.
        region: u32,
    },
    /// Unconditional jump, encoded as a pc delta from this op.
    Jump {
        /// Target pc minus this op's pc.
        delta: i32,
    },
    /// Two-way branch on a truthy operand, successors as pc deltas.
    Branch {
        /// Condition operand.
        cond: Opnd,
        /// Taken-successor pc delta.
        then_delta: i32,
        /// Not-taken-successor pc delta.
        else_delta: i32,
    },
    /// Return from the function.
    Return {
        /// Return value operand, if any.
        val: Option<Opnd>,
    },
    /// A `Terminator::Unreachable` left in an unverified module; panics if
    /// executed (verified IR never contains one).
    Unreachable,
    /// Fused `Bin`+`Branch` (2 logical steps); body in
    /// [`FuncCode::cmp_branches`].
    CmpBranch {
        /// Superinstruction pool index.
        fused: u32,
    },
    /// Fused `Load`+`Bin`+`Branch` (3 logical steps); body in
    /// [`FuncCode::load_cmp_branches`].
    LoadCmpBranch {
        /// Superinstruction pool index.
        fused: u32,
    },
    /// Fused `Load`+`Bin`+`Store` (3 logical steps); body in
    /// [`FuncCode::rmws`].
    Rmw {
        /// Superinstruction pool index.
        fused: u32,
    },
    /// Fused `Load`+`Bin`+`Store`+`Jump` (4 logical steps): an [`HotOp::Rmw`]
    /// body (in [`FuncCode::rmws`]) whose block ends in an unconditional
    /// jump — the canonical loop-increment block. The jump delta is
    /// relative to the jump constituent's own slot (head pc + 3).
    RmwJump {
        /// Superinstruction pool index (shares [`FuncCode::rmws`]).
        fused: u32,
        /// Jump delta from the jump constituent's slot.
        delta: i32,
    },
    /// Fused `Load`+`Load`+`Bin`+`Store` (4 logical steps); body in
    /// [`FuncCode::load_rmws`].
    LoadRmw {
        /// Superinstruction pool index.
        fused: u32,
    },
    /// Fused `Load`+`Load`+`Bin`+`Store`+`Jump` (5 logical steps): a
    /// [`HotOp::LoadRmw`] body (in [`FuncCode::load_rmws`]) whose block ends
    /// in an unconditional jump — a body-final array update. The jump delta
    /// is relative to the jump constituent's own slot (head pc + 4).
    LoadRmwJump {
        /// Superinstruction pool index (shares [`FuncCode::load_rmws`]).
        fused: u32,
        /// Jump delta from the jump constituent's slot.
        delta: i32,
    },
    /// Fused `Load`+`Load`+`Bin` (3 logical steps); body in
    /// [`FuncCode::load_load_bins`].
    LoadLoadBin {
        /// Superinstruction pool index.
        fused: u32,
    },
    /// Fused `Load`+`Bin` (2 logical steps); body in
    /// [`FuncCode::load_bins`].
    LoadBin {
        /// Superinstruction pool index.
        fused: u32,
    },
}

// The whole point of the hot/cold split: growing any variant past the
// 16-byte record is a dispatch-loop dcache regression and fails the build.
const _: () = assert!(
    std::mem::size_of::<HotOp>() <= 16,
    "HotOp exceeds the 16-byte hot-record budget"
);

/// An owned-local range of a region: locals that die when the region exits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OwnedRange {
    /// Frame-relative word offset of the local.
    pub off: u32,
    /// Size of the local in words.
    pub words: u64,
}

/// Pre-resolved region metadata consulted on region entry/exit.
#[derive(Debug, Clone, PartialEq)]
pub struct RegionCode {
    /// Region kind.
    pub kind: RegionKind,
    /// First source line.
    pub start_line: u32,
    /// Last source line.
    pub end_line: u32,
    /// Owned locals as `(frame offset, words)` ranges, in declaration order.
    pub owned: Box<[OwnedRange]>,
}

/// The flat, pre-decoded form of one function: the unit the interpreter
/// executes — the hot stream plus its cold side pools.
#[derive(Debug, Clone, PartialEq)]
pub struct FuncCode {
    /// The hot instruction stream; block 0 starts at pc 0. One slot per
    /// dynamic instruction of the unfused stream (fused heads replace
    /// their first constituent's slot; tails stay plain).
    pub hot: Box<[HotOp]>,
    /// Memory-reference pool behind load/store slots.
    pub mems: Box<[MemRef]>,
    /// Immediate pool: deduplicated constants referenced by [`Opnd`]s.
    pub imms: Box<[Value]>,
    /// Call-argument pool: one operand slice per call site.
    pub call_args: Box<[Box<[Opnd]>]>,
    /// Unresolved callee names ([`HotOp::CallUnknown`]).
    pub unknown_names: Box<[Box<str>]>,
    /// Fused compare-and-branch bodies.
    pub cmp_branches: Box<[CmpBranchCode]>,
    /// Fused load-compare-branch bodies.
    pub load_cmp_branches: Box<[LoadCmpBranchCode]>,
    /// Fused read-modify-write bodies.
    pub rmws: Box<[RmwCode]>,
    /// Fused load-read-modify-write bodies.
    pub load_rmws: Box<[LoadRmwCode]>,
    /// Fused load-load-bin bodies.
    pub load_load_bins: Box<[LoadLoadBinCode]>,
    /// Fused load-bin bodies.
    pub load_bins: Box<[LoadBinCode]>,
    /// `(pc, source line)` for every [`HotOp::BinChecked`] slot, sorted by
    /// pc — consulted only on the cold division-by-zero path.
    pub trap_lines: Box<[(u32, u32)]>,
    /// Affine skip-tier loop plans ([`crate::synth::LoopPlan`]), compiled
    /// after decode from the static facts; empty when no loop qualifies.
    pub plans: Box<[crate::synth::LoopPlan]>,
    /// `(trigger pc, plan index)` sorted by trigger pc — the
    /// [`HotOp::LoopIter`] slots that own a plan, for [`FuncCode::plan_at`].
    pub plan_idx: Box<[(u32, u32)]>,
    /// `(pc, static op id)` of every `send`/`receive` call slot, sorted by
    /// pc. The ids live past the load/store range (see
    /// [`crate::Program::num_mem_ops`]); consulted off the hot path when
    /// the builtin executes, via [`FuncCode::mailbox_op_at`].
    pub mbox_ops: Box<[(u32, u32)]>,
    /// Pre-resolved region metadata, indexed by region id.
    pub regions: Box<[RegionCode]>,
    /// Absolute pc of each basic block's first op (diagnostics/printing).
    pub block_starts: Box<[u32]>,
    /// Frame word offset of each parameter, in order.
    pub params: Box<[u32]>,
    /// Virtual registers used by the function.
    pub num_regs: u32,
    /// Frame size in words.
    pub frame_words: u32,
    /// First source line (FuncEnter events).
    pub start_line: u32,
    /// Last source line (FuncExit events).
    pub end_line: u32,
}

impl FuncCode {
    /// Source line of the `Div`/`Rem` op at `pc` — the cold path of the
    /// division-by-zero error.
    pub fn trap_line(&self, pc: u32) -> u32 {
        match self.trap_lines.binary_search_by_key(&pc, |&(p, _)| p) {
            Ok(i) => self.trap_lines[i].1,
            Err(_) => 0,
        }
    }

    /// The affine skip-tier plan anchored at the [`HotOp::LoopIter`] slot
    /// `pc`, if that loop qualified at compile time. Consulted only when
    /// the skip tier is enabled, off the per-op hot path.
    pub fn plan_at(&self, pc: u32) -> Option<&crate::synth::LoopPlan> {
        match self.plan_idx.binary_search_by_key(&pc, |&(p, _)| p) {
            Ok(i) => Some(&self.plans[self.plan_idx[i].1 as usize]),
            Err(_) => None,
        }
    }

    /// The static memory-op id of the `send`/`receive` call at slot `pc`.
    /// Off the hot path: consulted once per executed mailbox builtin.
    pub fn mailbox_op_at(&self, pc: u32) -> Option<u32> {
        match self.mbox_ops.binary_search_by_key(&pc, |&(p, _)| p) {
            Ok(i) => Some(self.mbox_ops[i].1),
            Err(_) => None,
        }
    }
}

/// Per-function pools under construction during decode.
#[derive(Default)]
struct FuncBuilder {
    hot: Vec<HotOp>,
    mems: Vec<MemRef>,
    imms: Vec<Value>,
    call_args: Vec<Box<[Opnd]>>,
    unknown_names: Vec<Box<str>>,
    cmp_branches: Vec<CmpBranchCode>,
    load_cmp_branches: Vec<LoadCmpBranchCode>,
    rmws: Vec<RmwCode>,
    load_rmws: Vec<LoadRmwCode>,
    load_load_bins: Vec<LoadLoadBinCode>,
    load_bins: Vec<LoadBinCode>,
    trap_lines: Vec<(u32, u32)>,
    mbox_ops: Vec<(u32, u32)>,
}

impl FuncBuilder {
    /// Pack a constant: small integers encode inline in the operand word;
    /// everything else interns into the pool (bit-exact dedup, so `0.0`
    /// and `-0.0` stay distinct and NaNs don't multiply).
    fn imm(&mut self, v: Value) -> Opnd {
        if let Value::I64(x) = v {
            if (INLINE_MIN..=INLINE_MAX).contains(&x) {
                return Opnd::inline_int(x);
            }
        }
        let bits_eq = |a: &Value, b: &Value| match (a, b) {
            (Value::I64(x), Value::I64(y)) => x == y,
            (Value::F64(x), Value::F64(y)) => x.to_bits() == y.to_bits(),
            _ => false,
        };
        if let Some(i) = self.imms.iter().position(|x| bits_eq(x, &v)) {
            return Opnd::pool(i);
        }
        self.imms.push(v);
        Opnd::pool(self.imms.len() - 1)
    }

    /// Pack an operand.
    fn opnd(&mut self, o: &Operand) -> Opnd {
        match o {
            Operand::Reg(r) => Opnd::reg(*r),
            Operand::Const(v) => self.imm(*v),
        }
    }

    fn dst(d: &Option<RegId>) -> u32 {
        match d {
            Some(r) => {
                assert!(r.0 != DST_NONE, "register index collides with DST_NONE");
                r.0
            }
            None => DST_NONE,
        }
    }
}

/// Per-module context shared by all function decodes.
pub(crate) struct DecodeCtx<'m> {
    pub module: &'m Module,
    pub global_addr: &'m [u64],
    pub global_syms: &'m [u32],
    pub local_off: &'m [Vec<u64>],
    pub local_syms: &'m [Vec<u32>],
    pub frame_words: &'m [usize],
    /// Function name → index; user functions shadow builtins.
    pub func_by_name: FxHashMap<&'m str, u32>,
    /// Running static memory-operation id counter.
    pub next_op: u32,
    /// Static metadata per memory op, in id order — what used to be
    /// recovered by re-walking the op stream.
    pub mem_meta: Vec<MemOpMeta>,
    /// Running mailbox-operation ordinal counter (`send`/`receive` call
    /// sites, in program order). Their final op ids are `next_op + ordinal`
    /// — appended past the load/store range by `Program` once `next_op` is
    /// final, so load/store ids keep aligning with the analysis crate's
    /// program-order walk.
    pub next_mbox: u32,
    /// `(line, is_write)` per mailbox op, in ordinal order; `Program`
    /// extends `mem_meta` from this.
    pub mbox_meta: Vec<(u32, bool)>,
    /// Decode options (superinstruction peephole).
    pub cfg: DecodeConfig,
}

impl<'m> DecodeCtx<'m> {
    pub fn new(
        module: &'m Module,
        global_addr: &'m [u64],
        global_syms: &'m [u32],
        local_off: &'m [Vec<u64>],
        local_syms: &'m [Vec<u32>],
        frame_words: &'m [usize],
        cfg: DecodeConfig,
    ) -> Self {
        let mut func_by_name = FxHashMap::default();
        for (i, f) in module.functions.iter().enumerate() {
            // Last definition wins, matching the insert-overwrite name map
            // of the original interpreter (kept in `crate::reference`).
            // Verified modules cannot contain duplicates; unverified
            // hand-built ones must bind identically in both interpreters.
            func_by_name.insert(f.name.as_str(), i as u32);
        }
        DecodeCtx {
            module,
            global_addr,
            global_syms,
            local_off,
            local_syms,
            frame_words,
            func_by_name,
            next_op: 0,
            mem_meta: Vec::new(),
            next_mbox: 0,
            mbox_meta: Vec::new(),
            cfg,
        }
    }

    /// Build a [`MemRef`] for a place, assigning the next static memory-op
    /// id, and return its pool index.
    fn mem_ref(
        &mut self,
        b: &mut FuncBuilder,
        fx: usize,
        p: &Place,
        line: u32,
        is_write: bool,
    ) -> u32 {
        let (has_index, index) = match p.index.as_ref() {
            Some(o) => (true, b.opnd(o)),
            None => (false, Opnd::inline_int(0)),
        };
        let op_id = self.next_op;
        self.next_op += 1;
        let m = match p.var {
            VarRef::Global(g) => MemRef {
                base: ((self.global_addr[g.index()] - GLOBAL_BASE) / WORD) as u32,
                elems: self.module.globals[g.index()].elems,
                sym: self.global_syms[g.index()],
                index,
                line,
                op_id,
                has_index,
                global: true,
            },
            VarRef::Local(l) => MemRef {
                base: self.local_off[fx][l.index()] as u32,
                elems: self.module.functions[fx].locals[l.index()].elems,
                sym: self.local_syms[fx][l.index()],
                index,
                line,
                op_id,
                has_index,
                global: false,
            },
        };
        self.mem_meta.push(MemOpMeta {
            line,
            var: m.sym,
            is_write,
        });
        b.mems.push(m);
        (b.mems.len() - 1) as u32
    }

    /// Lower one function into its flat form, assigning static memory-op
    /// ids in program order (function → block → instruction, the same order
    /// the side-table scheme used), then run the superinstruction peephole
    /// when enabled.
    pub fn decode_function(&mut self, fx: usize) -> FuncCode {
        let f: &Function = &self.module.functions[fx];
        // First pass: absolute pc of each block (instrs + 1 terminator op).
        let mut block_starts = Vec::with_capacity(f.blocks.len());
        let mut n = 0u32;
        for b in &f.blocks {
            block_starts.push(n);
            n += b.instrs.len() as u32 + 1;
        }
        let mut fb = FuncBuilder {
            hot: Vec::with_capacity(n as usize),
            ..Default::default()
        };
        for b in &f.blocks {
            for i in &b.instrs {
                let pc = fb.hot.len() as u32;
                let op = self.decode_instr(&mut fb, fx, pc, i);
                fb.hot.push(op);
            }
            let pc = fb.hot.len() as u32;
            let delta = |target: u32| (target as i64 - pc as i64) as i32;
            let term = match &b.term {
                Terminator::Jump(t) => HotOp::Jump {
                    delta: delta(block_starts[t.index()]),
                },
                Terminator::Branch {
                    cond,
                    then_bb,
                    else_bb,
                } => HotOp::Branch {
                    cond: fb.opnd(cond),
                    then_delta: delta(block_starts[then_bb.index()]),
                    else_delta: delta(block_starts[else_bb.index()]),
                },
                Terminator::Return(v) => HotOp::Return {
                    val: v.as_ref().map(|o| fb.opnd(o)),
                },
                // Verified IR has none; decode lazily so an unverified
                // module with a dead unterminated block still constructs
                // and only panics if the block actually executes, exactly
                // like the tree-walking interpreter.
                Terminator::Unreachable => HotOp::Unreachable,
            };
            fb.hot.push(term);
        }
        if self.cfg.fuse {
            fuse_function(&mut fb, &block_starts);
        }
        let regions = f
            .regions
            .iter()
            .map(|r| RegionCode {
                kind: r.kind,
                start_line: r.start_line,
                end_line: r.end_line,
                owned: r
                    .owned_locals
                    .iter()
                    .map(|l| OwnedRange {
                        off: self.local_off[fx][l.index()] as u32,
                        words: f.locals[l.index()].elems,
                    })
                    .collect(),
            })
            .collect();
        FuncCode {
            hot: fb.hot.into_boxed_slice(),
            mems: fb.mems.into_boxed_slice(),
            imms: fb.imms.into_boxed_slice(),
            call_args: fb.call_args.into_boxed_slice(),
            unknown_names: fb.unknown_names.into_boxed_slice(),
            cmp_branches: fb.cmp_branches.into_boxed_slice(),
            load_cmp_branches: fb.load_cmp_branches.into_boxed_slice(),
            rmws: fb.rmws.into_boxed_slice(),
            load_rmws: fb.load_rmws.into_boxed_slice(),
            load_load_bins: fb.load_load_bins.into_boxed_slice(),
            load_bins: fb.load_bins.into_boxed_slice(),
            trap_lines: fb.trap_lines.into_boxed_slice(),
            mbox_ops: fb.mbox_ops.into_boxed_slice(),
            // Skip-tier plans are compiled after decode (they need the
            // static fact table), in `Program::with_decode_config`.
            plans: Box::new([]),
            plan_idx: Box::new([]),
            regions,
            block_starts: block_starts.into_boxed_slice(),
            params: (0..f.num_params)
                .map(|i| self.local_off[fx][i] as u32)
                .collect(),
            num_regs: f.num_regs,
            frame_words: self.frame_words[fx] as u32,
            start_line: f.start_line,
            end_line: f.end_line,
        }
    }

    fn decode_instr(&mut self, b: &mut FuncBuilder, fx: usize, pc: u32, i: &mir::Instr) -> HotOp {
        match i {
            mir::Instr::Load { dst, place, line } => HotOp::Load {
                dst: dst.0,
                mem: self.mem_ref(b, fx, place, *line, false),
            },
            mir::Instr::Store { place, src, line } => HotOp::Store {
                mem: self.mem_ref(b, fx, place, *line, true),
                src: b.opnd(src),
            },
            mir::Instr::Bin {
                dst,
                op,
                lhs,
                rhs,
                line,
            } => {
                let (lhs, rhs) = (b.opnd(lhs), b.opnd(rhs));
                if matches!(op, BinOp::Div | BinOp::Rem) {
                    b.trap_lines.push((pc, *line));
                    HotOp::BinChecked {
                        op: *op,
                        dst: dst.0,
                        lhs,
                        rhs,
                    }
                } else {
                    HotOp::Bin {
                        op: *op,
                        dst: dst.0,
                        lhs,
                        rhs,
                    }
                }
            }
            mir::Instr::Un { dst, op, src, .. } => HotOp::Un {
                op: *op,
                dst: dst.0,
                src: b.opnd(src),
            },
            mir::Instr::Call {
                dst,
                func,
                args,
                line,
            } => {
                let packed: Box<[Opnd]> = args.iter().map(|a| b.opnd(a)).collect();
                b.call_args.push(packed);
                let args = (b.call_args.len() - 1) as u32;
                if let Some(target) = self.func_by_name.get(func.as_str()) {
                    HotOp::CallUser {
                        target: *target,
                        args,
                        dst: FuncBuilder::dst(dst),
                    }
                } else if let Some(builtin) = Builtin::from_name(func) {
                    if builtin.is_mailbox_op() {
                        // Assign the mailbox op its program-order ordinal;
                        // `Program` rebases these past the final load/store
                        // id range after all functions decode.
                        b.mbox_ops.push((pc, self.next_mbox));
                        self.next_mbox += 1;
                        self.mbox_meta
                            .push((*line, matches!(builtin, Builtin::Send)));
                    }
                    HotOp::CallBuiltin {
                        builtin,
                        args,
                        dst: FuncBuilder::dst(dst),
                        line: *line,
                    }
                } else {
                    b.unknown_names.push(func.as_str().into());
                    HotOp::CallUnknown {
                        name: (b.unknown_names.len() - 1) as u32,
                    }
                }
            }
            mir::Instr::RegionEnter { region, line } => {
                let r = &self.module.functions[fx].regions[region.index()];
                HotOp::RegionEnter {
                    kind: r.kind,
                    region: region.0,
                    line: *line,
                    end_line: r.end_line,
                }
            }
            mir::Instr::RegionExit { region, .. } => HotOp::RegionExit { region: region.0 },
            mir::Instr::LoopIter { region, .. } => HotOp::LoopIter { region: region.0 },
            mir::Instr::LoopBody { region, .. } => HotOp::LoopBody { region: region.0 },
        }
    }
}

/// The superinstruction peephole: greedily fuse the longest matching
/// pattern at each slot, per block (never across a seam), rewriting only
/// the head slot. Tails keep their plain ops so mid-sequence suspension,
/// traps, and (hypothetical) jumps into the middle all execute unfused.
fn fuse_function(fb: &mut FuncBuilder, block_starts: &[u32]) {
    for (bi, &start) in block_starts.iter().enumerate() {
        let end = block_starts
            .get(bi + 1)
            .map(|&s| s as usize)
            .unwrap_or(fb.hot.len());
        let mut i = start as usize;
        while i < end {
            i += try_fuse_at(fb, i, end).max(1);
        }
    }
}

/// Try every pattern (longest first) at slot `i`; returns the number of
/// slots consumed (0 = no fusion).
fn try_fuse_at(fb: &mut FuncBuilder, i: usize, end: usize) -> usize {
    use HotOp::*;
    // Load + Load + Bin + Store (+ trailing Jump terminator).
    if i + 3 < end {
        if let (
            Load { dst: d0, mem: m0 },
            Load { dst: d1, mem: m1 },
            Bin { op, dst, lhs, rhs },
            Store { mem: sm, src },
        ) = (fb.hot[i], fb.hot[i + 1], fb.hot[i + 2], fb.hot[i + 3])
        {
            fb.load_rmws.push(LoadRmwCode {
                load_dst: d0,
                load: fb.mems[m0 as usize],
                rmw: RmwCode {
                    load_dst: d1,
                    load: fb.mems[m1 as usize],
                    op,
                    bin_dst: dst,
                    lhs,
                    rhs,
                    store: fb.mems[sm as usize],
                    store_src: src,
                },
            });
            let fused = (fb.load_rmws.len() - 1) as u32;
            // Fold the block's unconditional Jump terminator into the exit
            // when it directly follows the store (body-final array update).
            if i + 4 < end {
                if let Jump { delta } = fb.hot[i + 4] {
                    fb.hot[i] = LoadRmwJump { fused, delta };
                    return 5;
                }
            }
            fb.hot[i] = LoadRmw { fused };
            return 4;
        }
    }
    if i + 2 < end {
        // Load + Bin + Store (+ trailing Jump terminator).
        if let (Load { dst: d0, mem: m0 }, Bin { op, dst, lhs, rhs }, Store { mem: sm, src }) =
            (fb.hot[i], fb.hot[i + 1], fb.hot[i + 2])
        {
            fb.rmws.push(RmwCode {
                load_dst: d0,
                load: fb.mems[m0 as usize],
                op,
                bin_dst: dst,
                lhs,
                rhs,
                store: fb.mems[sm as usize],
                store_src: src,
            });
            let fused = (fb.rmws.len() - 1) as u32;
            // The canonical loop-increment block: `i = i + 1; jump header`.
            if i + 3 < end {
                if let Jump { delta } = fb.hot[i + 3] {
                    fb.hot[i] = RmwJump { fused, delta };
                    return 4;
                }
            }
            fb.hot[i] = Rmw { fused };
            return 3;
        }
        // Load + Bin + Branch.
        if let (
            Load { dst: d0, mem: m0 },
            Bin { op, dst, lhs, rhs },
            Branch {
                cond,
                then_delta,
                else_delta,
            },
        ) = (fb.hot[i], fb.hot[i + 1], fb.hot[i + 2])
        {
            fb.load_cmp_branches.push(LoadCmpBranchCode {
                load_dst: d0,
                load: fb.mems[m0 as usize],
                cmp: CmpBranchCode {
                    op,
                    dst,
                    lhs,
                    rhs,
                    cond,
                    then_delta,
                    else_delta,
                },
            });
            fb.hot[i] = LoadCmpBranch {
                fused: (fb.load_cmp_branches.len() - 1) as u32,
            };
            return 3;
        }
        // Load + Load + Bin — the two-array subterm (`a[i] op b[j]`), once
        // the Store-ending quadruple above has declined the slot.
        if let (Load { dst: d0, mem: m0 }, Load { dst: d1, mem: m1 }, Bin { op, dst, lhs, rhs }) =
            (fb.hot[i], fb.hot[i + 1], fb.hot[i + 2])
        {
            fb.load_load_bins.push(LoadLoadBinCode {
                load_dst: d0,
                load: fb.mems[m0 as usize],
                load2_dst: d1,
                load2: fb.mems[m1 as usize],
                op,
                bin_dst: dst,
                lhs,
                rhs,
            });
            fb.hot[i] = LoadLoadBin {
                fused: (fb.load_load_bins.len() - 1) as u32,
            };
            return 3;
        }
    }
    if i + 1 < end {
        // Bin + Branch.
        if let (
            Bin { op, dst, lhs, rhs },
            Branch {
                cond,
                then_delta,
                else_delta,
            },
        ) = (fb.hot[i], fb.hot[i + 1])
        {
            fb.cmp_branches.push(CmpBranchCode {
                op,
                dst,
                lhs,
                rhs,
                cond,
                then_delta,
                else_delta,
            });
            fb.hot[i] = CmpBranch {
                fused: (fb.cmp_branches.len() - 1) as u32,
            };
            return 2;
        }
        // Load + Bin — only once every longer Load-headed pattern above
        // has declined the slot.
        if let (Load { dst: d0, mem: m0 }, Bin { op, dst, lhs, rhs }) = (fb.hot[i], fb.hot[i + 1]) {
            fb.load_bins.push(LoadBinCode {
                load_dst: d0,
                load: fb.mems[m0 as usize],
                op,
                bin_dst: dst,
                lhs,
                rhs,
            });
            fb.hot[i] = LoadBin {
                fused: (fb.load_bins.len() - 1) as u32,
            };
            return 2;
        }
    }
    0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Program;

    fn program(src: &str) -> Program {
        Program::new(lang::compile(src, "t").unwrap())
    }

    fn program_unfused(src: &str) -> Program {
        Program::with_decode_config(
            lang::compile(src, "t").unwrap(),
            DecodeConfig { fuse: false },
        )
    }

    #[test]
    fn hot_op_is_a_compact_fixed_size_record() {
        // The dispatch-density guarantee of the hot/cold split; also
        // enforced at compile time by the const assertion above.
        assert!(std::mem::size_of::<HotOp>() <= 16);
    }

    #[test]
    fn decode_flattens_blocks_with_terminators() {
        let p = program_unfused("fn main() -> int { int x = 1; if (x > 0) { x = 2; } return x; }");
        let code = &p.code()[0];
        // One slot per instruction plus one per terminator; block starts
        // are absolute and strictly increasing.
        let total: usize = p.module.functions[0]
            .blocks
            .iter()
            .map(|b| b.instrs.len() + 1)
            .sum();
        assert_eq!(code.hot.len(), total);
        assert!(code.block_starts.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(code.block_starts[0], 0);
        // Every branch/jump delta lands on a block start.
        for (pc, op) in code.hot.iter().enumerate() {
            let check = |d: i32| {
                let t = pc as i64 + d as i64;
                assert!(t >= 0 && (t as usize) < code.hot.len(), "delta {d} @ {pc}");
                assert!(
                    code.block_starts.contains(&(t as u32)),
                    "delta target {t} is not a block start"
                );
            };
            match op {
                HotOp::Jump { delta } => check(*delta),
                HotOp::Branch {
                    then_delta,
                    else_delta,
                    ..
                } => {
                    check(*then_delta);
                    check(*else_delta);
                }
                _ => {}
            }
        }
    }

    #[test]
    fn calls_are_preresolved() {
        let p = program(
            "fn helper(int x) -> int { return x + 1; }
            fn main() -> int { int a = helper(1); return sqrt(4.0) + a; }",
        );
        let main = &p.code()[1];
        let mut saw_user = false;
        let mut saw_builtin = false;
        for op in main.hot.iter() {
            match op {
                HotOp::CallUser { target, .. } => {
                    assert_eq!(*target, 0, "helper is function 0");
                    saw_user = true;
                }
                HotOp::CallBuiltin { builtin, .. } => {
                    assert_eq!(*builtin, Builtin::Sqrt);
                    saw_builtin = true;
                }
                _ => {}
            }
        }
        assert!(saw_user && saw_builtin);
    }

    #[test]
    fn mem_op_ids_match_program_order() {
        let p = program_unfused("global int g;\nfn main() { g = 1; int x = g; }");
        let mut ids = Vec::new();
        for f in p.code() {
            for op in f.hot.iter() {
                match op {
                    HotOp::Load { mem, .. } => ids.push(f.mems[*mem as usize].op_id),
                    HotOp::Store { mem, .. } => ids.push(f.mems[*mem as usize].op_id),
                    _ => {}
                }
            }
        }
        assert_eq!(ids, (0..ids.len() as u32).collect::<Vec<_>>());
        assert_eq!(ids.len() as u32, p.num_mem_ops());
    }

    #[test]
    fn places_carry_layout() {
        let p = program_unfused("global int a[8];\nfn main() { a[3] = 7; int y = a[3]; }");
        let main = &p.code()[0];
        let store = main
            .hot
            .iter()
            .find_map(|o| match o {
                HotOp::Store { mem, .. } => Some(&main.mems[*mem as usize]),
                _ => None,
            })
            .unwrap();
        assert!(store.global);
        assert_eq!(store.base, 0, "first global starts at slot 0");
        assert_eq!(store.elems, 8);
        assert_eq!(p.symbol(store.sym), "a");
    }

    #[test]
    fn immediates_encode_inline_or_deduplicate() {
        // Small integers ride inline in the operand word: no pool entries.
        let p = program_unfused("fn main() { int a = 7; int b = 7; int c = 0 - 7; }");
        assert!(
            p.code()[0].imms.is_empty(),
            "small ints must not reach the pool: {:?}",
            p.code()[0].imms
        );
        // Floats (and out-of-range ints) intern into the pool, deduplicated.
        let p = program_unfused("fn main() { float a = 2.5; float b = 2.5; float c = 2.5; }");
        let imms = &p.code()[0].imms;
        let hits = imms
            .iter()
            .filter(|v| matches!(v, Value::F64(x) if *x == 2.5))
            .count();
        assert_eq!(hits, 1, "identical constants intern to one pool slot");
    }

    #[test]
    fn peephole_fuses_the_named_patterns() {
        // A loop with `i = i + 1` (Load+Bin+Store, block terminated by a
        // Jump → the folded RmwJump), `s = s + a[i]`
        // (Load+Load+Bin+Store, likewise Jump-terminated), and an `i < n`
        // header (Load+Bin+Branch); the plain Bin+Branch pair appears in
        // register-condition branches.
        let p = program(
            "global int a[16];
            global int s;
            fn main() {
                for (int i = 0; i < 16; i = i + 1) {
                    s = s + a[i];
                }
            }",
        );
        let main = &p.code()[0];
        let has = |pat: fn(&HotOp) -> bool| main.hot.iter().any(pat);
        assert!(
            has(|o| matches!(o, HotOp::Rmw { .. } | HotOp::RmwJump { .. })),
            "i = i + 1 fuses"
        );
        assert!(
            has(|o| matches!(o, HotOp::LoadRmw { .. } | HotOp::LoadRmwJump { .. })),
            "s = s + a[i] fuses"
        );
        assert!(
            has(|o| matches!(o, HotOp::LoadCmpBranch { .. })),
            "loop header fuses"
        );
        assert!(!main.rmws.is_empty() && !main.load_rmws.is_empty());
    }

    #[test]
    fn trailing_jumps_fold_into_superinstruction_exits() {
        // The for-loop increment block is exactly Load+Bin+Store+Jump, and
        // the body-final `s = s + a[i]` sits directly before the body
        // block's jump: both must fold their terminators.
        let p = program(
            "global int a[16];
            global int s;
            fn main() {
                for (int i = 0; i < 16; i = i + 1) {
                    s = s + a[i];
                }
            }",
        );
        let main = &p.code()[0];
        let rmw_jump = main
            .hot
            .iter()
            .enumerate()
            .find_map(|(pc, o)| match o {
                HotOp::RmwJump { delta, .. } => Some((pc, *delta)),
                _ => None,
            })
            .expect("increment block folds its jump");
        let llb_jump = main
            .hot
            .iter()
            .enumerate()
            .find_map(|(pc, o)| match o {
                HotOp::LoadRmwJump { delta, .. } => Some((pc, *delta)),
                _ => None,
            })
            .expect("body-final update folds its jump");
        // The folded delta is relative to the jump constituent's own slot,
        // which still holds the plain Jump with the same delta (tail-resume
        // invariant), and targets a block start.
        for (head, delta, jump_slot) in [
            (rmw_jump.0, rmw_jump.1, rmw_jump.0 + 3),
            (llb_jump.0, llb_jump.1, llb_jump.0 + 4),
        ] {
            assert!(
                matches!(main.hot[jump_slot], HotOp::Jump { delta: d } if d == delta),
                "head {head}: tail slot {jump_slot} keeps the plain jump"
            );
            let target = (jump_slot as i64 + delta as i64) as u32;
            assert!(
                main.block_starts.contains(&target),
                "head {head}: folded jump target {target} is a block start"
            );
        }
    }

    #[test]
    fn load_load_bin_triples_fuse() {
        // `s = s + a[i] * b[i]` — the dotprod kernel: a[i], b[i] load pair
        // feeding a Bin whose result is consumed by another Bin, so the
        // Store-ending quadruple declines and Load+Load+Bin takes it.
        let p = program(
            "global int a[16];
            global int b[16];
            global int s;
            fn main() {
                for (int i = 0; i < 16; i = i + 1) {
                    s = s + a[i] * b[i];
                }
            }",
        );
        let main = &p.code()[0];
        assert!(
            main.hot
                .iter()
                .any(|o| matches!(o, HotOp::LoadLoadBin { .. })),
            "a[i] * b[i] subterm fuses to LoadLoadBin"
        );
        assert!(!main.load_load_bins.is_empty());
    }

    #[test]
    fn load_bin_pairs_fuse() {
        // `s * 2 + 1` leaves a bare Load+Bin pair once the longer patterns
        // decline it (the second Bin breaks the Rmw shapes, and a single
        // load cannot head the Load+Load+Bin triple).
        let p = program(
            "global int s;
            fn main() {
                for (int i = 0; i < 16; i = i + 1) {
                    s = s * 2 + 1;
                }
            }",
        );
        let main = &p.code()[0];
        assert!(
            main.hot.iter().any(|o| matches!(o, HotOp::LoadBin { .. })),
            "s * 2 subterm fuses to LoadBin"
        );
        assert!(!main.load_bins.is_empty());
    }

    #[test]
    fn fusion_preserves_slot_count_and_tails() {
        let src = "global int s;
            fn main() {
                for (int i = 0; i < 8; i = i + 1) { s = s + 1; }
            }";
        let fused = program(src);
        let unfused = program_unfused(src);
        let (f, u) = (&fused.code()[0], &unfused.code()[0]);
        // One slot per dynamic instruction in both forms.
        assert_eq!(f.hot.len(), u.hot.len());
        assert_eq!(f.block_starts, u.block_starts);
        // Every slot is either identical to the unfused op (tails and
        // unfused slots) or a fused head.
        let mut heads = 0;
        for (i, (a, b)) in f.hot.iter().zip(u.hot.iter()).enumerate() {
            if a != b {
                assert!(
                    matches!(
                        a,
                        HotOp::CmpBranch { .. }
                            | HotOp::LoadCmpBranch { .. }
                            | HotOp::Rmw { .. }
                            | HotOp::RmwJump { .. }
                            | HotOp::LoadRmw { .. }
                            | HotOp::LoadRmwJump { .. }
                            | HotOp::LoadLoadBin { .. }
                            | HotOp::LoadBin { .. }
                    ),
                    "slot {i} diverges but is not a fused head: {a:?}"
                );
                heads += 1;
            }
        }
        assert!(heads > 0, "the loop must fuse something");
    }

    #[test]
    fn div_and_rem_never_fuse() {
        // Div/Rem can trap with a source line from the cold table; the
        // peephole must leave them as plain BinChecked slots.
        let p = program(
            "global int s;
            fn main() {
                for (int i = 1; i < 8; i = i + 1) { s = s / i; }
            }",
        );
        for f in p.code() {
            for (pc, op) in f.hot.iter().enumerate() {
                if let HotOp::BinChecked { .. } = op {
                    assert_ne!(f.trap_line(pc as u32), 0, "checked bin has a line");
                }
            }
            for r in f.rmws.iter() {
                assert!(!matches!(r.op, BinOp::Div | BinOp::Rem));
            }
            for r in f.load_rmws.iter() {
                assert!(!matches!(r.rmw.op, BinOp::Div | BinOp::Rem));
            }
            for c in f.cmp_branches.iter() {
                assert!(!matches!(c.op, BinOp::Div | BinOp::Rem));
            }
            for r in f.load_load_bins.iter() {
                assert!(!matches!(r.op, BinOp::Div | BinOp::Rem));
            }
            for r in f.load_bins.iter() {
                assert!(!matches!(r.op, BinOp::Div | BinOp::Rem));
            }
        }
    }

    #[test]
    fn builtin_names_roundtrip() {
        for name in [
            "print",
            "sqrt",
            "sin",
            "cos",
            "exp",
            "log",
            "fabs",
            "floor",
            "ceil",
            "pow",
            "fmin",
            "fmax",
            "abs",
            "min",
            "max",
            "rand",
            "frand",
            "srand",
            "tid",
            "lock",
            "unlock",
            "join",
            "spawn",
            "spawn_actor",
            "send",
            "receive",
        ] {
            assert!(Builtin::from_name(name).is_some(), "{name}");
        }
        assert!(Builtin::from_name("nope").is_none());
    }
}
