//! Pre-decoded bytecode: the flat execution form of a verified module.
//!
//! [`mir`] functions are tree-shaped — blocks of enum instructions with
//! name-keyed calls and symbolic places — which is the right shape for
//! construction and verification but a poor shape for the interpreter hot
//! loop: every executed instruction re-resolves frame/block/pc, re-walks the
//! `Place` structure, re-derives its static memory-operation id, and every
//! call probes a name map. [`Program::new`](crate::Program::new) therefore
//! lowers each function once into a [`FuncCode`]: one contiguous [`Op`]
//! array with
//!
//! - block starts flattened to absolute pcs (block terminators become
//!   explicit [`Op::Jump`]/[`Op::Branch`]/[`Op::Return`] ops, so one dynamic
//!   instruction is exactly one decoded op and step counts are unchanged),
//! - branch successors encoded as pc *deltas* relative to the branching op,
//! - call targets pre-resolved to function indices ([`Op::CallUser`]) or
//!   [`Builtin`] ids ([`Op::CallBuiltin`]) — no per-call name lookup; names
//!   that resolve to nothing decode to [`Op::CallUnknown`] so the runtime
//!   error still surfaces only if the call actually executes,
//! - place operands precompiled into [`PlaceCode`] descriptors carrying the
//!   global-segment slot base or frame word offset, the interned symbol id,
//!   and the element count for bounds checks,
//! - memory ops carrying their static operation id inline (what used to be
//!   the `op_ids[func][block][pc]` side table),
//! - region metadata ([`RegionCode`]) with owned-local ranges pre-resolved
//!   to `(frame offset, words)` so region exit never allocates.
//!
//! The decode is purely mechanical: [`crate::reference`] interprets the
//! original tree form and must produce a byte-identical event stream
//! (`tests/decode_equivalence.rs` pins this on real workloads).

use crate::program::{GLOBAL_BASE, WORD};
use fxhash::FxHashMap;
use mir::{BinOp, Function, Module, Operand, Place, RegId, RegionKind, Terminator, UnOp, VarRef};

/// Built-in functions callable from mini-C, pre-resolved at decode time.
///
/// User functions shadow builtins of the same name, matching the resolution
/// order of the original interpreter (module functions first).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Builtin {
    /// `print(args…)` — collect output.
    Print,
    /// `sqrt(x)`.
    Sqrt,
    /// `sin(x)`.
    Sin,
    /// `cos(x)`.
    Cos,
    /// `exp(x)`.
    Exp,
    /// `log(x)`.
    Log,
    /// `fabs(x)`.
    Fabs,
    /// `floor(x)`.
    Floor,
    /// `ceil(x)`.
    Ceil,
    /// `pow(x, y)`.
    Pow,
    /// `fmin(x, y)`.
    Fmin,
    /// `fmax(x, y)`.
    Fmax,
    /// `abs(x)` (integer).
    Abs,
    /// `min(x, y)` (integer).
    Min,
    /// `max(x, y)` (integer).
    Max,
    /// `rand()` — seeded program-visible RNG.
    Rand,
    /// `frand()` — uniform f64 in [0, 1).
    Frand,
    /// `srand(seed)`.
    Srand,
    /// `tid()` — current thread id.
    Tid,
    /// `lock(id)` — may block.
    Lock,
    /// `unlock(id)`.
    Unlock,
    /// `join(tid)` — may block.
    Join,
    /// `spawn(func_index, args…)`.
    Spawn,
}

impl Builtin {
    /// Resolve a builtin by source name.
    pub fn from_name(name: &str) -> Option<Builtin> {
        Some(match name {
            "print" => Builtin::Print,
            "sqrt" => Builtin::Sqrt,
            "sin" => Builtin::Sin,
            "cos" => Builtin::Cos,
            "exp" => Builtin::Exp,
            "log" => Builtin::Log,
            "fabs" => Builtin::Fabs,
            "floor" => Builtin::Floor,
            "ceil" => Builtin::Ceil,
            "pow" => Builtin::Pow,
            "fmin" => Builtin::Fmin,
            "fmax" => Builtin::Fmax,
            "abs" => Builtin::Abs,
            "min" => Builtin::Min,
            "max" => Builtin::Max,
            "rand" => Builtin::Rand,
            "frand" => Builtin::Frand,
            "srand" => Builtin::Srand,
            "tid" => Builtin::Tid,
            "lock" => Builtin::Lock,
            "unlock" => Builtin::Unlock,
            "join" => Builtin::Join,
            "spawn" => Builtin::Spawn,
            _ => return None,
        })
    }
}

/// A precompiled memory place: everything address resolution needs without
/// touching the module.
///
/// The interpreter resolves a global place as
/// `GLOBAL_BASE + (base + index) * WORD` and a local place as
/// `STACK_BASE + thread * STACK_SPAN + (frame_base + base + index) * WORD`.
#[derive(Debug, Clone, PartialEq)]
pub struct PlaceCode {
    /// Word slot base: global-segment slot for globals, frame-relative word
    /// offset for locals.
    pub base: u32,
    /// Element count (1 for scalars) — the bounds check limit.
    pub elems: u64,
    /// Interned symbol id reported in [`crate::MemEvent::var`].
    pub sym: u32,
    /// `true` = global data segment, `false` = current frame.
    pub global: bool,
    /// Pre-decoded index operand; `None` addresses element 0.
    pub index: Option<Operand>,
    /// The original variable reference, kept only for the cold
    /// out-of-bounds error path (name lookup).
    pub var: VarRef,
}

/// A decoded instruction of the flat stream. Exactly one dynamic executed
/// instruction per op, including the former block terminators.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// `dst = load place`, emitting a memory event with static id `op_id`.
    Load {
        /// Destination register.
        dst: RegId,
        /// Precompiled place.
        place: PlaceCode,
        /// Source line.
        line: u32,
        /// Static memory-operation id.
        op_id: u32,
    },
    /// `store place, src`, emitting a memory event with static id `op_id`.
    Store {
        /// Precompiled place.
        place: PlaceCode,
        /// Value operand.
        src: Operand,
        /// Source line.
        line: u32,
        /// Static memory-operation id.
        op_id: u32,
    },
    /// `dst = lhs op rhs`.
    Bin {
        /// Destination register.
        dst: RegId,
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Operand,
        /// Right operand.
        rhs: Operand,
        /// Source line (division-by-zero reporting).
        line: u32,
    },
    /// `dst = op src`.
    Un {
        /// Destination register.
        dst: RegId,
        /// Operator.
        op: UnOp,
        /// Operand.
        src: Operand,
    },
    /// Call of a user function, target pre-resolved to its index.
    CallUser {
        /// Register receiving the return value, if any.
        dst: Option<RegId>,
        /// Callee function index.
        target: u32,
        /// Argument operands.
        args: Box<[Operand]>,
    },
    /// Call of a builtin, pre-resolved to its [`Builtin`] id.
    CallBuiltin {
        /// Register receiving the return value, if any.
        dst: Option<RegId>,
        /// The builtin.
        builtin: Builtin,
        /// Argument operands.
        args: Box<[Operand]>,
        /// Source line (thread/lock events and errors).
        line: u32,
    },
    /// Call of a name that resolved to nothing at decode time; executing it
    /// raises [`crate::RuntimeError::UnknownFunction`], preserving the lazy
    /// failure semantics of name-map resolution.
    CallUnknown {
        /// The unresolved callee name.
        name: Box<str>,
    },
    /// Control enters region `region`; kind and end line pre-resolved.
    RegionEnter {
        /// Region id within the function.
        region: u32,
        /// Region kind.
        kind: RegionKind,
        /// Start line (from the marker instruction).
        line: u32,
        /// Last source line of the region.
        end_line: u32,
    },
    /// Control leaves region `region`.
    RegionExit {
        /// Region id within the function.
        region: u32,
    },
    /// A loop region starts an iteration.
    LoopIter {
        /// Region id within the function.
        region: u32,
    },
    /// The loop body is entered (executed-iteration count).
    LoopBody {
        /// Region id within the function.
        region: u32,
    },
    /// Unconditional jump, encoded as a pc delta from this op.
    Jump {
        /// Target pc minus this op's pc.
        delta: i32,
    },
    /// Two-way branch on a truthy operand, successors as pc deltas.
    Branch {
        /// Condition operand.
        cond: Operand,
        /// Taken-successor pc delta.
        then_delta: i32,
        /// Not-taken-successor pc delta.
        else_delta: i32,
    },
    /// Return from the function.
    Return {
        /// Return value operand, if any.
        val: Option<Operand>,
    },
    /// A `Terminator::Unreachable` left in an unverified module; panics if
    /// executed (verified IR never contains one).
    Unreachable,
}

/// An owned-local range of a region: locals that die when the region exits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OwnedRange {
    /// Frame-relative word offset of the local.
    pub off: u32,
    /// Size of the local in words.
    pub words: u64,
}

/// Pre-resolved region metadata consulted on region entry/exit.
#[derive(Debug, Clone, PartialEq)]
pub struct RegionCode {
    /// Region kind.
    pub kind: RegionKind,
    /// First source line.
    pub start_line: u32,
    /// Last source line.
    pub end_line: u32,
    /// Owned locals as `(frame offset, words)` ranges, in declaration order.
    pub owned: Box<[OwnedRange]>,
}

/// The flat, pre-decoded form of one function: the unit the interpreter
/// executes.
#[derive(Debug, Clone, PartialEq)]
pub struct FuncCode {
    /// The decoded instruction stream; block 0 starts at pc 0.
    pub ops: Box<[Op]>,
    /// Pre-resolved region metadata, indexed by region id.
    pub regions: Box<[RegionCode]>,
    /// Absolute pc of each basic block's first op (diagnostics/printing).
    pub block_starts: Box<[u32]>,
    /// Frame word offset of each parameter, in order.
    pub params: Box<[u32]>,
    /// Virtual registers used by the function.
    pub num_regs: u32,
    /// Frame size in words.
    pub frame_words: u32,
    /// First source line (FuncEnter events).
    pub start_line: u32,
    /// Last source line (FuncExit events).
    pub end_line: u32,
}

/// Per-module context shared by all function decodes.
pub(crate) struct DecodeCtx<'m> {
    pub module: &'m Module,
    pub global_addr: &'m [u64],
    pub global_syms: &'m [u32],
    pub local_off: &'m [Vec<u64>],
    pub local_syms: &'m [Vec<u32>],
    pub frame_words: &'m [usize],
    /// Function name → index; user functions shadow builtins.
    pub func_by_name: FxHashMap<&'m str, u32>,
    /// Running static memory-operation id counter.
    pub next_op: u32,
}

impl<'m> DecodeCtx<'m> {
    pub fn new(
        module: &'m Module,
        global_addr: &'m [u64],
        global_syms: &'m [u32],
        local_off: &'m [Vec<u64>],
        local_syms: &'m [Vec<u32>],
        frame_words: &'m [usize],
    ) -> Self {
        let mut func_by_name = FxHashMap::default();
        for (i, f) in module.functions.iter().enumerate() {
            // Last definition wins, matching the insert-overwrite name map
            // of the original interpreter (kept in `crate::reference`).
            // Verified modules cannot contain duplicates; unverified
            // hand-built ones must bind identically in both interpreters.
            func_by_name.insert(f.name.as_str(), i as u32);
        }
        DecodeCtx {
            module,
            global_addr,
            global_syms,
            local_off,
            local_syms,
            frame_words,
            func_by_name,
            next_op: 0,
        }
    }

    fn place(&self, fx: usize, p: &Place) -> PlaceCode {
        match p.var {
            VarRef::Global(g) => PlaceCode {
                base: ((self.global_addr[g.index()] - GLOBAL_BASE) / WORD) as u32,
                elems: self.module.globals[g.index()].elems,
                sym: self.global_syms[g.index()],
                global: true,
                index: p.index,
                var: p.var,
            },
            VarRef::Local(l) => PlaceCode {
                base: self.local_off[fx][l.index()] as u32,
                elems: self.module.functions[fx].locals[l.index()].elems,
                sym: self.local_syms[fx][l.index()],
                global: false,
                index: p.index,
                var: p.var,
            },
        }
    }

    /// Lower one function into its flat form, assigning static memory-op
    /// ids in program order (function → block → instruction, the same order
    /// the side-table scheme used).
    pub fn decode_function(&mut self, fx: usize) -> FuncCode {
        let f: &Function = &self.module.functions[fx];
        // First pass: absolute pc of each block (instrs + 1 terminator op).
        let mut block_starts = Vec::with_capacity(f.blocks.len());
        let mut n = 0u32;
        for b in &f.blocks {
            block_starts.push(n);
            n += b.instrs.len() as u32 + 1;
        }
        let mut ops: Vec<Op> = Vec::with_capacity(n as usize);
        for b in &f.blocks {
            for i in &b.instrs {
                ops.push(self.decode_instr(fx, i));
            }
            let pc = ops.len() as u32;
            let delta = |target: u32| (target as i64 - pc as i64) as i32;
            ops.push(match &b.term {
                Terminator::Jump(t) => Op::Jump {
                    delta: delta(block_starts[t.index()]),
                },
                Terminator::Branch {
                    cond,
                    then_bb,
                    else_bb,
                } => Op::Branch {
                    cond: *cond,
                    then_delta: delta(block_starts[then_bb.index()]),
                    else_delta: delta(block_starts[else_bb.index()]),
                },
                Terminator::Return(v) => Op::Return { val: *v },
                // Verified IR has none; decode lazily so an unverified
                // module with a dead unterminated block still constructs
                // and only panics if the block actually executes, exactly
                // like the tree-walking interpreter.
                Terminator::Unreachable => Op::Unreachable,
            });
        }
        let regions = f
            .regions
            .iter()
            .map(|r| RegionCode {
                kind: r.kind,
                start_line: r.start_line,
                end_line: r.end_line,
                owned: r
                    .owned_locals
                    .iter()
                    .map(|l| OwnedRange {
                        off: self.local_off[fx][l.index()] as u32,
                        words: f.locals[l.index()].elems,
                    })
                    .collect(),
            })
            .collect();
        FuncCode {
            ops: ops.into_boxed_slice(),
            regions,
            block_starts: block_starts.into_boxed_slice(),
            params: (0..f.num_params)
                .map(|i| self.local_off[fx][i] as u32)
                .collect(),
            num_regs: f.num_regs,
            frame_words: self.frame_words[fx] as u32,
            start_line: f.start_line,
            end_line: f.end_line,
        }
    }

    fn decode_instr(&mut self, fx: usize, i: &mir::Instr) -> Op {
        match i {
            mir::Instr::Load { dst, place, line } => {
                let op_id = self.next_op;
                self.next_op += 1;
                Op::Load {
                    dst: *dst,
                    place: self.place(fx, place),
                    line: *line,
                    op_id,
                }
            }
            mir::Instr::Store { place, src, line } => {
                let op_id = self.next_op;
                self.next_op += 1;
                Op::Store {
                    place: self.place(fx, place),
                    src: *src,
                    line: *line,
                    op_id,
                }
            }
            mir::Instr::Bin {
                dst,
                op,
                lhs,
                rhs,
                line,
            } => Op::Bin {
                dst: *dst,
                op: *op,
                lhs: *lhs,
                rhs: *rhs,
                line: *line,
            },
            mir::Instr::Un { dst, op, src, .. } => Op::Un {
                dst: *dst,
                op: *op,
                src: *src,
            },
            mir::Instr::Call {
                dst,
                func,
                args,
                line,
            } => {
                let args: Box<[Operand]> = args.as_slice().into();
                if let Some(target) = self.func_by_name.get(func.as_str()) {
                    Op::CallUser {
                        dst: *dst,
                        target: *target,
                        args,
                    }
                } else if let Some(builtin) = Builtin::from_name(func) {
                    Op::CallBuiltin {
                        dst: *dst,
                        builtin,
                        args,
                        line: *line,
                    }
                } else {
                    Op::CallUnknown {
                        name: func.as_str().into(),
                    }
                }
            }
            mir::Instr::RegionEnter { region, line } => {
                let r = &self.module.functions[fx].regions[region.index()];
                Op::RegionEnter {
                    region: region.0,
                    kind: r.kind,
                    line: *line,
                    end_line: r.end_line,
                }
            }
            mir::Instr::RegionExit { region, .. } => Op::RegionExit { region: region.0 },
            mir::Instr::LoopIter { region, .. } => Op::LoopIter { region: region.0 },
            mir::Instr::LoopBody { region, .. } => Op::LoopBody { region: region.0 },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Program;

    fn program(src: &str) -> Program {
        Program::new(lang::compile(src, "t").unwrap())
    }

    #[test]
    fn decode_flattens_blocks_with_terminators() {
        let p = program("fn main() -> int { int x = 1; if (x > 0) { x = 2; } return x; }");
        let code = &p.code()[0];
        // One op per instruction plus one per terminator; block starts are
        // absolute and strictly increasing.
        let total: usize = p.module.functions[0]
            .blocks
            .iter()
            .map(|b| b.instrs.len() + 1)
            .sum();
        assert_eq!(code.ops.len(), total);
        assert!(code.block_starts.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(code.block_starts[0], 0);
        // Every branch/jump delta lands inside the stream.
        for (pc, op) in code.ops.iter().enumerate() {
            let check = |d: i32| {
                let t = pc as i64 + d as i64;
                assert!(t >= 0 && (t as usize) < code.ops.len(), "delta {d} @ {pc}");
                assert!(
                    code.block_starts.contains(&(t as u32)),
                    "delta target {t} is not a block start"
                );
            };
            match op {
                Op::Jump { delta } => check(*delta),
                Op::Branch {
                    then_delta,
                    else_delta,
                    ..
                } => {
                    check(*then_delta);
                    check(*else_delta);
                }
                _ => {}
            }
        }
    }

    #[test]
    fn calls_are_preresolved() {
        let p = program(
            "fn helper(int x) -> int { return x + 1; }
            fn main() -> int { int a = helper(1); return sqrt(4.0) + a; }",
        );
        let main = &p.code()[1];
        let mut saw_user = false;
        let mut saw_builtin = false;
        for op in main.ops.iter() {
            match op {
                Op::CallUser { target, .. } => {
                    assert_eq!(*target, 0, "helper is function 0");
                    saw_user = true;
                }
                Op::CallBuiltin { builtin, .. } => {
                    assert_eq!(*builtin, Builtin::Sqrt);
                    saw_builtin = true;
                }
                _ => {}
            }
        }
        assert!(saw_user && saw_builtin);
    }

    #[test]
    fn mem_op_ids_match_program_order() {
        let p = program("global int g;\nfn main() { g = 1; int x = g; }");
        let mut ids = Vec::new();
        for f in p.code() {
            for op in f.ops.iter() {
                match op {
                    Op::Load { op_id, .. } | Op::Store { op_id, .. } => ids.push(*op_id),
                    _ => {}
                }
            }
        }
        assert_eq!(ids, (0..ids.len() as u32).collect::<Vec<_>>());
        assert_eq!(ids.len() as u32, p.num_mem_ops());
    }

    #[test]
    fn places_carry_layout() {
        let p = program("global int a[8];\nfn main() { a[3] = 7; int y = a[3]; }");
        let main = &p.code()[0];
        let store = main
            .ops
            .iter()
            .find_map(|o| match o {
                Op::Store { place, .. } => Some(place),
                _ => None,
            })
            .unwrap();
        assert!(store.global);
        assert_eq!(store.base, 0, "first global starts at slot 0");
        assert_eq!(store.elems, 8);
        assert_eq!(p.symbol(store.sym), "a");
    }

    #[test]
    fn builtin_names_roundtrip() {
        for name in [
            "print", "sqrt", "sin", "cos", "exp", "log", "fabs", "floor", "ceil", "pow", "fmin",
            "fmax", "abs", "min", "max", "rand", "frand", "srand", "tid", "lock", "unlock", "join",
            "spawn",
        ] {
            assert!(Builtin::from_name(name).is_some(), "{name}");
        }
        assert!(Builtin::from_name("nope").is_none());
    }
}
