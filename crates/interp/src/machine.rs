//! The interpreter core: frames, heap, builtins, and the deterministic
//! multi-thread scheduler, executing the pre-decoded instruction stream.
//!
//! The run loop dispatches over [`crate::code::HotOp`] — the compact flat
//! form built at [`Program::new`] — with the current frame's code slice and
//! pc cached in locals for the duration of a scheduler slice. The pc is
//! written back to the frame only when the frame changes (call/return), the
//! thread blocks, or the slice's step budget runs out. Fused
//! superinstructions execute their constituents in order, each charged one
//! step against the slice budget and emitting exactly the events of its
//! plain form; when the budget expires or a constituent traps mid-sequence,
//! the pc parks at that constituent's own slot (which still holds the plain
//! op), so suspension and errors are indistinguishable from the unfused
//! stream. [`crate::reference`] keeps the original tree-walking loop as an
//! equivalence oracle: both interpreters must emit byte-identical event
//! streams.

// The execution core leans on machine invariants — a ready thread always
// has a frame, decoded operands index in-bounds side pools — established
// by `mir::verify_module` plus the decode pass. A failed lookup here is an
// interpreter bug, not bad input: panicking is correct, and threading
// `Result` through the dispatch loop would tax every step.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use crate::code::{Builtin, FuncCode, HotOp, MemRef, DST_NONE};
use crate::event::{Event, MemEvent, RegionExitEvent, Sink};
use crate::program::{
    Program, GLOBAL_BASE, MAILBOX_BASE, MAILBOX_SLOTS, MAILBOX_SPAN, STACK_BASE, STACK_SPAN, WORD,
};
use crate::sched::{ActorId, Scheduler, WaitReason};
use crate::synth::{LoopPlan, PlanOp};
use fxhash::{FxHashMap, FxHashSet};
use mir::{BinOp, RegId, UnOp, Value};
use std::collections::VecDeque;
use std::fmt;

#[cfg(test)]
use std::collections::HashMap;

/// Execution limits and scheduling parameters.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Abort after this many executed instructions.
    pub max_steps: u64,
    /// Base scheduler quantum (instructions per slice).
    pub quantum: u32,
    /// Seed for both the scheduler jitter and the program-visible `rand()`.
    pub seed: u64,
    /// Buffer events per thread and flush only at synchronization points,
    /// reproducing out-of-order event delivery of real threads
    /// (dissertation Fig. 2.4). Off by default for determinism.
    pub racy_delivery: bool,
    /// Per-thread event buffer capacity in racy mode.
    pub buffer_cap: usize,
    /// Events coalesced per [`Sink::events`] delivery when the sink opts in
    /// via [`Sink::batch_hint`] (deterministic mode only; racy mode batches
    /// per thread through `buffer_cap`).
    ///
    /// Values below 2 disable batching: a batch of one event is just a
    /// per-event call with extra buffering, so `0` and `1` are equivalent
    /// and both normalize to `1` (see [`RunConfig::effective_batch_cap`]).
    pub batch_cap: usize,
    /// Cooperative cancellation: checked once per scheduler slice; when set
    /// to `true` the run stops and [`Interp::run`] returns a [`RunResult`]
    /// with [`RunResult::interrupted`] set. Sinks observe the complete
    /// emitted event prefix, so a profiler can still assemble a partial
    /// result. `None` (the default) costs nothing.
    pub stop: Option<std::sync::Arc<std::sync::atomic::AtomicBool>>,
    /// Engage the affine skip tier: loops whose cycles compiled to a
    /// [`crate::synth::LoopPlan`] execute through the plan replayer instead
    /// of the dispatch loop. Observationally invisible — same events, same
    /// timestamps, same step accounting — so it defaults to on; the knob
    /// exists for differential testing and for callers that want dispatch
    /// counts of the pure interpreter.
    pub affine_skip: bool,
    /// Fault injection for the skip tier: after this many synthesized
    /// cycles, the tier permanently disables itself mid-run (counted as a
    /// `fallback_fault`), forcing the drop back to full interpretation at a
    /// genuinely mid-loop point. `None` (the default) never trips.
    pub affine_skip_fault: Option<u64>,
    /// Bounded mailbox capacity per actor: `send` to a full mailbox parks
    /// the sender until the receiver drains a slot. Values below 1
    /// normalize to 1.
    pub mailbox_cap: usize,
}

impl RunConfig {
    /// The batch size actually used: `batch_cap`, with the degenerate
    /// values `0` and `1` both normalized to `1` (per-event delivery).
    pub fn effective_batch_cap(&self) -> usize {
        self.batch_cap.max(1)
    }
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            max_steps: 2_000_000_000,
            quantum: 64,
            seed: 0x5eed,
            racy_delivery: false,
            buffer_cap: 64,
            batch_cap: 256,
            stop: None,
            affine_skip: true,
            affine_skip_fault: None,
            mailbox_cap: 64,
        }
    }
}

/// Activity counters of the affine skip tier during one run (see
/// [`crate::synth`]). All zeros when the tier is disabled or no loop
/// qualified.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SynthStats {
    /// Distinct loops whose plan engaged at least once.
    pub loops: u64,
    /// Full loop cycles replayed through plans.
    pub cycles: u64,
    /// Memory accesses synthesized by the plan replayer (each still emitted
    /// through the normal event path).
    pub accesses: u64,
    /// Plan executions that parked mid-cycle on slice-budget exhaustion and
    /// resumed under full interpretation.
    pub fallback_budget: u64,
    /// Engagements skipped because a runtime precondition did not hold
    /// (the loop's region was not on top of the region stack).
    pub fallback_precondition: u64,
    /// The injected fault ([`RunConfig::affine_skip_fault`]) tripped and
    /// disabled the tier mid-loop.
    pub fallback_fault: u64,
}

impl SynthStats {
    /// Total fallbacks across all reasons.
    pub fn fallbacks(&self) -> u64 {
        self.fallback_budget + self.fallback_precondition + self.fallback_fault
    }
}

/// Message-passing activity of one run: actor population and per-channel
/// traffic. All zeros/empty for programs that never spawn or send — the
/// main thread alone counts as one spawned actor.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ActorStats {
    /// Actors that existed, including the main actor (same number as
    /// [`RunResult::threads`]; every thread is an actor).
    pub spawned: u32,
    /// High-water mark of simultaneously live actors.
    pub peak_live: u32,
    /// Messages delivered into mailboxes (`send` completions).
    pub sent: u64,
    /// Messages taken out of mailboxes (`receive` completions).
    pub received: u64,
    /// Per-channel send counts `(from, to, messages)`, sorted by
    /// `(from, to)` — the communication matrix in sparse form.
    pub channels: Vec<(u32, u32, u64)>,
}

/// Result of a successful run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Return value of `main`.
    pub ret: Option<Value>,
    /// Output of `print` calls, in execution order.
    pub printed: Vec<String>,
    /// Total executed instructions across all threads.
    pub steps: u64,
    /// Dispatch-loop iterations: how many times the interpreter actually
    /// decoded-and-dispatched an op. Fused superinstructions count one
    /// dispatch for several steps; plan-replayed loop cycles count zero.
    /// `steps` is the architectural count (identical under every decode
    /// and skip configuration), `dispatches` is the work the interpreter
    /// did to produce it — the skip tier's perf claim is measured here.
    pub dispatches: u64,
    /// Affine skip tier activity counters.
    pub synth: SynthStats,
    /// Number of threads that existed (including main).
    pub threads: u32,
    /// Actor population and message-passing traffic.
    pub actors: ActorStats,
    /// The run was cancelled through [`RunConfig::stop`] before completion:
    /// `printed`/`steps` cover the executed prefix and `ret` is `None`.
    /// Cooperative cancellation is not a failure — the caller that set the
    /// flag gets the partial result instead of an error.
    pub interrupted: bool,
}

/// Runtime failures.
#[derive(Debug, Clone, PartialEq)]
pub enum RuntimeError {
    /// The module has no `main` function.
    NoMain,
    /// A call resolved to nothing.
    UnknownFunction(String),
    /// Array index out of bounds.
    OutOfBounds { line: u32, var: String, index: i64 },
    /// Integer division or remainder by zero.
    DivByZero { line: u32 },
    /// All live actors are blocked. `waiting` lists every parked actor
    /// with the resource it waits on, in actor-id order — the cycle is in
    /// here (each waited-on join target/lock holder/mailbox owner is
    /// itself in the list or dead).
    Deadlock { waiting: Vec<(u32, WaitReason)> },
    /// `max_steps` exceeded.
    StepLimit,
    /// `unlock` of a lock not held by the calling thread.
    BadUnlock { line: u32 },
    /// `lock` re-acquired by its holder.
    RecursiveLock { line: u32 },
    /// `join` of an unknown thread id.
    BadJoin { line: u32 },
    /// `send` to an unknown actor id.
    BadSend { line: u32 },
    /// The run was cancelled through [`RunConfig::stop`]. Internal to the
    /// scheduler loop: [`Interp::run`] converts it into a [`RunResult`]
    /// with [`RunResult::interrupted`] set, so callers see the partial
    /// result rather than this error.
    Interrupted,
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::NoMain => write!(f, "no `main` function"),
            RuntimeError::UnknownFunction(n) => write!(f, "unknown function `{n}`"),
            RuntimeError::OutOfBounds { line, var, index } => {
                write!(f, "line {line}: `{var}[{index}]` out of bounds")
            }
            RuntimeError::DivByZero { line } => write!(f, "line {line}: division by zero"),
            RuntimeError::Deadlock { waiting } => {
                write!(f, "deadlock: {} actor(s) blocked", waiting.len())?;
                // Keep the report readable at 10k-actor scale.
                for (a, r) in waiting.iter().take(8) {
                    write!(f, "; actor {a} waiting on {r}")?;
                }
                if waiting.len() > 8 {
                    write!(f, "; … {} more", waiting.len() - 8)?;
                }
                Ok(())
            }
            RuntimeError::StepLimit => write!(f, "step limit exceeded"),
            RuntimeError::BadUnlock { line } => write!(f, "line {line}: unlock of unheld lock"),
            RuntimeError::RecursiveLock { line } => {
                write!(f, "line {line}: recursive lock acquisition")
            }
            RuntimeError::BadJoin { line } => write!(f, "line {line}: join of unknown thread"),
            RuntimeError::BadSend { line } => write!(f, "line {line}: send to unknown actor"),
            RuntimeError::Interrupted => write!(f, "run interrupted"),
        }
    }
}

impl std::error::Error for RuntimeError {}

#[derive(Debug)]
struct RegionState {
    region: u32,
    th_steps_at_enter: u64,
    iters: u64,
}

#[derive(Debug)]
struct Frame {
    func: usize,
    /// Absolute pc into the function's decoded op stream.
    pc: usize,
    regs: Vec<Value>,
    /// Word offset of this frame in the thread stack.
    base: usize,
    /// Register in the *caller's* frame receiving the return value.
    ret_dst: Option<RegId>,
    regions: Vec<RegionState>,
}

#[derive(Debug)]
struct Thread {
    mem: Vec<Value>,
    sp: usize,
    frames: Vec<Frame>,
    buf: Vec<Event>,
    steps: u64,
    ret: Option<Value>,
    /// Bounded mailbox (capacity [`RunConfig::mailbox_cap`]); lifecycle
    /// state lives in the [`Scheduler`].
    mbox: VecDeque<Value>,
    /// Messages ever delivered into this mailbox (tail ring sequence).
    mbox_in: u64,
    /// Messages ever taken out (head ring sequence).
    mbox_out: u64,
}

/// The interpreter. Construct with [`Interp::new`], execute with
/// [`Interp::run`]; or use the [`run`]/[`run_with_config`] helpers.
pub struct Interp<'p, S: Sink> {
    prog: &'p Program,
    sink: S,
    cfg: RunConfig,
    globals: Vec<Value>,
    threads: Vec<Thread>,
    /// The run queue: ready/sleeping/dead accounting, typed park/wake,
    /// and the seeded slice jitter (see [`crate::sched`]).
    sched: Scheduler,
    locks: FxHashMap<i64, u32>,
    steps: u64,
    user_rng: u64,
    printed: Vec<String>,
    /// Messages delivered / taken out, and the per-channel send counts.
    msgs_sent: u64,
    msgs_received: u64,
    channels: FxHashMap<(u32, u32), u64>,
    /// Reusable call-argument buffer: evaluating call operands never
    /// allocates in steady state.
    call_buf: Vec<Value>,
    /// Reusable event batch (deterministic mode, batching sinks).
    batch: Vec<Event>,
    /// Resolved once at construction: `batch_hint` of the sink, gated on
    /// the config. Checked on every emit, so it must be a plain bool.
    batching: bool,
    /// Dispatch-loop iterations (see [`RunResult::dispatches`]).
    dispatches: u64,
    /// Affine skip tier counters.
    synth: SynthStats,
    /// Live skip switch: starts at [`RunConfig::affine_skip`], cleared
    /// permanently when the injected fault trips.
    skip_enabled: bool,
    /// `(func, trigger pc)` of every plan that has engaged — distinct-loop
    /// accounting for [`SynthStats::loops`].
    synth_seen: FxHashSet<(u32, u32)>,
}

/// Run a program with the default configuration.
pub fn run<S: Sink>(prog: &Program, sink: S) -> Result<RunResult, RuntimeError> {
    run_with_config(prog, sink, RunConfig::default())
}

/// Run a program with an explicit configuration.
pub fn run_with_config<S: Sink>(
    prog: &Program,
    sink: S,
    cfg: RunConfig,
) -> Result<RunResult, RuntimeError> {
    Interp::new(prog, sink, cfg)?.run()
}

#[inline]
fn jump(pc: usize, delta: i32) -> usize {
    (pc as i64 + delta as i64) as usize
}

/// Evaluate a fused bin constituent. The peephole excludes `Div`/`Rem`, so
/// evaluation cannot fail.
#[inline]
fn bin_eval_nontrap(op: BinOp, a: Value, b: Value) -> Value {
    match bin_eval(op, a, b, 0) {
        Ok(v) => v,
        Err(_) => unreachable!("fused bins exclude Div/Rem"),
    }
}

impl<'p, S: Sink> Interp<'p, S> {
    /// Prepare a run: call targets are already pre-resolved in the decoded
    /// program, so this only sets up the main thread.
    pub fn new(prog: &'p Program, sink: S, cfg: RunConfig) -> Result<Self, RuntimeError> {
        let (main_id, _) = prog.module.function("main").ok_or(RuntimeError::NoMain)?;
        let batching = !cfg.racy_delivery && cfg.effective_batch_cap() >= 2 && sink.batch_hint();
        let mut it = Interp {
            prog,
            sink,
            cfg: cfg.clone(),
            globals: vec![Value::I64(0); prog.global_words],
            threads: Vec::new(),
            sched: Scheduler::new(cfg.seed),
            locks: FxHashMap::default(),
            steps: 0,
            user_rng: cfg.seed | 1,
            printed: Vec::new(),
            msgs_sent: 0,
            msgs_received: 0,
            channels: FxHashMap::default(),
            call_buf: Vec::new(),
            batch: Vec::with_capacity(if batching { cfg.batch_cap } else { 0 }),
            batching,
            dispatches: 0,
            synth: SynthStats::default(),
            skip_enabled: cfg.affine_skip,
            synth_seen: FxHashSet::default(),
        };
        it.spawn_thread(main_id.index(), &[], None, 0);
        Ok(it)
    }

    fn user_next(&mut self) -> u64 {
        let mut x = self.user_rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.user_rng = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn spawn_thread(&mut self, func: usize, args: &[Value], parent: Option<u32>, line: u32) -> u32 {
        let tid = self.threads.len() as u32;
        let mut th = Thread {
            mem: Vec::new(),
            sp: 0,
            frames: Vec::new(),
            buf: Vec::new(),
            steps: 0,
            ret: None,
            mbox: VecDeque::new(),
            mbox_in: 0,
            mbox_out: 0,
        };
        Self::push_frame_raw(self.prog, &mut th, func, args, None);
        self.threads.push(th);
        let aid = self.sched.spawn();
        debug_assert_eq!(aid.0, tid, "scheduler ids track thread ids");
        if let Some(p) = parent {
            self.emit(
                p as usize,
                Event::ThreadSpawn {
                    parent: p,
                    child: tid,
                    line,
                },
            );
            self.flush(p as usize);
        }
        self.emit(
            tid as usize,
            Event::FuncEnter {
                func: func as u32,
                line: self.prog.code[func].start_line,
                thread: tid,
            },
        );
        tid
    }

    fn push_frame_raw(
        prog: &Program,
        th: &mut Thread,
        func: usize,
        args: &[Value],
        ret_dst: Option<RegId>,
    ) {
        let code = &prog.code[func];
        let base = th.sp;
        let need = base + code.frame_words as usize;
        if th.mem.len() < need {
            th.mem.resize(need, Value::I64(0));
        }
        th.sp = need;
        // Bind arguments into parameter slots (register-style: no events).
        for (i, a) in args.iter().enumerate() {
            th.mem[base + code.params[i] as usize] = *a;
        }
        th.frames.push(Frame {
            func,
            pc: 0,
            regs: vec![Value::I64(0); code.num_regs as usize],
            base,
            ret_dst,
            regions: Vec::new(),
        });
    }

    /// Forced inline so sinks that opted out of events
    /// ([`Sink::WANTS_EVENTS`] = `false`, the native baseline) let the
    /// compiler delete the event construction at every call site.
    #[inline(always)]
    fn emit(&mut self, t: usize, ev: Event) {
        if !S::WANTS_EVENTS {
            return;
        }
        if self.batching {
            self.batch.push(ev);
            if self.batch.len() >= self.cfg.batch_cap {
                self.flush_batch();
            }
        } else if self.cfg.racy_delivery {
            self.threads[t].buf.push(ev);
            if self.threads[t].buf.len() >= self.cfg.buffer_cap {
                self.flush(t);
            }
        } else {
            self.sink.event(&ev);
        }
    }

    /// Deliver and recycle the deterministic-mode batch buffer.
    fn flush_batch(&mut self) {
        if !self.batch.is_empty() {
            self.sink.events(&self.batch);
            self.batch.clear();
        }
    }

    fn flush(&mut self, t: usize) {
        if !self.cfg.racy_delivery {
            return;
        }
        // `sink` and `threads` are disjoint fields, so the delivery borrow
        // and the buffer borrow coexist; clearing recycles the allocation,
        // so steady-state racy profiling never allocates per flush.
        self.sink.events(&self.threads[t].buf);
        self.threads[t].buf.clear();
    }

    /// Execute the program to completion.
    pub fn run(mut self) -> Result<RunResult, RuntimeError> {
        let outcome = self.exec();
        // Deliver everything still buffered — also on failure, so sinks
        // observe the complete emitted prefix of the stream.
        for t in 0..self.threads.len() {
            self.flush(t);
        }
        self.flush_batch();
        let interrupted = matches!(outcome, Err(RuntimeError::Interrupted));
        if !interrupted {
            outcome?;
        }
        let mut channels: Vec<(u32, u32, u64)> = self
            .channels
            .iter()
            .map(|(&(from, to), &count)| (from, to, count))
            .collect();
        channels.sort_unstable();
        Ok(RunResult {
            ret: if interrupted {
                None
            } else {
                self.threads[0].ret
            },
            printed: self.printed,
            steps: self.steps,
            dispatches: self.dispatches,
            synth: self.synth,
            threads: self.threads.len() as u32,
            actors: ActorStats {
                spawned: self.sched.spawned(),
                peak_live: self.sched.peak_live(),
                sent: self.msgs_sent,
                received: self.msgs_received,
                channels,
            },
            interrupted,
        })
    }

    /// The scheduler loop: pop the next runnable actor off the run queue,
    /// execute one jittered slice, and return it to the back if it is
    /// still runnable. Park/wake is event-driven through the
    /// [`Scheduler`]'s typed wait lists — an empty queue means completion
    /// (all actors dead) or a reportable deadlock.
    fn exec(&mut self) -> Result<(), RuntimeError> {
        let stop = self.cfg.stop.clone();
        loop {
            if self.steps > self.cfg.max_steps {
                return Err(RuntimeError::StepLimit);
            }
            if let Some(flag) = &stop {
                if flag.load(std::sync::atomic::Ordering::Relaxed) {
                    return Err(RuntimeError::Interrupted);
                }
            }
            let Some(a) = self.sched.pick() else {
                if self.sched.all_dead() {
                    break;
                }
                return Err(RuntimeError::Deadlock {
                    waiting: self.sched.blocked_actors(),
                });
            };
            let q = self.sched.next_quantum(self.cfg.quantum);
            self.run_slice(a.index(), q)?;
            self.sched.yield_back(a);
        }
        Ok(())
    }

    /// Execute up to `quantum` decoded ops of thread `t` — the flattened
    /// hot loop. Frame state (`func`, `pc`, code slice, *and the register
    /// file*) lives in locals and is written back only on frame switches,
    /// blocking, or budget exhaustion; everything else advances `pc` in
    /// place and indexes the local `regs` slice directly instead of going
    /// through `threads[t].frames.last()` per operand.
    ///
    /// Fused superinstructions charge the budget once per *constituent*
    /// (`tick_or_park!`), so slice boundaries — and with them batch and
    /// racy delivery — are identical to the unfused stream; a mid-sequence
    /// suspension or trap parks the pc at the constituent's own slot, where
    /// the plain op still lives, and resumes unfused.
    fn run_slice(&mut self, t: usize, quantum: u32) -> Result<(), RuntimeError> {
        let prog = self.prog;
        let mut budget = quantum;
        // Step counters live in locals for the whole slice (two fewer
        // memory read-modify-writes per executed op) and are written back
        // whenever control leaves the straight-line loop: at `park!`, and
        // before any call that can observe them (region bookkeeping reads
        // the thread counter, the scheduler reads the global one).
        let mut steps = self.steps;
        let mut th_steps = self.threads[t].steps;
        let mut dispatches = self.dispatches;
        macro_rules! sync_steps {
            () => {{
                self.steps = steps;
                self.threads[t].steps = th_steps;
                self.dispatches = dispatches;
            }};
        }
        'frame: while budget > 0 && self.sched.is_ready(ActorId(t as u32)) {
            let fr = self.threads[t].frames.last_mut().unwrap();
            let func = fr.func;
            let base = fr.base;
            let mut pc = fr.pc;
            // Move the register file out of the frame for the duration of
            // the slice; `park!` puts it back (with the current pc)
            // whenever control leaves this frame's straight-line execution.
            let mut regs = std::mem::take(&mut fr.regs);
            let code: &FuncCode = &prog.code[func];
            let ops: &[HotOp] = &code.hot;
            let imms: &[Value] = &code.imms;
            macro_rules! park {
                () => {{
                    sync_steps!();
                    let fr = self.threads[t].frames.last_mut().unwrap();
                    fr.pc = pc;
                    fr.regs = regs;
                }};
            }
            // One constituent step of a fused op: charge the slice budget,
            // or suspend with the pc parked at slot `$at` — the plain op
            // there resumes the remaining constituents unfused.
            macro_rules! tick_or_park {
                ($at:expr) => {{
                    if budget == 0 {
                        pc = $at;
                        park!();
                        break 'frame;
                    }
                    budget -= 1;
                    steps += 1;
                    th_steps += 1;
                }};
            }
            // A load constituent (also the plain `Load` body); an
            // out-of-bounds trap parks the pc at slot `$at`, identical to
            // the unfused stream. The body is shared ([`Interp::exec_load`])
            // so the dispatch loop stays compact.
            macro_rules! do_load {
                ($mem:expr, $dst:expr, $at:expr) => {{
                    if let Err(e) = self.exec_load(t, imms, &mut regs, base, $mem, $dst, steps) {
                        pc = $at;
                        park!();
                        return Err(e);
                    }
                }};
            }
            // A store constituent (also the plain `Store` body).
            macro_rules! do_store {
                ($mem:expr, $src:expr, $at:expr) => {{
                    if let Err(e) = self.exec_store(t, imms, &regs, base, $mem, $src, steps) {
                        pc = $at;
                        park!();
                        return Err(e);
                    }
                }};
            }
            loop {
                if budget == 0 {
                    park!();
                    break 'frame;
                }
                budget -= 1;
                steps += 1;
                th_steps += 1;
                dispatches += 1;
                match ops[pc] {
                    HotOp::Load { dst, mem } => {
                        do_load!(&code.mems[mem as usize], dst, pc);
                        pc += 1;
                    }
                    HotOp::Store { mem, src } => {
                        do_store!(&code.mems[mem as usize], src, pc);
                        pc += 1;
                    }
                    HotOp::Bin { op, dst, lhs, rhs } => {
                        let a = lhs.value(&regs, imms);
                        let b = rhs.value(&regs, imms);
                        regs[dst as usize] = bin_eval_nontrap(op, a, b);
                        pc += 1;
                    }
                    HotOp::BinChecked { op, dst, lhs, rhs } => {
                        let a = lhs.value(&regs, imms);
                        let b = rhs.value(&regs, imms);
                        // The line travels in the cold table, paid only on
                        // the trap path.
                        let v = match bin_eval(op, a, b, 0) {
                            Ok(v) => v,
                            Err(_) => {
                                park!();
                                return Err(RuntimeError::DivByZero {
                                    line: code.trap_line(pc as u32),
                                });
                            }
                        };
                        regs[dst as usize] = v;
                        pc += 1;
                    }
                    HotOp::Un { op, dst, src } => {
                        let v = src.value(&regs, imms);
                        let r = match op {
                            UnOp::Neg => match v {
                                Value::I64(x) => Value::I64(x.wrapping_neg()),
                                Value::F64(x) => Value::F64(-x),
                            },
                            UnOp::Not => Value::I64(i64::from(!v.is_truthy())),
                            UnOp::ToF64 => Value::F64(v.as_f64()),
                            UnOp::ToI64 => Value::I64(v.as_i64()),
                        };
                        regs[dst as usize] = r;
                        pc += 1;
                    }
                    HotOp::CallUser { target, args, dst } => {
                        let mut vals = std::mem::take(&mut self.call_buf);
                        vals.clear();
                        vals.extend(
                            code.call_args[args as usize]
                                .iter()
                                .map(|a| a.value(&regs, imms)),
                        );
                        // Resume after the call on return.
                        pc += 1;
                        park!();
                        let fi = target as usize;
                        let ret_dst = (dst != DST_NONE).then_some(RegId(dst));
                        Self::push_frame_raw(prog, &mut self.threads[t], fi, &vals, ret_dst);
                        self.recycle_args(vals);
                        self.emit(
                            t,
                            Event::FuncEnter {
                                func: target,
                                line: prog.code[fi].start_line,
                                thread: t as u32,
                            },
                        );
                        continue 'frame;
                    }
                    HotOp::CallBuiltin {
                        builtin,
                        args,
                        dst,
                        line,
                    } => {
                        let mut vals = std::mem::take(&mut self.call_buf);
                        vals.clear();
                        vals.extend(
                            code.call_args[args as usize]
                                .iter()
                                .map(|a| a.value(&regs, imms)),
                        );
                        // Builtins may read or write the current frame's
                        // registers (e.g. a result destination), so the
                        // register file goes back into the frame around the
                        // call and is re-taken afterwards.
                        park!();
                        let ret_dst = (dst != DST_NONE).then_some(RegId(dst));
                        // Mailbox builtins carry a static memory-op id,
                        // pre-resolved at decode time from the call's slot.
                        let mbox_op = if builtin.is_mailbox_op() {
                            code.mailbox_op_at(pc as u32).unwrap_or(u32::MAX)
                        } else {
                            u32::MAX
                        };
                        let completed = self.builtin(t, builtin, &vals, ret_dst, line, mbox_op);
                        self.recycle_args(vals);
                        if completed? {
                            let fr = self.threads[t].frames.last_mut().unwrap();
                            regs = std::mem::take(&mut fr.regs);
                            pc += 1;
                        } else {
                            // Blocked: retry the call op on wake (the pc
                            // parked above points at this op).
                            continue 'frame;
                        }
                    }
                    HotOp::CallUnknown { name } => {
                        park!();
                        return Err(RuntimeError::UnknownFunction(
                            code.unknown_names[name as usize].to_string(),
                        ));
                    }
                    HotOp::RegionEnter {
                        kind,
                        region,
                        line,
                        end_line,
                    } => {
                        self.threads[t]
                            .frames
                            .last_mut()
                            .unwrap()
                            .regions
                            .push(RegionState {
                                region,
                                th_steps_at_enter: th_steps,
                                iters: 0,
                            });
                        self.emit(
                            t,
                            Event::RegionEnter {
                                func: func as u32,
                                region,
                                kind,
                                start_line: line,
                                end_line,
                                thread: t as u32,
                            },
                        );
                        pc += 1;
                    }
                    HotOp::RegionExit { region } => {
                        // Region exits read the thread step counter
                        // (`dyn_instrs`), so write the locals back first.
                        sync_steps!();
                        self.pop_regions_through(t, func, region);
                        pc += 1;
                    }
                    HotOp::LoopIter { region } => {
                        // Abrupt exits (continue) may leave inner branch
                        // regions on the stack; close them before opening
                        // the next iteration (they read the step counter).
                        sync_steps!();
                        self.pop_regions_above(t, func, region);
                        self.emit(
                            t,
                            Event::LoopIter {
                                func: func as u32,
                                region,
                                thread: t as u32,
                            },
                        );
                        pc += 1;
                        // Affine skip tier: when this LoopIter anchors a
                        // compiled plan, replay whole cycles without
                        // dispatching. The iteration just opened (charged
                        // and emitted above) is the plan's first cycle.
                        if self.skip_enabled {
                            if let Some(plan) = code.plan_at((pc - 1) as u32) {
                                // Precondition: the loop's own region must
                                // be on top of the region stack, so the
                                // Body steps bump the right iteration
                                // counter. Abrupt control flow into the
                                // header can violate this; fall back.
                                let top = self.threads[t]
                                    .frames
                                    .last()
                                    .unwrap()
                                    .regions
                                    .last()
                                    .map(|r| r.region);
                                if top == Some(region) {
                                    if self.synth_seen.insert((func as u32, plan.trigger)) {
                                        self.synth.loops += 1;
                                    }
                                    match self.exec_plan(
                                        t,
                                        func,
                                        code,
                                        plan,
                                        base,
                                        &mut regs,
                                        &mut budget,
                                        &mut steps,
                                        &mut th_steps,
                                    ) {
                                        Ok(next) => pc = next,
                                        Err((at, e)) => {
                                            pc = at;
                                            park!();
                                            return Err(e);
                                        }
                                    }
                                } else {
                                    self.synth.fallback_precondition += 1;
                                }
                            }
                        }
                    }
                    HotOp::LoopBody { region } => {
                        let fr = self.threads[t].frames.last_mut().unwrap();
                        if let Some(top) = fr.regions.last_mut() {
                            if top.region == region {
                                top.iters += 1;
                            }
                        }
                        pc += 1;
                    }
                    HotOp::Jump { delta } => pc = jump(pc, delta),
                    HotOp::Branch {
                        cond,
                        then_delta,
                        else_delta,
                    } => {
                        let v = cond.value(&regs, imms);
                        pc = jump(
                            pc,
                            if v.is_truthy() {
                                then_delta
                            } else {
                                else_delta
                            },
                        );
                    }
                    HotOp::Return { val } => {
                        let val = val.map(|o| o.value(&regs, imms));
                        // The frame is about to be popped; its (taken-out)
                        // register file dies with it, so no write-back —
                        // but region exits read the step counter.
                        sync_steps!();
                        self.do_return(t, func, code, val);
                        continue 'frame;
                    }
                    HotOp::Unreachable => {
                        unreachable!("verified IR has no unreachable terminators")
                    }
                    HotOp::CmpBranch { fused } => {
                        let cb = &code.cmp_branches[fused as usize];
                        // Constituent 1: Bin (charged at the loop top).
                        let a = cb.lhs.value(&regs, imms);
                        let b = cb.rhs.value(&regs, imms);
                        regs[cb.dst as usize] = bin_eval_nontrap(cb.op, a, b);
                        // Constituent 2: Branch at pc + 1; deltas are
                        // relative to the branch slot, as decoded.
                        tick_or_park!(pc + 1);
                        let v = cb.cond.value(&regs, imms);
                        pc = jump(
                            pc + 1,
                            if v.is_truthy() {
                                cb.then_delta
                            } else {
                                cb.else_delta
                            },
                        );
                    }
                    HotOp::LoadCmpBranch { fused } => {
                        let c = &code.load_cmp_branches[fused as usize];
                        do_load!(&c.load, c.load_dst, pc);
                        tick_or_park!(pc + 1);
                        let a = c.cmp.lhs.value(&regs, imms);
                        let b = c.cmp.rhs.value(&regs, imms);
                        regs[c.cmp.dst as usize] = bin_eval_nontrap(c.cmp.op, a, b);
                        tick_or_park!(pc + 2);
                        let v = c.cmp.cond.value(&regs, imms);
                        pc = jump(
                            pc + 2,
                            if v.is_truthy() {
                                c.cmp.then_delta
                            } else {
                                c.cmp.else_delta
                            },
                        );
                    }
                    HotOp::Rmw { fused } => {
                        let r = &code.rmws[fused as usize];
                        do_load!(&r.load, r.load_dst, pc);
                        tick_or_park!(pc + 1);
                        let a = r.lhs.value(&regs, imms);
                        let b = r.rhs.value(&regs, imms);
                        regs[r.bin_dst as usize] = bin_eval_nontrap(r.op, a, b);
                        tick_or_park!(pc + 2);
                        do_store!(&r.store, r.store_src, pc + 2);
                        pc += 3;
                    }
                    HotOp::RmwJump { fused, delta } => {
                        let r = &code.rmws[fused as usize];
                        do_load!(&r.load, r.load_dst, pc);
                        tick_or_park!(pc + 1);
                        let a = r.lhs.value(&regs, imms);
                        let b = r.rhs.value(&regs, imms);
                        regs[r.bin_dst as usize] = bin_eval_nontrap(r.op, a, b);
                        tick_or_park!(pc + 2);
                        do_store!(&r.store, r.store_src, pc + 2);
                        // Constituent 4: the folded trailing Jump at pc + 3;
                        // the delta is relative to the jump's own slot.
                        tick_or_park!(pc + 3);
                        pc = jump(pc + 3, delta);
                    }
                    HotOp::LoadRmw { fused } => {
                        let r = &code.load_rmws[fused as usize];
                        do_load!(&r.load, r.load_dst, pc);
                        tick_or_park!(pc + 1);
                        do_load!(&r.rmw.load, r.rmw.load_dst, pc + 1);
                        tick_or_park!(pc + 2);
                        let a = r.rmw.lhs.value(&regs, imms);
                        let b = r.rmw.rhs.value(&regs, imms);
                        regs[r.rmw.bin_dst as usize] = bin_eval_nontrap(r.rmw.op, a, b);
                        tick_or_park!(pc + 3);
                        do_store!(&r.rmw.store, r.rmw.store_src, pc + 3);
                        pc += 4;
                    }
                    HotOp::LoadRmwJump { fused, delta } => {
                        let r = &code.load_rmws[fused as usize];
                        do_load!(&r.load, r.load_dst, pc);
                        tick_or_park!(pc + 1);
                        do_load!(&r.rmw.load, r.rmw.load_dst, pc + 1);
                        tick_or_park!(pc + 2);
                        let a = r.rmw.lhs.value(&regs, imms);
                        let b = r.rmw.rhs.value(&regs, imms);
                        regs[r.rmw.bin_dst as usize] = bin_eval_nontrap(r.rmw.op, a, b);
                        tick_or_park!(pc + 3);
                        do_store!(&r.rmw.store, r.rmw.store_src, pc + 3);
                        // Constituent 5: the folded trailing Jump at pc + 4.
                        tick_or_park!(pc + 4);
                        pc = jump(pc + 4, delta);
                    }
                    HotOp::LoadLoadBin { fused } => {
                        let r = &code.load_load_bins[fused as usize];
                        do_load!(&r.load, r.load_dst, pc);
                        tick_or_park!(pc + 1);
                        do_load!(&r.load2, r.load2_dst, pc + 1);
                        tick_or_park!(pc + 2);
                        let a = r.lhs.value(&regs, imms);
                        let b = r.rhs.value(&regs, imms);
                        regs[r.bin_dst as usize] = bin_eval_nontrap(r.op, a, b);
                        pc += 3;
                    }
                    HotOp::LoadBin { fused } => {
                        let r = &code.load_bins[fused as usize];
                        do_load!(&r.load, r.load_dst, pc);
                        tick_or_park!(pc + 1);
                        let a = r.lhs.value(&regs, imms);
                        let b = r.rhs.value(&regs, imms);
                        regs[r.bin_dst as usize] = bin_eval_nontrap(r.op, a, b);
                        pc += 2;
                    }
                }
            }
        }
        Ok(())
    }

    /// Replay full cycles of one compiled loop plan — the affine skip
    /// tier's fast path. Called from the `LoopIter` dispatch arm *after*
    /// that arm charged and emitted the iteration that engages the plan,
    /// so the plan's steps (which start at `trigger + 1`) continue it.
    ///
    /// The replay is observationally identical to interpretation: every
    /// constituent charges exactly one step *before* executing (memory
    /// events carry the post-increment counter as their timestamp, exactly
    /// like `tick_or_park!` + `do_load!`), the cycle-heading `LoopIter` is
    /// charged and emitted the way its dispatch arm would, and the exit
    /// test runs live every cycle — the statically proven trip count is
    /// eligibility evidence, never trusted at runtime.
    ///
    /// Returns `Ok(pc)` with the pc interpretation resumes at:
    /// - the exit target, when the loop's live exit test fails;
    /// - the first uncharged constituent's own slot, when the slice budget
    ///   expires mid-cycle (the plain op there resumes interpreted — the
    ///   exact fused-op park semantics);
    /// - the trigger slot, when the budget expires at a cycle boundary or
    ///   the injected fault ([`RunConfig::affine_skip_fault`]) trips —
    ///   interpretation re-dispatches the `LoopIter` there.
    ///
    /// Returns `Err((pc, e))` when a constituent traps; the caller parks at
    /// `pc` and propagates, identical to `do_load!`/`do_store!`.
    #[allow(clippy::too_many_arguments)]
    fn exec_plan(
        &mut self,
        t: usize,
        func: usize,
        code: &FuncCode,
        plan: &LoopPlan,
        base: usize,
        regs: &mut [Value],
        budget: &mut u32,
        steps: &mut u64,
        th_steps: &mut u64,
    ) -> Result<usize, (usize, RuntimeError)> {
        let imms: &[Value] = &code.imms;
        let mut first = true;
        loop {
            if !first {
                // Cycle boundary: control is back at the trigger slot.
                // Interpretation would park here on an empty budget (its
                // budget check precedes the charge), and the fault check
                // sits here because a disabled tier resumes by
                // re-dispatching the LoopIter.
                if *budget == 0 {
                    return Ok(plan.trigger as usize);
                }
                if let Some(limit) = self.cfg.affine_skip_fault {
                    if self.synth.cycles >= limit {
                        self.skip_enabled = false;
                        self.synth.fallback_fault += 1;
                        return Ok(plan.trigger as usize);
                    }
                }
                // The next cycle's LoopIter: charge and emit exactly as
                // its dispatch arm does. `pop_regions_above` is a no-op by
                // the straight-line invariant (no region ops in the
                // cycle), so the region stack cannot have changed.
                *budget -= 1;
                *steps += 1;
                *th_steps += 1;
                self.emit(
                    t,
                    Event::LoopIter {
                        func: func as u32,
                        region: plan.region,
                        thread: t as u32,
                    },
                );
            }
            first = false;
            for step in plan.steps.iter() {
                if *budget == 0 {
                    // Mid-cycle slice expiry: genuine fallback — the rest
                    // of this cycle runs interpreted, re-engaging at the
                    // next LoopIter.
                    self.synth.fallback_budget += 1;
                    return Ok(step.pc as usize);
                }
                *budget -= 1;
                *steps += 1;
                *th_steps += 1;
                match &step.op {
                    PlanOp::Load { dst, mem } => {
                        self.synth.accesses += 1;
                        if let Err(e) = self.exec_load(t, imms, regs, base, mem, *dst, *steps) {
                            return Err((step.pc as usize, e));
                        }
                    }
                    PlanOp::Store { src, mem } => {
                        self.synth.accesses += 1;
                        if let Err(e) = self.exec_store(t, imms, regs, base, mem, *src, *steps) {
                            return Err((step.pc as usize, e));
                        }
                    }
                    PlanOp::Bin { op, dst, lhs, rhs } => {
                        let a = lhs.value(regs, imms);
                        let b = rhs.value(regs, imms);
                        regs[*dst as usize] = bin_eval_nontrap(*op, a, b);
                    }
                    PlanOp::Un { op, dst, src } => {
                        let v = src.value(regs, imms);
                        let r = match op {
                            UnOp::Neg => match v {
                                Value::I64(x) => Value::I64(x.wrapping_neg()),
                                Value::F64(x) => Value::F64(-x),
                            },
                            UnOp::Not => Value::I64(i64::from(!v.is_truthy())),
                            UnOp::ToF64 => Value::F64(v.as_f64()),
                            UnOp::ToI64 => Value::I64(v.as_i64()),
                        };
                        regs[*dst as usize] = r;
                    }
                    PlanOp::Body { region } => {
                        let fr = self.threads[t].frames.last_mut().unwrap();
                        if let Some(top) = fr.regions.last_mut() {
                            if top.region == *region {
                                top.iters += 1;
                            }
                        }
                    }
                    PlanOp::Skip => {}
                    PlanOp::Exit {
                        cond,
                        cont_on_true,
                        exit_pc,
                    } => {
                        let v = cond.value(regs, imms);
                        if v.is_truthy() != *cont_on_true {
                            return Ok(*exit_pc as usize);
                        }
                    }
                }
            }
            self.synth.cycles += 1;
        }
    }

    /// Return the argument buffer for reuse by the next call.
    #[inline]
    fn recycle_args(&mut self, vals: Vec<Value>) {
        self.call_buf = vals;
    }

    /// Function return: close open regions, emit the frame dealloc and
    /// FuncExit, pop the frame, and deliver the return value.
    fn do_return(&mut self, t: usize, func: usize, code: &FuncCode, val: Option<Value>) {
        // Close any regions still open in this frame (return from inside a
        // loop).
        while !self.threads[t].frames.last().unwrap().regions.is_empty() {
            self.pop_one_region(t, func);
        }
        let fr = self.threads[t].frames.pop().unwrap();
        // The whole frame dies: one dealloc event for its range.
        let words = code.frame_words as u64;
        if words > 0 {
            let addr = STACK_BASE + t as u64 * STACK_SPAN + fr.base as u64 * WORD;
            self.emit(
                t,
                Event::VarDealloc {
                    addr,
                    words,
                    thread: t as u32,
                },
            );
        }
        self.emit(
            t,
            Event::FuncExit {
                func: func as u32,
                line: code.end_line,
                thread: t as u32,
            },
        );
        self.threads[t].sp = fr.base;
        if self.threads[t].frames.is_empty() {
            self.sched.actor_died(ActorId(t as u32));
            self.threads[t].ret = val;
            self.emit(t, Event::ThreadEnd { thread: t as u32 });
            self.flush(t);
        } else if let (Some(dst), Some(v)) = (fr.ret_dst, val) {
            self.set_reg(t, dst, v);
        }
    }

    /// Write a register of the current frame. Off-hot-path helper for
    /// builtins and returns; `run_slice` writes its cached `regs` directly.
    #[inline]
    fn set_reg(&mut self, t: usize, r: RegId, v: Value) {
        self.threads[t].frames.last_mut().unwrap().regs[r.index()] = v;
    }

    /// One load step: resolve the memory reference, move the value into
    /// `regs[dst]`, and emit the memory event — the shared body behind the
    /// plain `Load` op and every fused load constituent. `ts` is the
    /// slice-local step counter (the event timestamp).
    #[inline(always)]
    #[allow(clippy::too_many_arguments)]
    fn exec_load(
        &mut self,
        t: usize,
        imms: &[Value],
        regs: &mut [Value],
        base: usize,
        m: &MemRef,
        dst: u32,
        ts: u64,
    ) -> Result<(), RuntimeError> {
        let (addr, is_global, slot, sym) = self.resolve(t, regs, imms, base, m)?;
        let v = if is_global {
            self.globals[slot]
        } else {
            self.threads[t].mem[slot]
        };
        regs[dst as usize] = v;
        self.emit(
            t,
            Event::Mem(MemEvent {
                is_write: false,
                addr,
                op: m.op_id,
                line: m.line,
                var: sym,
                thread: t as u32,
                ts,
            }),
        );
        Ok(())
    }

    /// One store step — the shared body behind the plain `Store` op and
    /// every fused store constituent.
    #[inline(always)]
    #[allow(clippy::too_many_arguments)]
    fn exec_store(
        &mut self,
        t: usize,
        imms: &[Value],
        regs: &[Value],
        base: usize,
        m: &MemRef,
        src: crate::code::Opnd,
        ts: u64,
    ) -> Result<(), RuntimeError> {
        let v = src.value(regs, imms);
        let (addr, is_global, slot, sym) = self.resolve(t, regs, imms, base, m)?;
        if is_global {
            self.globals[slot] = v;
        } else {
            self.threads[t].mem[slot] = v;
        }
        self.emit(
            t,
            Event::Mem(MemEvent {
                is_write: true,
                addr,
                op: m.op_id,
                line: m.line,
                var: sym,
                thread: t as u32,
                ts,
            }),
        );
        Ok(())
    }

    /// Resolve a precompiled memory reference to `(logical address,
    /// is_global, storage slot, symbol)`, checking bounds. `regs`/`imms`/
    /// `base` are the current frame's register file, the function's
    /// immediate pool, and the stack base, cached in `run_slice` locals.
    /// Forced inline: letting this fall out of line puts a 7-argument call
    /// on every memory operation's critical path.
    #[inline(always)]
    fn resolve(
        &self,
        t: usize,
        regs: &[Value],
        imms: &[Value],
        base: usize,
        m: &MemRef,
    ) -> Result<(u64, bool, usize, u32), RuntimeError> {
        let idx = if m.has_index {
            m.index.value(regs, imms).as_i64()
        } else {
            0
        };
        if idx < 0 || idx as u64 >= m.elems {
            return Err(self.out_of_bounds(m, idx));
        }
        if m.global {
            let slot = m.base as usize + idx as usize;
            Ok((GLOBAL_BASE + slot as u64 * WORD, true, slot, m.sym))
        } else {
            let word = base as u64 + m.base as u64 + idx as u64;
            let addr = STACK_BASE + t as u64 * STACK_SPAN + word * WORD;
            Ok((addr, false, word as usize, m.sym))
        }
    }

    /// Cold path: reconstruct the variable name for the bounds error. The
    /// interned symbol was created from the variable's name, so it *is* the
    /// name — no module walk needed.
    #[cold]
    fn out_of_bounds(&self, m: &MemRef, index: i64) -> RuntimeError {
        RuntimeError::OutOfBounds {
            line: m.line,
            var: self.prog.symbol(m.sym).to_string(),
            index,
        }
    }

    /// Pop and emit exits for all regions strictly above `region` on the
    /// current frame's region stack.
    fn pop_regions_above(&mut self, t: usize, func_idx: usize, region: u32) {
        loop {
            let fr = self.threads[t].frames.last().unwrap();
            match fr.regions.last() {
                Some(top) if top.region != region => {
                    self.pop_one_region(t, func_idx);
                }
                _ => break,
            }
        }
    }

    /// Pop regions up to and including `region`, emitting exit events.
    fn pop_regions_through(&mut self, t: usize, func_idx: usize, region: u32) {
        self.pop_regions_above(t, func_idx, region);
        let fr = self.threads[t].frames.last().unwrap();
        if fr.regions.last().map(|r| r.region) == Some(region) {
            self.pop_one_region(t, func_idx);
        }
    }

    fn pop_one_region(&mut self, t: usize, func_idx: usize) {
        let prog = self.prog;
        let th_steps = self.threads[t].steps;
        let fr = self.threads[t].frames.last_mut().unwrap();
        let st = fr.regions.pop().expect("region stack underflow");
        let frame_base = fr.base as u64;
        let rinfo = &prog.code[func_idx].regions[st.region as usize];
        let ev = Event::RegionExit(RegionExitEvent {
            func: func_idx as u32,
            region: st.region,
            kind: rinfo.kind,
            start_line: rinfo.start_line,
            end_line: rinfo.end_line,
            iters: st.iters,
            dyn_instrs: th_steps - st.th_steps_at_enter,
            thread: t as u32,
        });
        self.emit(t, ev);
        // Region-scoped locals die here (variable lifetime analysis); the
        // ranges were pre-resolved at decode, so no allocation here.
        // `rinfo` borrows `prog` (not `self`), so it stays live across the
        // emit calls.
        for &o in rinfo.owned.iter() {
            let addr = STACK_BASE + t as u64 * STACK_SPAN + (frame_base + o.off as u64) * WORD;
            self.emit(
                t,
                Event::VarDealloc {
                    addr,
                    words: o.words,
                    thread: t as u32,
                },
            );
        }
    }

    /// Execute a builtin call. Returns `Ok(true)` when the call completed
    /// (the caller advances past it) and `Ok(false)` when the actor
    /// parked (the call op is retried on wake). `mbox_op` is the static
    /// memory-op id for mailbox builtins (`u32::MAX` otherwise).
    fn builtin(
        &mut self,
        t: usize,
        builtin: Builtin,
        args: &[Value],
        dst: Option<RegId>,
        line: u32,
        mbox_op: u32,
    ) -> Result<bool, RuntimeError> {
        let mut result: Option<Value> = None;
        match builtin {
            Builtin::Print => {
                let s = args
                    .iter()
                    .map(|v| v.to_string())
                    .collect::<Vec<_>>()
                    .join(" ");
                self.printed.push(s);
            }
            Builtin::Sqrt => result = Some(Value::F64(args[0].as_f64().sqrt())),
            Builtin::Sin => result = Some(Value::F64(args[0].as_f64().sin())),
            Builtin::Cos => result = Some(Value::F64(args[0].as_f64().cos())),
            Builtin::Exp => result = Some(Value::F64(args[0].as_f64().exp())),
            Builtin::Log => result = Some(Value::F64(args[0].as_f64().ln())),
            Builtin::Fabs => result = Some(Value::F64(args[0].as_f64().abs())),
            Builtin::Floor => result = Some(Value::F64(args[0].as_f64().floor())),
            Builtin::Ceil => result = Some(Value::F64(args[0].as_f64().ceil())),
            Builtin::Pow => result = Some(Value::F64(args[0].as_f64().powf(args[1].as_f64()))),
            Builtin::Fmin => result = Some(Value::F64(args[0].as_f64().min(args[1].as_f64()))),
            Builtin::Fmax => result = Some(Value::F64(args[0].as_f64().max(args[1].as_f64()))),
            Builtin::Abs => result = Some(Value::I64(args[0].as_i64().wrapping_abs())),
            Builtin::Min => result = Some(Value::I64(args[0].as_i64().min(args[1].as_i64()))),
            Builtin::Max => result = Some(Value::I64(args[0].as_i64().max(args[1].as_i64()))),
            Builtin::Rand => {
                let v = (self.user_next() >> 33) as i64;
                result = Some(Value::I64(v));
            }
            Builtin::Frand => {
                let v = (self.user_next() >> 11) as f64 / (1u64 << 53) as f64;
                result = Some(Value::F64(v));
            }
            Builtin::Srand => {
                self.user_rng = (args[0].as_i64() as u64) | 1;
            }
            Builtin::Tid => result = Some(Value::I64(t as i64)),
            Builtin::Spawn => {
                let fi = args[0].as_i64() as usize;
                let child = self.spawn_thread(fi, &args[1..], Some(t as u32), line);
                result = Some(Value::I64(child as i64));
            }
            Builtin::Join => {
                let target = args[0].as_i64();
                if target < 0 || target as usize >= self.threads.len() {
                    return Err(RuntimeError::BadJoin { line });
                }
                if !self.sched.is_dead(ActorId(target as u32)) {
                    self.sched
                        .park(ActorId(t as u32), WaitReason::Join(ActorId(target as u32)));
                    return Ok(false); // do not advance; retried on wake
                }
                self.emit(
                    t,
                    Event::ThreadJoin {
                        thread: t as u32,
                        target: target as u32,
                        line,
                    },
                );
                self.flush(t);
            }
            Builtin::Lock => {
                let id = args[0].as_i64();
                match self.locks.get(&id) {
                    None => {
                        self.locks.insert(id, t as u32);
                        self.emit(
                            t,
                            Event::LockAcquire {
                                id,
                                thread: t as u32,
                                line,
                            },
                        );
                    }
                    Some(holder) if *holder == t as u32 => {
                        return Err(RuntimeError::RecursiveLock { line })
                    }
                    Some(_) => {
                        self.sched.park(ActorId(t as u32), WaitReason::Lock(id));
                        return Ok(false); // do not advance; retried on wake
                    }
                }
            }
            Builtin::Unlock => {
                let id = args[0].as_i64();
                if self.locks.get(&id) != Some(&(t as u32)) {
                    return Err(RuntimeError::BadUnlock { line });
                }
                self.emit(
                    t,
                    Event::LockRelease {
                        id,
                        thread: t as u32,
                        line,
                    },
                );
                self.flush(t); // release: make everything visible
                self.locks.remove(&id);
                self.sched.lock_released(id);
            }
            Builtin::SpawnActor => {
                let fi = args[0].as_i64() as usize;
                let child = self.spawn_thread(fi, &args[1..], Some(t as u32), line);
                result = Some(Value::I64(child as i64));
            }
            Builtin::Send => {
                let target = args[0].as_i64();
                if target < 0 || target as usize >= self.threads.len() {
                    return Err(RuntimeError::BadSend { line });
                }
                let tgt = target as usize;
                let cap = self.cfg.mailbox_cap.max(1);
                if self.threads[tgt].mbox.len() >= cap {
                    // Mailbox full: backpressure — park until the receiver
                    // frees a slot, then retry the whole send.
                    self.sched
                        .park(ActorId(t as u32), WaitReason::SendCap(ActorId(tgt as u32)));
                    return Ok(false);
                }
                let seq = self.threads[tgt].mbox_in;
                self.threads[tgt].mbox_in += 1;
                self.threads[tgt].mbox.push_back(args[1]);
                // The send is a store into the target's mailbox slot: an
                // ordinary dependence-bearing access. Slot reuse at the
                // capacity bound yields WAR/WAW coupling with earlier
                // occupants of the same slot.
                let slot = (seq % cap as u64) % MAILBOX_SLOTS;
                let addr = MAILBOX_BASE + tgt as u64 * MAILBOX_SPAN + slot * WORD;
                self.emit(
                    t,
                    Event::Mem(MemEvent {
                        is_write: true,
                        addr,
                        op: mbox_op,
                        line,
                        var: self.prog.mailbox_symbol().unwrap_or(0),
                        thread: t as u32,
                        ts: self.steps,
                    }),
                );
                self.flush(t); // message handoff: make the send visible now
                self.msgs_sent += 1;
                *self.channels.entry((t as u32, tgt as u32)).or_insert(0) += 1;
                self.sched.message_arrived(ActorId(tgt as u32));
            }
            Builtin::Receive => {
                let Some(val) = self.threads[t].mbox.pop_front() else {
                    // Empty mailbox: park until a message arrives.
                    self.sched.park(ActorId(t as u32), WaitReason::Receive);
                    return Ok(false);
                };
                let seq = self.threads[t].mbox_out;
                self.threads[t].mbox_out += 1;
                let cap = self.cfg.mailbox_cap.max(1);
                let slot = (seq % cap as u64) % MAILBOX_SLOTS;
                let addr = MAILBOX_BASE + t as u64 * MAILBOX_SPAN + slot * WORD;
                self.emit(
                    t,
                    Event::Mem(MemEvent {
                        is_write: false,
                        addr,
                        op: mbox_op,
                        line,
                        var: self.prog.mailbox_symbol().unwrap_or(0),
                        thread: t as u32,
                        ts: self.steps,
                    }),
                );
                self.flush(t);
                self.msgs_received += 1;
                result = Some(val);
                // A slot freed: senders parked on our capacity may retry.
                self.sched.mailbox_slot_freed(ActorId(t as u32));
            }
        }
        if let (Some(d), Some(v)) = (dst, result) {
            self.set_reg(t, d, v);
        }
        Ok(true)
    }
}

pub(crate) fn bin_eval(op: BinOp, a: Value, b: Value, line: u32) -> Result<Value, RuntimeError> {
    use BinOp::*;
    let float = matches!(a, Value::F64(_)) || matches!(b, Value::F64(_));
    Ok(match op {
        Add | Sub | Mul | Div if float => {
            let (x, y) = (a.as_f64(), b.as_f64());
            Value::F64(match op {
                Add => x + y,
                Sub => x - y,
                Mul => x * y,
                Div => x / y,
                _ => unreachable!(),
            })
        }
        Add => Value::I64(a.as_i64().wrapping_add(b.as_i64())),
        Sub => Value::I64(a.as_i64().wrapping_sub(b.as_i64())),
        Mul => Value::I64(a.as_i64().wrapping_mul(b.as_i64())),
        Div => {
            let d = b.as_i64();
            if d == 0 {
                return Err(RuntimeError::DivByZero { line });
            }
            Value::I64(a.as_i64().wrapping_div(d))
        }
        Rem => {
            let d = b.as_i64();
            if d == 0 {
                return Err(RuntimeError::DivByZero { line });
            }
            Value::I64(a.as_i64().wrapping_rem(d))
        }
        And => Value::I64(a.as_i64() & b.as_i64()),
        Or => Value::I64(a.as_i64() | b.as_i64()),
        Xor => Value::I64(a.as_i64() ^ b.as_i64()),
        Shl => Value::I64(a.as_i64().wrapping_shl(b.as_i64() as u32 & 63)),
        Shr => Value::I64(a.as_i64().wrapping_shr(b.as_i64() as u32 & 63)),
        Eq | Ne | Lt | Le | Gt | Ge => {
            let r = if float {
                let (x, y) = (a.as_f64(), b.as_f64());
                match op {
                    Eq => x == y,
                    Ne => x != y,
                    Lt => x < y,
                    Le => x <= y,
                    Gt => x > y,
                    Ge => x >= y,
                    _ => unreachable!(),
                }
            } else {
                let (x, y) = (a.as_i64(), b.as_i64());
                match op {
                    Eq => x == y,
                    Ne => x != y,
                    Lt => x < y,
                    Le => x <= y,
                    Gt => x > y,
                    Ge => x >= y,
                    _ => unreachable!(),
                }
            };
            Value::from(r)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{NullSink, RecordingSink};

    fn exec(src: &str) -> RunResult {
        let m = lang::compile(src, "t").unwrap();
        let p = Program::new(m);
        run(&p, NullSink).unwrap()
    }

    fn exec_rec(src: &str) -> (RunResult, Vec<Event>) {
        let m = lang::compile(src, "t").unwrap();
        let p = Program::new(m);
        let mut sink = RecordingSink::default();
        let r = run(&p, &mut sink).unwrap();
        (r, sink.events)
    }

    #[test]
    fn actor_ping_pong() {
        let r = exec(
            "fn main() -> int {
                int c = spawn_actor(echo, 0);
                send(c, 41);
                int v = receive();
                join(c);
                return v;
            }
            fn echo(int x) { int v = receive(); send(0, v + 1); }",
        );
        assert_eq!(r.ret, Some(Value::I64(42)));
        assert_eq!(r.actors.spawned, 2);
        assert_eq!(r.actors.peak_live, 2);
        assert_eq!(r.actors.sent, 2);
        assert_eq!(r.actors.received, 2);
        assert_eq!(r.actors.channels, vec![(0, 1, 1), (1, 0, 1)]);
    }

    #[test]
    fn send_backpressure_parks_until_slot_freed() {
        // Mailbox capacity 2: the producer must park on its third send
        // until the consumer drains a slot; everything still completes.
        let m = lang::compile(
            "fn main() -> int {
                int c = spawn_actor(consumer, 0);
                for (int i = 0; i < 6; i = i + 1) { send(c, i); }
                join(c);
                return receive();
            }
            fn consumer(int x) {
                int s = 0;
                for (int i = 0; i < 6; i = i + 1) { s = s + receive(); }
                send(0, s);
            }",
            "t",
        )
        .unwrap();
        let p = Program::new(m);
        let cfg = RunConfig {
            mailbox_cap: 2,
            ..RunConfig::default()
        };
        let r = run_with_config(&p, NullSink, cfg).unwrap();
        assert_eq!(r.ret, Some(Value::I64(15)));
        assert_eq!(r.actors.sent, 7);
        assert_eq!(r.actors.received, 7);
    }

    #[test]
    fn receive_without_sender_is_reported_deadlock() {
        let m = lang::compile("fn main() { int v = receive(); }", "t").unwrap();
        let p = Program::new(m);
        let err = run(&p, NullSink).unwrap_err();
        let RuntimeError::Deadlock { waiting } = err else {
            panic!("expected deadlock, got {err}");
        };
        assert_eq!(waiting, vec![(0, WaitReason::Receive)]);
    }

    #[test]
    fn send_to_unknown_actor_fails() {
        let m = lang::compile("fn main() { send(7, 1); }", "t").unwrap();
        let p = Program::new(m);
        assert!(matches!(
            run(&p, NullSink).unwrap_err(),
            RuntimeError::BadSend { line: 1 }
        ));
    }

    #[test]
    fn mailbox_events_carry_appended_op_ids() {
        let (_, evs) = exec_rec(
            "fn main() -> int {
                int c = spawn_actor(echo, 0);
                send(c, 5);
                join(c);
                return 0;
            }
            fn echo(int x) { int v = receive(); }",
        );
        let m = lang::compile(
            "fn main() -> int {
                int c = spawn_actor(echo, 0);
                send(c, 5);
                join(c);
                return 0;
            }
            fn echo(int x) { int v = receive(); }",
            "t",
        )
        .unwrap();
        let p = Program::new(m);
        let base = p.mailbox_op_base();
        let mbox: Vec<&MemEvent> = evs
            .iter()
            .filter_map(|e| match e {
                Event::Mem(m) if m.addr >= crate::program::MAILBOX_BASE => Some(m),
                _ => None,
            })
            .collect();
        assert_eq!(mbox.len(), 2); // one send (write), one receive (read)
        assert!(mbox.iter().all(|m| m.op >= base));
        assert!(mbox[0].is_write && !mbox[1].is_write);
        // Send and receive of the same message target the same slot.
        assert_eq!(mbox[0].addr, mbox[1].addr);
        assert_eq!(p.symbol(mbox[0].var), "<mailbox>");
    }

    #[test]
    fn loop_sum() {
        let r = exec(
            "fn main() -> int {
                int s = 0;
                for (int i = 0; i < 10; i = i + 1) { s = s + i; }
                return s;
            }",
        );
        assert_eq!(r.ret, Some(Value::I64(45)));
    }

    #[test]
    fn recursion_factorial() {
        let r = exec(
            "fn fac(int n) -> int {
                if (n <= 1) { return 1; }
                return n * fac(n - 1);
            }
            fn main() -> int { return fac(6); }",
        );
        assert_eq!(r.ret, Some(Value::I64(720)));
    }

    #[test]
    fn global_array_ops() {
        let r = exec(
            "global int a[8];
            fn main() -> int {
                for (int i = 0; i < 8; i = i + 1) { a[i] = i * i; }
                int s = 0;
                for (int i = 0; i < 8; i = i + 1) { s += a[i]; }
                return s;
            }",
        );
        assert_eq!(r.ret, Some(Value::I64(140)));
    }

    #[test]
    fn float_math() {
        let r = exec(
            "fn main() -> float {
                float x = 2.0;
                return sqrt(x * 8.0);
            }",
        );
        assert_eq!(r.ret, Some(Value::F64(4.0)));
    }

    #[test]
    fn print_collects_output() {
        let r = exec("fn main() { print(1, 2); print(3); }");
        assert_eq!(r.printed, vec!["1 2", "3"]);
    }

    #[test]
    fn while_break_continue() {
        let r = exec(
            "fn main() -> int {
                int i = 0; int s = 0;
                while (1) {
                    i = i + 1;
                    if (i > 10) { break; }
                    if (i % 2 == 0) { continue; }
                    s += i;
                }
                return s;
            }",
        );
        assert_eq!(r.ret, Some(Value::I64(25))); // 1+3+5+7+9
    }

    #[test]
    fn spawn_join_with_locks() {
        let r = exec(
            "global int counter;
            fn worker(int n) {
                for (int i = 0; i < n; i = i + 1) {
                    lock(1);
                    counter += 1;
                    unlock(1);
                }
            }
            fn main() -> int {
                int t1 = spawn(worker, 50);
                int t2 = spawn(worker, 50);
                join(t1);
                join(t2);
                return counter;
            }",
        );
        assert_eq!(r.ret, Some(Value::I64(100)));
        assert_eq!(r.threads, 3);
    }

    #[test]
    fn loop_iteration_count_in_region_exit() {
        let (_, evs) = exec_rec(
            "fn main() {
                int s = 0;
                for (int i = 0; i < 7; i = i + 1) { s += i; }
            }",
        );
        let iters = evs
            .iter()
            .find_map(|e| match e {
                Event::RegionExit(x) if x.kind == mir::RegionKind::Loop => Some(x.iters),
                _ => None,
            })
            .unwrap();
        assert_eq!(iters, 7);
    }

    #[test]
    fn mem_events_have_names_and_lines() {
        let m = lang::compile("global int g;\nfn main() { g = 4; int x = g; }", "t").unwrap();
        let p = Program::new(m);
        let mut sink = RecordingSink::default();
        run(&p, &mut sink).unwrap();
        let mems: Vec<&MemEvent> = sink
            .events
            .iter()
            .filter_map(|e| match e {
                Event::Mem(m) => Some(m),
                _ => None,
            })
            .collect();
        assert_eq!(mems.len(), 3); // store g, load g, store x
        assert!(mems[0].is_write);
        assert_eq!(p.symbol(mems[0].var), "g");
        assert_eq!(mems[0].line, 2);
        assert!(!mems[1].is_write);
        assert_eq!(p.symbol(mems[2].var), "x");
    }

    #[test]
    fn frame_dealloc_reuses_addresses() {
        let (_, evs) = exec_rec(
            "fn leaf() -> int { int local = 3; return local; }
            fn main() { int a = leaf(); int b = leaf(); }",
        );
        // The two calls to leaf() must produce writes to the same address
        // (stack reuse) with a dealloc in between.
        let writes: Vec<u64> = evs
            .iter()
            .filter_map(|e| match e {
                Event::Mem(m) if m.is_write && m.addr >= STACK_BASE => Some(m.addr),
                _ => None,
            })
            .collect();
        let deallocs = evs
            .iter()
            .filter(|e| matches!(e, Event::VarDealloc { .. }))
            .count();
        assert!(deallocs >= 2);
        // `local` written twice at the same stack slot.
        let mut counts = std::collections::HashMap::new();
        for w in writes {
            *counts.entry(w).or_insert(0) += 1;
        }
        assert!(counts.values().any(|&c| c >= 2));
    }

    #[test]
    fn deadlock_detected() {
        let m = lang::compile(
            "fn main() { lock(1); int t = spawn(helper, 0); join(t); }
            fn helper(int x) { lock(1); unlock(1); }",
            "t",
        )
        .unwrap();
        let p = Program::new(m);
        let err = run(&p, NullSink).unwrap_err();
        let RuntimeError::Deadlock { waiting } = err else {
            panic!("expected deadlock, got {err}");
        };
        // Main (actor 0) waits on join(1); helper (actor 1) waits on lock 1.
        assert_eq!(
            waiting,
            vec![(0, WaitReason::Join(ActorId(1))), (1, WaitReason::Lock(1)),]
        );
    }

    #[test]
    fn div_by_zero_detected() {
        let m = lang::compile("fn main() -> int { int z = 0; return 4 / z; }", "t").unwrap();
        let p = Program::new(m);
        assert!(matches!(
            run(&p, NullSink).unwrap_err(),
            RuntimeError::DivByZero { .. }
        ));
    }

    #[test]
    fn out_of_bounds_detected() {
        let m = lang::compile("global int a[4]; fn main() { int i = 9; a[i] = 1; }", "t").unwrap();
        let p = Program::new(m);
        assert!(matches!(
            run(&p, NullSink).unwrap_err(),
            RuntimeError::OutOfBounds { .. }
        ));
    }

    #[test]
    fn deterministic_across_runs() {
        let src = "global int c;
            fn w(int n) { for (int i = 0; i < n; i = i + 1) { lock(0); c += 1; unlock(0); } }
            fn main() -> int { int a = spawn(w, 20); int b = spawn(w, 30); join(a); join(b); return c; }";
        let m = lang::compile(src, "t").unwrap();
        let p = Program::new(m);
        let mut s1 = RecordingSink::default();
        let mut s2 = RecordingSink::default();
        run(&p, &mut s1).unwrap();
        run(&p, &mut s2).unwrap();
        assert_eq!(s1.events, s2.events, "same seed must give identical traces");
    }

    #[test]
    fn racy_delivery_preserves_per_thread_order() {
        let src = "global int c;
            fn w(int n) { for (int i = 0; i < n; i = i + 1) { c += 1; } }
            fn main() { int a = spawn(w, 10); int b = spawn(w, 10); join(a); join(b); }";
        let m = lang::compile(src, "t").unwrap();
        let p = Program::new(m);
        let mut sink = RecordingSink::default();
        let cfg = RunConfig {
            racy_delivery: true,
            buffer_cap: 8,
            ..Default::default()
        };
        run_with_config(&p, &mut sink, cfg).unwrap();
        // Per-thread timestamps must be monotone even if global order is not.
        let mut last: HashMap<u32, u64> = HashMap::new();
        for e in &sink.events {
            if let Event::Mem(m) = e {
                let prev = last.insert(m.thread, m.ts);
                if let Some(p) = prev {
                    assert!(m.ts > p, "per-thread order violated");
                }
            }
        }
    }

    #[test]
    fn batch_cap_below_two_normalizes_to_per_event_delivery() {
        assert_eq!(RunConfig::default().effective_batch_cap(), 256);
        for cap in [0usize, 1] {
            let cfg = RunConfig {
                batch_cap: cap,
                ..Default::default()
            };
            assert_eq!(cfg.effective_batch_cap(), 1, "cap {cap}");
        }

        // 0 and 1 must behave identically: per-event delivery, no batching.
        struct Count {
            singles: usize,
            batches: usize,
        }
        impl Sink for Count {
            fn event(&mut self, _ev: &Event) {
                self.singles += 1;
            }
            fn events(&mut self, _evs: &[Event]) {
                self.batches += 1;
            }
        }
        let p = Program::new(
            lang::compile(
                "fn main() { int s = 0; for (int i = 0; i < 8; i = i + 1) { s += i; } }",
                "t",
            )
            .unwrap(),
        );
        let deliver = |cap: usize| {
            let mut c = Count {
                singles: 0,
                batches: 0,
            };
            run_with_config(
                &p,
                &mut c,
                RunConfig {
                    batch_cap: cap,
                    ..Default::default()
                },
            )
            .unwrap();
            (c.singles, c.batches)
        };
        let zero = deliver(0);
        let one = deliver(1);
        assert_eq!(zero, one, "batch_cap 0 and 1 must be equivalent");
        assert!(zero.0 > 0, "per-event path must be used");
        assert_eq!(zero.1, 0, "no batch delivery below cap 2");
        let (singles, batches) = deliver(2);
        assert_eq!(singles, 0, "cap 2 must batch everything");
        assert!(batches > 0);
    }

    #[test]
    fn nested_call_in_loop_regions_balanced() {
        let (_, evs) = exec_rec(
            "fn g(int x) -> int { if (x > 0) { return x; } return 0 - x; }
            fn main() {
                int s = 0;
                for (int i = 0; i < 5; i = i + 1) { s += g(i - 2); }
            }",
        );
        let enters = evs
            .iter()
            .filter(|e| matches!(e, Event::RegionEnter { .. }))
            .count();
        let exits = evs
            .iter()
            .filter(|e| matches!(e, Event::RegionExit(_)))
            .count();
        assert_eq!(enters, exits, "region events must balance");
    }

    #[test]
    fn unknown_function_fails_only_when_called() {
        // A call to an unresolvable name decodes successfully and fails at
        // execution, exactly like the name-map scheme it replaces — but it
        // cannot be reached through `lang::compile` (the frontend rejects
        // unknown names), so build the module by hand.
        use mir::{FunctionBuilder, ModuleBuilder, Operand, Terminator, Value};
        let mut mb = ModuleBuilder::new("t");
        let mut fb = FunctionBuilder::new("main", None, 1);
        fb.call("no_such_fn", vec![Operand::Const(Value::I64(0))], false, 1);
        fb.terminate(Terminator::Return(None));
        mb.add_function(fb.build(1));
        let p = Program::new(mb.build());
        assert_eq!(
            run(&p, NullSink).unwrap_err(),
            RuntimeError::UnknownFunction("no_such_fn".to_string())
        );
    }
}
