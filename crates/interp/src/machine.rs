//! The interpreter core: frames, heap, builtins, and the deterministic
//! multi-thread scheduler.

use crate::event::{Event, MemEvent, RegionExitEvent, Sink};
use crate::program::{Program, GLOBAL_BASE, STACK_BASE, STACK_SPAN, WORD};
use fxhash::FxHashMap;
use mir::{BinOp, Instr, Operand, Place, RegId, Terminator, UnOp, Value, VarRef};
use std::fmt;

#[cfg(test)]
use std::collections::HashMap;

/// Execution limits and scheduling parameters.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Abort after this many executed instructions.
    pub max_steps: u64,
    /// Base scheduler quantum (instructions per slice).
    pub quantum: u32,
    /// Seed for both the scheduler jitter and the program-visible `rand()`.
    pub seed: u64,
    /// Buffer events per thread and flush only at synchronization points,
    /// reproducing out-of-order event delivery of real threads
    /// (dissertation Fig. 2.4). Off by default for determinism.
    pub racy_delivery: bool,
    /// Per-thread event buffer capacity in racy mode.
    pub buffer_cap: usize,
    /// Events coalesced per [`Sink::events`] delivery when the sink opts in
    /// via [`Sink::batch_hint`] (deterministic mode only; racy mode batches
    /// per thread through `buffer_cap`).
    ///
    /// Values below 2 disable batching: a batch of one event is just a
    /// per-event call with extra buffering, so `0` and `1` are equivalent
    /// and both normalize to `1` (see [`RunConfig::effective_batch_cap`]).
    pub batch_cap: usize,
}

impl RunConfig {
    /// The batch size actually used: `batch_cap`, with the degenerate
    /// values `0` and `1` both normalized to `1` (per-event delivery).
    pub fn effective_batch_cap(&self) -> usize {
        self.batch_cap.max(1)
    }
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            max_steps: 2_000_000_000,
            quantum: 64,
            seed: 0x5eed,
            racy_delivery: false,
            buffer_cap: 64,
            batch_cap: 256,
        }
    }
}

/// Result of a successful run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Return value of `main`.
    pub ret: Option<Value>,
    /// Output of `print` calls, in execution order.
    pub printed: Vec<String>,
    /// Total executed instructions across all threads.
    pub steps: u64,
    /// Number of threads that existed (including main).
    pub threads: u32,
}

/// Runtime failures.
#[derive(Debug, Clone, PartialEq)]
pub enum RuntimeError {
    /// The module has no `main` function.
    NoMain,
    /// A call resolved to nothing.
    UnknownFunction(String),
    /// Array index out of bounds.
    OutOfBounds { line: u32, var: String, index: i64 },
    /// Integer division or remainder by zero.
    DivByZero { line: u32 },
    /// All live threads are blocked.
    Deadlock,
    /// `max_steps` exceeded.
    StepLimit,
    /// `unlock` of a lock not held by the calling thread.
    BadUnlock { line: u32 },
    /// `lock` re-acquired by its holder.
    RecursiveLock { line: u32 },
    /// `join` of an unknown thread id.
    BadJoin { line: u32 },
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::NoMain => write!(f, "no `main` function"),
            RuntimeError::UnknownFunction(n) => write!(f, "unknown function `{n}`"),
            RuntimeError::OutOfBounds { line, var, index } => {
                write!(f, "line {line}: `{var}[{index}]` out of bounds")
            }
            RuntimeError::DivByZero { line } => write!(f, "line {line}: division by zero"),
            RuntimeError::Deadlock => write!(f, "deadlock: all threads blocked"),
            RuntimeError::StepLimit => write!(f, "step limit exceeded"),
            RuntimeError::BadUnlock { line } => write!(f, "line {line}: unlock of unheld lock"),
            RuntimeError::RecursiveLock { line } => {
                write!(f, "line {line}: recursive lock acquisition")
            }
            RuntimeError::BadJoin { line } => write!(f, "line {line}: join of unknown thread"),
        }
    }
}

impl std::error::Error for RuntimeError {}

#[derive(Debug, Clone, Copy, PartialEq)]
enum TState {
    Ready,
    BlockedJoin(u32),
    BlockedLock(i64),
    Done,
}

#[derive(Debug)]
struct RegionState {
    region: u32,
    th_steps_at_enter: u64,
    iters: u64,
}

#[derive(Debug)]
struct Frame {
    func: usize,
    block: usize,
    pc: usize,
    regs: Vec<Value>,
    /// Word offset of this frame in the thread stack.
    base: usize,
    /// Register in the *caller's* frame receiving the return value.
    ret_dst: Option<RegId>,
    regions: Vec<RegionState>,
}

#[derive(Debug)]
struct Thread {
    mem: Vec<Value>,
    sp: usize,
    frames: Vec<Frame>,
    state: TState,
    buf: Vec<Event>,
    steps: u64,
    ret: Option<Value>,
}

enum Target {
    User(usize),
    Builtin(&'static str),
}

/// The interpreter. Construct with [`Interp::new`], execute with
/// [`Interp::run`]; or use the [`run`]/[`run_with_config`] helpers.
pub struct Interp<'p, S: Sink> {
    prog: &'p Program,
    sink: S,
    cfg: RunConfig,
    globals: Vec<Value>,
    threads: Vec<Thread>,
    locks: FxHashMap<i64, u32>,
    steps: u64,
    user_rng: u64,
    sched_rng: u64,
    printed: Vec<String>,
    targets: FxHashMap<String, Target>,
    /// Reusable event batch (deterministic mode, batching sinks).
    batch: Vec<Event>,
    /// Resolved once at construction: `batch_hint` of the sink, gated on
    /// the config. Checked on every emit, so it must be a plain bool.
    batching: bool,
}

/// Run a program with the default configuration.
pub fn run<S: Sink>(prog: &Program, sink: S) -> Result<RunResult, RuntimeError> {
    run_with_config(prog, sink, RunConfig::default())
}

/// Run a program with an explicit configuration.
pub fn run_with_config<S: Sink>(
    prog: &Program,
    sink: S,
    cfg: RunConfig,
) -> Result<RunResult, RuntimeError> {
    Interp::new(prog, sink, cfg)?.run()
}

const BUILTINS: &[&str] = &[
    "print", "sqrt", "sin", "cos", "exp", "log", "fabs", "floor", "ceil", "pow", "fmin", "fmax",
    "abs", "min", "max", "rand", "frand", "srand", "tid", "lock", "unlock", "join", "spawn",
];

impl<'p, S: Sink> Interp<'p, S> {
    /// Prepare a run: resolves call targets and sets up the main thread.
    pub fn new(prog: &'p Program, sink: S, cfg: RunConfig) -> Result<Self, RuntimeError> {
        let mut targets = FxHashMap::default();
        for (i, f) in prog.module.functions.iter().enumerate() {
            targets.insert(f.name.clone(), Target::User(i));
        }
        for b in BUILTINS {
            targets.entry(b.to_string()).or_insert(Target::Builtin(b));
        }
        let (main_id, _) = prog.module.function("main").ok_or(RuntimeError::NoMain)?;
        let batching = !cfg.racy_delivery && cfg.effective_batch_cap() >= 2 && sink.batch_hint();
        let mut it = Interp {
            prog,
            sink,
            cfg: cfg.clone(),
            globals: vec![Value::I64(0); prog.global_words],
            threads: Vec::new(),
            locks: FxHashMap::default(),
            steps: 0,
            user_rng: cfg.seed | 1,
            sched_rng: cfg.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1,
            printed: Vec::new(),
            targets,
            batch: Vec::with_capacity(if batching { cfg.batch_cap } else { 0 }),
            batching,
        };
        it.spawn_thread(main_id.index(), &[], None, 0);
        Ok(it)
    }

    fn sched_next(&mut self) -> u64 {
        let mut x = self.sched_rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.sched_rng = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn user_next(&mut self) -> u64 {
        let mut x = self.user_rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.user_rng = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn spawn_thread(&mut self, func: usize, args: &[Value], parent: Option<u32>, line: u32) -> u32 {
        let tid = self.threads.len() as u32;
        let mut th = Thread {
            mem: Vec::new(),
            sp: 0,
            frames: Vec::new(),
            state: TState::Ready,
            buf: Vec::new(),
            steps: 0,
            ret: None,
        };
        Self::push_frame_raw(self.prog, &mut th, func, args, None);
        self.threads.push(th);
        if let Some(p) = parent {
            self.emit(
                p as usize,
                Event::ThreadSpawn {
                    parent: p,
                    child: tid,
                    line,
                },
            );
            self.flush(p as usize);
        }
        let f = &self.prog.module.functions[func];
        self.emit(
            tid as usize,
            Event::FuncEnter {
                func: func as u32,
                line: f.start_line,
                thread: tid,
            },
        );
        tid
    }

    fn push_frame_raw(
        prog: &Program,
        th: &mut Thread,
        func: usize,
        args: &[Value],
        ret_dst: Option<RegId>,
    ) {
        let f = &prog.module.functions[func];
        let base = th.sp;
        let need = base + prog.frame_words[func];
        if th.mem.len() < need {
            th.mem.resize(need, Value::I64(0));
        }
        th.sp = need;
        // Bind arguments into parameter slots (register-style: no events).
        for (i, a) in args.iter().enumerate() {
            let off = prog.local_off[func][i] as usize;
            th.mem[base + off] = *a;
        }
        th.frames.push(Frame {
            func,
            block: 0,
            pc: 0,
            regs: vec![Value::I64(0); f.num_regs as usize],
            base,
            ret_dst,
            regions: Vec::new(),
        });
    }

    #[inline]
    fn emit(&mut self, t: usize, ev: Event) {
        if self.batching {
            self.batch.push(ev);
            if self.batch.len() >= self.cfg.batch_cap {
                self.flush_batch();
            }
        } else if self.cfg.racy_delivery {
            self.threads[t].buf.push(ev);
            if self.threads[t].buf.len() >= self.cfg.buffer_cap {
                self.flush(t);
            }
        } else {
            self.sink.event(&ev);
        }
    }

    /// Deliver and recycle the deterministic-mode batch buffer.
    fn flush_batch(&mut self) {
        if !self.batch.is_empty() {
            self.sink.events(&self.batch);
            self.batch.clear();
        }
    }

    fn flush(&mut self, t: usize) {
        if !self.cfg.racy_delivery {
            return;
        }
        // `sink` and `threads` are disjoint fields, so the delivery borrow
        // and the buffer borrow coexist; clearing recycles the allocation,
        // so steady-state racy profiling never allocates per flush.
        self.sink.events(&self.threads[t].buf);
        self.threads[t].buf.clear();
    }

    /// Execute the program to completion.
    pub fn run(mut self) -> Result<RunResult, RuntimeError> {
        let outcome = self.exec();
        // Deliver everything still buffered — also on failure, so sinks
        // observe the complete emitted prefix of the stream.
        for t in 0..self.threads.len() {
            self.flush(t);
        }
        self.flush_batch();
        outcome?;
        Ok(RunResult {
            ret: self.threads[0].ret,
            printed: self.printed,
            steps: self.steps,
            threads: self.threads.len() as u32,
        })
    }

    /// The scheduler loop.
    fn exec(&mut self) -> Result<(), RuntimeError> {
        let mut cur = 0usize;
        loop {
            if self.steps > self.cfg.max_steps {
                return Err(RuntimeError::StepLimit);
            }
            // Wake blocked threads whose condition now holds.
            for i in 0..self.threads.len() {
                match self.threads[i].state {
                    TState::BlockedJoin(t)
                        if self
                            .threads
                            .get(t as usize)
                            .map(|x| x.state == TState::Done)
                            .unwrap_or(false) =>
                    {
                        self.threads[i].state = TState::Ready;
                    }
                    TState::BlockedLock(l) if !self.locks.contains_key(&l) => {
                        self.threads[i].state = TState::Ready;
                    }
                    _ => {}
                }
            }
            // Round-robin pick.
            let n = self.threads.len();
            let mut picked = None;
            for k in 0..n {
                let t = (cur + k) % n;
                if self.threads[t].state == TState::Ready {
                    picked = Some(t);
                    break;
                }
            }
            let Some(t) = picked else {
                if self.threads.iter().all(|t| t.state == TState::Done) {
                    break;
                }
                return Err(RuntimeError::Deadlock);
            };
            let jitter = (self.sched_next() % self.cfg.quantum.max(1) as u64) as u32;
            let q = self.cfg.quantum + jitter;
            for _ in 0..q {
                if self.threads[t].state != TState::Ready {
                    break;
                }
                self.step(t)?;
            }
            cur = t + 1;
        }
        Ok(())
    }

    #[inline]
    fn reg(&self, t: usize, r: RegId) -> Value {
        self.threads[t].frames.last().unwrap().regs[r.index()]
    }

    #[inline]
    fn op_val(&self, t: usize, op: &Operand) -> Value {
        match op {
            Operand::Reg(r) => self.reg(t, *r),
            Operand::Const(v) => *v,
        }
    }

    #[inline]
    fn set_reg(&mut self, t: usize, r: RegId, v: Value) {
        *self.threads[t]
            .frames
            .last_mut()
            .unwrap()
            .regs
            .get_mut(r.index())
            .unwrap() = v;
    }

    /// Resolve a place to `(logical address, storage)` and check bounds.
    fn resolve(
        &self,
        t: usize,
        place: &Place,
        line: u32,
    ) -> Result<(u64, bool, usize, u32), RuntimeError> {
        // Returns (addr, is_global, storage index, symbol).
        let idx = match &place.index {
            Some(op) => self.op_val(t, op).as_i64(),
            None => 0,
        };
        let fr = self.threads[t].frames.last().unwrap();
        match place.var {
            VarRef::Global(g) => {
                let gv = &self.prog.module.globals[g.index()];
                if idx < 0 || idx as u64 >= gv.elems {
                    return Err(RuntimeError::OutOfBounds {
                        line,
                        var: gv.name.clone(),
                        index: idx,
                    });
                }
                let addr = self.prog.global_addr[g.index()] + idx as u64 * WORD;
                let slot = ((addr - GLOBAL_BASE) / WORD) as usize;
                Ok((addr, true, slot, self.prog.global_syms[g.index()]))
            }
            VarRef::Local(l) => {
                let lv = &self.prog.module.functions[fr.func].locals[l.index()];
                if idx < 0 || idx as u64 >= lv.elems {
                    return Err(RuntimeError::OutOfBounds {
                        line,
                        var: lv.name.clone(),
                        index: idx,
                    });
                }
                let word = fr.base as u64 + self.prog.local_off[fr.func][l.index()] + idx as u64;
                let addr = STACK_BASE + t as u64 * STACK_SPAN + word * WORD;
                Ok((
                    addr,
                    false,
                    word as usize,
                    self.prog.local_syms[fr.func][l.index()],
                ))
            }
        }
    }

    /// Execute a single instruction or terminator of thread `t`.
    fn step(&mut self, t: usize) -> Result<(), RuntimeError> {
        let prog = self.prog;
        let fr = self.threads[t].frames.last().unwrap();
        let func_idx = fr.func;
        let f = &prog.module.functions[func_idx];
        let block = &f.blocks[fr.block];
        let pc = fr.pc;
        self.steps += 1;
        self.threads[t].steps += 1;

        if pc >= block.instrs.len() {
            return self.terminator(t, func_idx, &block.term);
        }
        let instr = &block.instrs[pc];
        match instr {
            Instr::Load { dst, place, line } => {
                let (addr, is_global, slot, sym) = self.resolve(t, place, *line)?;
                let v = if is_global {
                    self.globals[slot]
                } else {
                    self.threads[t].mem[slot]
                };
                self.set_reg(t, *dst, v);
                let ts = self.steps;
                let op = prog.op_ids[func_idx][self.threads[t].frames.last().unwrap().block][pc];
                self.emit(
                    t,
                    Event::Mem(MemEvent {
                        is_write: false,
                        addr,
                        op,
                        line: *line,
                        var: sym,
                        thread: t as u32,
                        ts,
                    }),
                );
                self.advance(t);
            }
            Instr::Store { place, src, line } => {
                let v = self.op_val(t, src);
                let (addr, is_global, slot, sym) = self.resolve(t, place, *line)?;
                if is_global {
                    self.globals[slot] = v;
                } else {
                    self.threads[t].mem[slot] = v;
                }
                let ts = self.steps;
                let op = prog.op_ids[func_idx][self.threads[t].frames.last().unwrap().block][pc];
                self.emit(
                    t,
                    Event::Mem(MemEvent {
                        is_write: true,
                        addr,
                        op,
                        line: *line,
                        var: sym,
                        thread: t as u32,
                        ts,
                    }),
                );
                self.advance(t);
            }
            Instr::Bin {
                dst,
                op,
                lhs,
                rhs,
                line,
            } => {
                let a = self.op_val(t, lhs);
                let b = self.op_val(t, rhs);
                let v = bin_eval(*op, a, b, *line)?;
                self.set_reg(t, *dst, v);
                self.advance(t);
            }
            Instr::Un { dst, op, src, .. } => {
                let v = self.op_val(t, src);
                let r = match op {
                    UnOp::Neg => match v {
                        Value::I64(x) => Value::I64(x.wrapping_neg()),
                        Value::F64(x) => Value::F64(-x),
                    },
                    UnOp::Not => Value::I64(i64::from(!v.is_truthy())),
                    UnOp::ToF64 => Value::F64(v.as_f64()),
                    UnOp::ToI64 => Value::I64(v.as_i64()),
                };
                self.set_reg(t, *dst, r);
                self.advance(t);
            }
            Instr::Call {
                dst,
                func: callee,
                args,
                line,
            } => {
                let vals: Vec<Value> = args.iter().map(|a| self.op_val(t, a)).collect();
                // Targets map is only mutated during construction.
                match self.targets.get(callee.as_str()) {
                    Some(Target::User(fi)) => {
                        let fi = *fi;
                        self.advance(t); // resume after the call on return
                        let dst = *dst;
                        let th = &mut self.threads[t];
                        Self::push_frame_raw(prog, th, fi, &vals, dst);
                        let callee_f = &prog.module.functions[fi];
                        let start = callee_f.start_line;
                        self.emit(
                            t,
                            Event::FuncEnter {
                                func: fi as u32,
                                line: start,
                                thread: t as u32,
                            },
                        );
                    }
                    Some(Target::Builtin(name)) => {
                        let name = *name;
                        let dst = *dst;
                        let line = *line;
                        self.builtin(t, name, &vals, dst, line)?;
                    }
                    None => return Err(RuntimeError::UnknownFunction(callee.clone())),
                }
            }
            Instr::RegionEnter { region, line } => {
                let r = &f.regions[region.index()];
                let th_steps = self.threads[t].steps;
                self.threads[t]
                    .frames
                    .last_mut()
                    .unwrap()
                    .regions
                    .push(RegionState {
                        region: region.0,
                        th_steps_at_enter: th_steps,
                        iters: 0,
                    });
                self.emit(
                    t,
                    Event::RegionEnter {
                        func: func_idx as u32,
                        region: region.0,
                        kind: r.kind,
                        start_line: *line,
                        end_line: r.end_line,
                        thread: t as u32,
                    },
                );
                self.advance(t);
            }
            Instr::RegionExit { region, .. } => {
                self.pop_regions_through(t, func_idx, region.0);
                self.advance(t);
            }
            Instr::LoopIter { region, .. } => {
                // Abrupt exits (continue) may leave inner branch regions on
                // the stack; close them before opening the next iteration.
                self.pop_regions_above(t, func_idx, region.0);
                self.emit(
                    t,
                    Event::LoopIter {
                        func: func_idx as u32,
                        region: region.0,
                        thread: t as u32,
                    },
                );
                self.advance(t);
            }
            Instr::LoopBody { region, .. } => {
                let fr = self.threads[t].frames.last_mut().unwrap();
                if let Some(top) = fr.regions.last_mut() {
                    if top.region == region.0 {
                        top.iters += 1;
                    }
                }
                self.advance(t);
            }
        }
        Ok(())
    }

    #[inline]
    fn advance(&mut self, t: usize) {
        self.threads[t].frames.last_mut().unwrap().pc += 1;
    }

    /// Pop and emit exits for all regions strictly above `region` on the
    /// current frame's region stack.
    fn pop_regions_above(&mut self, t: usize, func_idx: usize, region: u32) {
        loop {
            let fr = self.threads[t].frames.last().unwrap();
            match fr.regions.last() {
                Some(top) if top.region != region => {
                    self.pop_one_region(t, func_idx);
                }
                _ => break,
            }
        }
    }

    /// Pop regions up to and including `region`, emitting exit events.
    fn pop_regions_through(&mut self, t: usize, func_idx: usize, region: u32) {
        self.pop_regions_above(t, func_idx, region);
        let fr = self.threads[t].frames.last().unwrap();
        if fr.regions.last().map(|r| r.region) == Some(region) {
            self.pop_one_region(t, func_idx);
        }
    }

    fn pop_one_region(&mut self, t: usize, func_idx: usize) {
        let th_steps = self.threads[t].steps;
        let fr = self.threads[t].frames.last_mut().unwrap();
        let st = fr.regions.pop().expect("region stack underflow");
        let frame_base = fr.base as u64;
        let rinfo = &self.prog.module.functions[func_idx].regions[st.region as usize];
        let ev = Event::RegionExit(RegionExitEvent {
            func: func_idx as u32,
            region: st.region,
            kind: rinfo.kind,
            start_line: rinfo.start_line,
            end_line: rinfo.end_line,
            iters: st.iters,
            dyn_instrs: th_steps - st.th_steps_at_enter,
            thread: t as u32,
        });
        self.emit(t, ev);
        // Region-scoped locals die here (variable lifetime analysis).
        let owned = rinfo.owned_locals.clone();
        for l in owned {
            let off = self.prog.local_off[func_idx][l.index()];
            let words = self.prog.module.functions[func_idx].locals[l.index()].elems;
            let addr = STACK_BASE + t as u64 * STACK_SPAN + (frame_base + off) * WORD;
            self.emit(
                t,
                Event::VarDealloc {
                    addr,
                    words,
                    thread: t as u32,
                },
            );
        }
    }

    fn terminator(
        &mut self,
        t: usize,
        func_idx: usize,
        term: &Terminator,
    ) -> Result<(), RuntimeError> {
        match term {
            Terminator::Jump(b) => {
                let fr = self.threads[t].frames.last_mut().unwrap();
                fr.block = b.index();
                fr.pc = 0;
            }
            Terminator::Branch {
                cond,
                then_bb,
                else_bb,
            } => {
                let v = self.op_val(t, cond);
                let fr = self.threads[t].frames.last_mut().unwrap();
                fr.block = if v.is_truthy() {
                    then_bb.index()
                } else {
                    else_bb.index()
                };
                fr.pc = 0;
            }
            Terminator::Return(v) => {
                let val = v.as_ref().map(|o| self.op_val(t, o));
                // Close any regions still open in this frame (return from
                // inside a loop).
                while !self.threads[t].frames.last().unwrap().regions.is_empty() {
                    self.pop_one_region(t, func_idx);
                }
                let f = &self.prog.module.functions[func_idx];
                let end_line = f.end_line;
                let fr = self.threads[t].frames.pop().unwrap();
                // The whole frame dies: one dealloc event for its range.
                let words = self.prog.frame_words[func_idx] as u64;
                if words > 0 {
                    let addr = STACK_BASE + t as u64 * STACK_SPAN + fr.base as u64 * WORD;
                    self.emit(
                        t,
                        Event::VarDealloc {
                            addr,
                            words,
                            thread: t as u32,
                        },
                    );
                }
                self.emit(
                    t,
                    Event::FuncExit {
                        func: func_idx as u32,
                        line: end_line,
                        thread: t as u32,
                    },
                );
                self.threads[t].sp = fr.base;
                if self.threads[t].frames.is_empty() {
                    self.threads[t].state = TState::Done;
                    self.threads[t].ret = val;
                    self.emit(t, Event::ThreadEnd { thread: t as u32 });
                    self.flush(t);
                } else if let (Some(dst), Some(v)) = (fr.ret_dst, val) {
                    self.set_reg(t, dst, v);
                }
            }
            Terminator::Unreachable => unreachable!("verified IR has no unreachable terminators"),
        }
        Ok(())
    }

    fn builtin(
        &mut self,
        t: usize,
        name: &str,
        args: &[Value],
        dst: Option<RegId>,
        line: u32,
    ) -> Result<(), RuntimeError> {
        let mut result: Option<Value> = None;
        match name {
            "print" => {
                let s = args
                    .iter()
                    .map(|v| v.to_string())
                    .collect::<Vec<_>>()
                    .join(" ");
                self.printed.push(s);
            }
            "sqrt" => result = Some(Value::F64(args[0].as_f64().sqrt())),
            "sin" => result = Some(Value::F64(args[0].as_f64().sin())),
            "cos" => result = Some(Value::F64(args[0].as_f64().cos())),
            "exp" => result = Some(Value::F64(args[0].as_f64().exp())),
            "log" => result = Some(Value::F64(args[0].as_f64().ln())),
            "fabs" => result = Some(Value::F64(args[0].as_f64().abs())),
            "floor" => result = Some(Value::F64(args[0].as_f64().floor())),
            "ceil" => result = Some(Value::F64(args[0].as_f64().ceil())),
            "pow" => result = Some(Value::F64(args[0].as_f64().powf(args[1].as_f64()))),
            "fmin" => result = Some(Value::F64(args[0].as_f64().min(args[1].as_f64()))),
            "fmax" => result = Some(Value::F64(args[0].as_f64().max(args[1].as_f64()))),
            "abs" => result = Some(Value::I64(args[0].as_i64().wrapping_abs())),
            "min" => result = Some(Value::I64(args[0].as_i64().min(args[1].as_i64()))),
            "max" => result = Some(Value::I64(args[0].as_i64().max(args[1].as_i64()))),
            "rand" => {
                let v = (self.user_next() >> 33) as i64;
                result = Some(Value::I64(v));
            }
            "frand" => {
                let v = (self.user_next() >> 11) as f64 / (1u64 << 53) as f64;
                result = Some(Value::F64(v));
            }
            "srand" => {
                self.user_rng = (args[0].as_i64() as u64) | 1;
            }
            "tid" => result = Some(Value::I64(t as i64)),
            "spawn" => {
                let fi = args[0].as_i64() as usize;
                let child = self.spawn_thread(fi, &args[1..], Some(t as u32), line);
                result = Some(Value::I64(child as i64));
            }
            "join" => {
                let target = args[0].as_i64();
                if target < 0 || target as usize >= self.threads.len() {
                    return Err(RuntimeError::BadJoin { line });
                }
                if self.threads[target as usize].state != TState::Done {
                    self.threads[t].state = TState::BlockedJoin(target as u32);
                    return Ok(()); // do not advance; retried on wake
                }
                self.emit(
                    t,
                    Event::ThreadJoin {
                        thread: t as u32,
                        target: target as u32,
                        line,
                    },
                );
                self.flush(t);
            }
            "lock" => {
                let id = args[0].as_i64();
                match self.locks.get(&id) {
                    None => {
                        self.locks.insert(id, t as u32);
                        self.emit(
                            t,
                            Event::LockAcquire {
                                id,
                                thread: t as u32,
                                line,
                            },
                        );
                    }
                    Some(holder) if *holder == t as u32 => {
                        return Err(RuntimeError::RecursiveLock { line })
                    }
                    Some(_) => {
                        self.threads[t].state = TState::BlockedLock(id);
                        return Ok(()); // do not advance; retried on wake
                    }
                }
            }
            "unlock" => {
                let id = args[0].as_i64();
                if self.locks.get(&id) != Some(&(t as u32)) {
                    return Err(RuntimeError::BadUnlock { line });
                }
                self.emit(
                    t,
                    Event::LockRelease {
                        id,
                        thread: t as u32,
                        line,
                    },
                );
                self.flush(t); // release: make everything visible
                self.locks.remove(&id);
            }
            other => return Err(RuntimeError::UnknownFunction(other.to_string())),
        }
        if let (Some(d), Some(v)) = (dst, result) {
            self.set_reg(t, d, v);
        }
        self.advance(t);
        Ok(())
    }
}

fn bin_eval(op: BinOp, a: Value, b: Value, line: u32) -> Result<Value, RuntimeError> {
    use BinOp::*;
    let float = matches!(a, Value::F64(_)) || matches!(b, Value::F64(_));
    Ok(match op {
        Add | Sub | Mul | Div if float => {
            let (x, y) = (a.as_f64(), b.as_f64());
            Value::F64(match op {
                Add => x + y,
                Sub => x - y,
                Mul => x * y,
                Div => x / y,
                _ => unreachable!(),
            })
        }
        Add => Value::I64(a.as_i64().wrapping_add(b.as_i64())),
        Sub => Value::I64(a.as_i64().wrapping_sub(b.as_i64())),
        Mul => Value::I64(a.as_i64().wrapping_mul(b.as_i64())),
        Div => {
            let d = b.as_i64();
            if d == 0 {
                return Err(RuntimeError::DivByZero { line });
            }
            Value::I64(a.as_i64().wrapping_div(d))
        }
        Rem => {
            let d = b.as_i64();
            if d == 0 {
                return Err(RuntimeError::DivByZero { line });
            }
            Value::I64(a.as_i64().wrapping_rem(d))
        }
        And => Value::I64(a.as_i64() & b.as_i64()),
        Or => Value::I64(a.as_i64() | b.as_i64()),
        Xor => Value::I64(a.as_i64() ^ b.as_i64()),
        Shl => Value::I64(a.as_i64().wrapping_shl(b.as_i64() as u32 & 63)),
        Shr => Value::I64(a.as_i64().wrapping_shr(b.as_i64() as u32 & 63)),
        Eq | Ne | Lt | Le | Gt | Ge => {
            let r = if float {
                let (x, y) = (a.as_f64(), b.as_f64());
                match op {
                    Eq => x == y,
                    Ne => x != y,
                    Lt => x < y,
                    Le => x <= y,
                    Gt => x > y,
                    Ge => x >= y,
                    _ => unreachable!(),
                }
            } else {
                let (x, y) = (a.as_i64(), b.as_i64());
                match op {
                    Eq => x == y,
                    Ne => x != y,
                    Lt => x < y,
                    Le => x <= y,
                    Gt => x > y,
                    Ge => x >= y,
                    _ => unreachable!(),
                }
            };
            Value::from(r)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{NullSink, RecordingSink};

    fn exec(src: &str) -> RunResult {
        let m = lang::compile(src, "t").unwrap();
        let p = Program::new(m);
        run(&p, NullSink).unwrap()
    }

    fn exec_rec(src: &str) -> (RunResult, Vec<Event>) {
        let m = lang::compile(src, "t").unwrap();
        let p = Program::new(m);
        let mut sink = RecordingSink::default();
        let r = run(&p, &mut sink).unwrap();
        (r, sink.events)
    }

    #[test]
    fn loop_sum() {
        let r = exec(
            "fn main() -> int {
                int s = 0;
                for (int i = 0; i < 10; i = i + 1) { s = s + i; }
                return s;
            }",
        );
        assert_eq!(r.ret, Some(Value::I64(45)));
    }

    #[test]
    fn recursion_factorial() {
        let r = exec(
            "fn fac(int n) -> int {
                if (n <= 1) { return 1; }
                return n * fac(n - 1);
            }
            fn main() -> int { return fac(6); }",
        );
        assert_eq!(r.ret, Some(Value::I64(720)));
    }

    #[test]
    fn global_array_ops() {
        let r = exec(
            "global int a[8];
            fn main() -> int {
                for (int i = 0; i < 8; i = i + 1) { a[i] = i * i; }
                int s = 0;
                for (int i = 0; i < 8; i = i + 1) { s += a[i]; }
                return s;
            }",
        );
        assert_eq!(r.ret, Some(Value::I64(140)));
    }

    #[test]
    fn float_math() {
        let r = exec(
            "fn main() -> float {
                float x = 2.0;
                return sqrt(x * 8.0);
            }",
        );
        assert_eq!(r.ret, Some(Value::F64(4.0)));
    }

    #[test]
    fn print_collects_output() {
        let r = exec("fn main() { print(1, 2); print(3); }");
        assert_eq!(r.printed, vec!["1 2", "3"]);
    }

    #[test]
    fn while_break_continue() {
        let r = exec(
            "fn main() -> int {
                int i = 0; int s = 0;
                while (1) {
                    i = i + 1;
                    if (i > 10) { break; }
                    if (i % 2 == 0) { continue; }
                    s += i;
                }
                return s;
            }",
        );
        assert_eq!(r.ret, Some(Value::I64(25))); // 1+3+5+7+9
    }

    #[test]
    fn spawn_join_with_locks() {
        let r = exec(
            "global int counter;
            fn worker(int n) {
                for (int i = 0; i < n; i = i + 1) {
                    lock(1);
                    counter += 1;
                    unlock(1);
                }
            }
            fn main() -> int {
                int t1 = spawn(worker, 50);
                int t2 = spawn(worker, 50);
                join(t1);
                join(t2);
                return counter;
            }",
        );
        assert_eq!(r.ret, Some(Value::I64(100)));
        assert_eq!(r.threads, 3);
    }

    #[test]
    fn loop_iteration_count_in_region_exit() {
        let (_, evs) = exec_rec(
            "fn main() {
                int s = 0;
                for (int i = 0; i < 7; i = i + 1) { s += i; }
            }",
        );
        let iters = evs
            .iter()
            .find_map(|e| match e {
                Event::RegionExit(x) if x.kind == mir::RegionKind::Loop => Some(x.iters),
                _ => None,
            })
            .unwrap();
        assert_eq!(iters, 7);
    }

    #[test]
    fn mem_events_have_names_and_lines() {
        let m = lang::compile("global int g;\nfn main() { g = 4; int x = g; }", "t").unwrap();
        let p = Program::new(m);
        let mut sink = RecordingSink::default();
        run(&p, &mut sink).unwrap();
        let mems: Vec<&MemEvent> = sink
            .events
            .iter()
            .filter_map(|e| match e {
                Event::Mem(m) => Some(m),
                _ => None,
            })
            .collect();
        assert_eq!(mems.len(), 3); // store g, load g, store x
        assert!(mems[0].is_write);
        assert_eq!(p.symbol(mems[0].var), "g");
        assert_eq!(mems[0].line, 2);
        assert!(!mems[1].is_write);
        assert_eq!(p.symbol(mems[2].var), "x");
    }

    #[test]
    fn frame_dealloc_reuses_addresses() {
        let (_, evs) = exec_rec(
            "fn leaf() -> int { int local = 3; return local; }
            fn main() { int a = leaf(); int b = leaf(); }",
        );
        // The two calls to leaf() must produce writes to the same address
        // (stack reuse) with a dealloc in between.
        let writes: Vec<u64> = evs
            .iter()
            .filter_map(|e| match e {
                Event::Mem(m) if m.is_write && m.addr >= STACK_BASE => Some(m.addr),
                _ => None,
            })
            .collect();
        let deallocs = evs
            .iter()
            .filter(|e| matches!(e, Event::VarDealloc { .. }))
            .count();
        assert!(deallocs >= 2);
        // `local` written twice at the same stack slot.
        let mut counts = std::collections::HashMap::new();
        for w in writes {
            *counts.entry(w).or_insert(0) += 1;
        }
        assert!(counts.values().any(|&c| c >= 2));
    }

    #[test]
    fn deadlock_detected() {
        let m = lang::compile(
            "fn main() { lock(1); int t = spawn(helper, 0); join(t); }
            fn helper(int x) { lock(1); unlock(1); }",
            "t",
        )
        .unwrap();
        let p = Program::new(m);
        assert_eq!(run(&p, NullSink).unwrap_err(), RuntimeError::Deadlock);
    }

    #[test]
    fn div_by_zero_detected() {
        let m = lang::compile("fn main() -> int { int z = 0; return 4 / z; }", "t").unwrap();
        let p = Program::new(m);
        assert!(matches!(
            run(&p, NullSink).unwrap_err(),
            RuntimeError::DivByZero { .. }
        ));
    }

    #[test]
    fn out_of_bounds_detected() {
        let m = lang::compile("global int a[4]; fn main() { int i = 9; a[i] = 1; }", "t").unwrap();
        let p = Program::new(m);
        assert!(matches!(
            run(&p, NullSink).unwrap_err(),
            RuntimeError::OutOfBounds { .. }
        ));
    }

    #[test]
    fn deterministic_across_runs() {
        let src = "global int c;
            fn w(int n) { for (int i = 0; i < n; i = i + 1) { lock(0); c += 1; unlock(0); } }
            fn main() -> int { int a = spawn(w, 20); int b = spawn(w, 30); join(a); join(b); return c; }";
        let m = lang::compile(src, "t").unwrap();
        let p = Program::new(m);
        let mut s1 = RecordingSink::default();
        let mut s2 = RecordingSink::default();
        run(&p, &mut s1).unwrap();
        run(&p, &mut s2).unwrap();
        assert_eq!(s1.events, s2.events, "same seed must give identical traces");
    }

    #[test]
    fn racy_delivery_preserves_per_thread_order() {
        let src = "global int c;
            fn w(int n) { for (int i = 0; i < n; i = i + 1) { c += 1; } }
            fn main() { int a = spawn(w, 10); int b = spawn(w, 10); join(a); join(b); }";
        let m = lang::compile(src, "t").unwrap();
        let p = Program::new(m);
        let mut sink = RecordingSink::default();
        let cfg = RunConfig {
            racy_delivery: true,
            buffer_cap: 8,
            ..Default::default()
        };
        run_with_config(&p, &mut sink, cfg).unwrap();
        // Per-thread timestamps must be monotone even if global order is not.
        let mut last: HashMap<u32, u64> = HashMap::new();
        for e in &sink.events {
            if let Event::Mem(m) = e {
                let prev = last.insert(m.thread, m.ts);
                if let Some(p) = prev {
                    assert!(m.ts > p, "per-thread order violated");
                }
            }
        }
    }

    #[test]
    fn batch_cap_below_two_normalizes_to_per_event_delivery() {
        assert_eq!(RunConfig::default().effective_batch_cap(), 256);
        for cap in [0usize, 1] {
            let cfg = RunConfig {
                batch_cap: cap,
                ..Default::default()
            };
            assert_eq!(cfg.effective_batch_cap(), 1, "cap {cap}");
        }

        // 0 and 1 must behave identically: per-event delivery, no batching.
        struct Count {
            singles: usize,
            batches: usize,
        }
        impl Sink for Count {
            fn event(&mut self, _ev: &Event) {
                self.singles += 1;
            }
            fn events(&mut self, _evs: &[Event]) {
                self.batches += 1;
            }
        }
        let p = Program::new(
            lang::compile(
                "fn main() { int s = 0; for (int i = 0; i < 8; i = i + 1) { s += i; } }",
                "t",
            )
            .unwrap(),
        );
        let deliver = |cap: usize| {
            let mut c = Count {
                singles: 0,
                batches: 0,
            };
            run_with_config(
                &p,
                &mut c,
                RunConfig {
                    batch_cap: cap,
                    ..Default::default()
                },
            )
            .unwrap();
            (c.singles, c.batches)
        };
        let zero = deliver(0);
        let one = deliver(1);
        assert_eq!(zero, one, "batch_cap 0 and 1 must be equivalent");
        assert!(zero.0 > 0, "per-event path must be used");
        assert_eq!(zero.1, 0, "no batch delivery below cap 2");
        let (singles, batches) = deliver(2);
        assert_eq!(singles, 0, "cap 2 must batch everything");
        assert!(batches > 0);
    }

    #[test]
    fn nested_call_in_loop_regions_balanced() {
        let (_, evs) = exec_rec(
            "fn g(int x) -> int { if (x > 0) { return x; } return 0 - x; }
            fn main() {
                int s = 0;
                for (int i = 0; i < 5; i = i + 1) { s += g(i - 2); }
            }",
        );
        let enters = evs
            .iter()
            .filter(|e| matches!(e, Event::RegionEnter { .. }))
            .count();
        let exits = evs
            .iter()
            .filter(|e| matches!(e, Event::RegionExit(_)))
            .count();
        assert_eq!(enters, exits, "region events must balance");
    }
}
