//! The affine skip tier's decode/plan step: compile eligible loops into
//! straight-line *loop plans* the machine can replay without dispatching.
//!
//! The paper's Section 5 answer to the profiling slowdown is to stop
//! paying full interpretation cost for repeatedly executed code whose
//! memory behavior is already known. The static pass (PR 7) proves per-op
//! affine facts and loop trip counts; this module turns them into a
//! runtime fast path:
//!
//! - **Eligibility** (`compile_plans`): a loop qualifies when its
//!   iteration cycle — every op executed between one [`HotOp::LoopIter`]
//!   and the next — is straight-line (no calls, no region entry/exit, no
//!   inner loop markers, at most one branch: the header's exit test), its
//!   static trip count is known, and *every* load/store in the cycle is
//!   classified affine by the static pass. Division (`BinChecked`) also
//!   disqualifies: its trap needs the cold line table mid-cycle.
//! - **Plan** ([`LoopPlan`]): the cycle pre-expanded into a flat array of
//!   [`PlanStep`]s — fused superinstructions broken back into their
//!   constituents, each step carrying its own pc and (for memory steps) an
//!   embedded [`MemRef`] copy. The machine executes the array in a tight
//!   loop ([`crate::machine`]), bypassing `run_slice` dispatch entirely.
//! - **Identity**: every step charges exactly one logical step and memory
//!   steps emit through the normal event path, so events, op ids,
//!   timestamps, batching, and budget accounting are bit-identical to full
//!   interpretation — the same invariant the superinstruction peephole
//!   keeps, pinned by `tests/affine_skip.rs`. Because fused ops expand to
//!   the same constituents the unfused stream holds, the compiled plan is
//!   identical under both decode modes.
//! - **Fallback**: the runtime re-checks nothing it cannot afford to — the
//!   header branch is evaluated live every cycle (the trip count is never
//!   *trusted*, only used as an eligibility policy), a budget-exhausted
//!   cycle parks the pc at the first unexecuted step's own slot and
//!   resumes interpreted, and any violated engagement precondition just
//!   skips the plan. Soundness therefore never depends on the static
//!   classifier.

use crate::code::{FuncCode, HotOp, MemRef, Opnd};
use mir::{BinOp, UnOp};

/// Hard cap on plan length in constituent steps: a cycle longer than this
/// would not be loop-shaped hot code, and the cap bounds trace time on
/// pathological (hand-built) streams.
const MAX_PLAN_STEPS: usize = 4096;

/// One pre-expanded constituent of a loop cycle.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanOp {
    /// A load constituent; `mem` is an embedded copy of the pool entry.
    Load {
        /// Destination register.
        dst: u32,
        /// Memory reference (copy of the slot's pool entry).
        mem: MemRef,
    },
    /// A store constituent.
    Store {
        /// Value operand.
        src: Opnd,
        /// Memory reference (copy of the slot's pool entry).
        mem: MemRef,
    },
    /// A non-trapping binary op.
    Bin {
        /// Operator (never `Div`/`Rem`).
        op: BinOp,
        /// Destination register.
        dst: u32,
        /// Left operand.
        lhs: Opnd,
        /// Right operand.
        rhs: Opnd,
    },
    /// A unary op.
    Un {
        /// Operator.
        op: UnOp,
        /// Destination register.
        dst: u32,
        /// Operand.
        src: Opnd,
    },
    /// A [`HotOp::LoopBody`] marker: bump the executed-iteration count of
    /// the region on top of the frame's region stack when it matches.
    Body {
        /// Region id within the function.
        region: u32,
    },
    /// A charged no-op: an unconditional jump whose control transfer is
    /// implicit in the straight-line step order.
    Skip,
    /// The cycle's single branch — the loop's live exit test. When the
    /// condition's truthiness equals `cont_on_true`, execution continues
    /// with the next step; otherwise the plan returns control to the
    /// interpreter at `exit_pc`.
    Exit {
        /// Condition operand.
        cond: Opnd,
        /// Truthiness that keeps the loop running.
        cont_on_true: bool,
        /// Absolute pc interpretation resumes at on exit.
        exit_pc: u32,
    },
}

/// One step of a loop plan: the operation plus the pc of the slot it came
/// from. The pc is the park/trap point — the slot still holds the plain
/// (or head) op, so suspending there and resuming interpreted is exactly
/// the fused-op mid-sequence park.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanStep {
    /// Absolute pc of the constituent's own slot.
    pub pc: u32,
    /// The operation.
    pub op: PlanOp,
}

/// A compiled loop cycle: everything the machine needs to replay full
/// iterations of one eligible loop without dispatching.
#[derive(Debug, Clone, PartialEq)]
pub struct LoopPlan {
    /// The loop's region id.
    pub region: u32,
    /// The pc of the [`HotOp::LoopIter`] slot the plan is anchored at.
    pub trigger: u32,
    /// The cycle's constituents, starting at `trigger + 1`. The
    /// [`PlanOp::Exit`] step, when the loop has one, sits wherever the
    /// header's branch sat.
    pub steps: Box<[PlanStep]>,
    /// The statically proven trip count (eligibility evidence; the runtime
    /// never trusts it — the exit test stays live).
    pub trip_count: u64,
    /// Memory accesses per cycle (loads + stores).
    pub mem_ops: u32,
}

/// Compile the skip-tier plans for one decoded function. `facts` is the
/// whole-program per-op fact table (indexed by static op id); `trips` maps
/// this function's region ids to statically known loop trip counts.
pub(crate) fn compile_plans(
    code: &mut FuncCode,
    facts: &[analysis::AccessFact],
    trips: &[Option<u64>],
) {
    let mut plans = Vec::new();
    let mut idx = Vec::new();
    for pc in 0..code.hot.len() {
        let HotOp::LoopIter { region } = code.hot[pc] else {
            continue;
        };
        let Some(Some(trip)) = trips.get(region as usize).copied() else {
            continue;
        };
        let Some(steps) = trace_cycle(code, pc as u32) else {
            continue;
        };
        let affine = |m: &MemRef| {
            facts
                .get(m.op_id as usize)
                .map(|f| f.affine)
                .unwrap_or(false)
        };
        let all_affine = steps.iter().all(|s| match &s.op {
            PlanOp::Load { mem, .. } | PlanOp::Store { mem, .. } => affine(mem),
            _ => true,
        });
        if !all_affine {
            continue;
        }
        let mem_ops = steps
            .iter()
            .filter(|s| matches!(s.op, PlanOp::Load { .. } | PlanOp::Store { .. }))
            .count() as u32;
        idx.push((pc as u32, plans.len() as u32));
        plans.push(LoopPlan {
            region,
            trigger: pc as u32,
            steps: steps.into_boxed_slice(),
            trip_count: trip,
            mem_ops,
        });
    }
    // `idx` is built in increasing pc order, so it is already sorted for
    // the binary search in `FuncCode::plan_at`.
    code.plans = plans.into_boxed_slice();
    code.plan_idx = idx.into_boxed_slice();
}

/// Trace one full cycle of the loop anchored at the `LoopIter` slot
/// `trigger`: the constituent steps executed from `trigger + 1` until
/// control returns to `trigger`. Returns `None` when the cycle is not
/// straight-line replayable (calls, inner loops, region traffic, trapping
/// bins, more than one branch, or over-long traces).
fn trace_cycle(code: &FuncCode, trigger: u32) -> Option<Vec<PlanStep>> {
    // The single branch splits the cycle: one successor continues toward
    // the trigger, the other leaves the loop. Which is which is not known
    // statically, so try continuing through the then-successor first, then
    // through the else-successor.
    walk(code, trigger, true).or_else(|| walk(code, trigger, false))
}

/// Walk the cycle taking the `take_then` successor at the (single) branch.
/// Succeeds iff the walk returns to `trigger` within the step cap using
/// only replayable ops.
fn walk(code: &FuncCode, trigger: u32, take_then: bool) -> Option<Vec<PlanStep>> {
    let mut steps: Vec<PlanStep> = Vec::new();
    let mut pc = trigger as usize + 1;
    let mut branch_seen = false;
    let jump = |pc: usize, delta: i32| (pc as i64 + delta as i64) as usize;
    while pc != trigger as usize {
        if steps.len() >= MAX_PLAN_STEPS {
            return None;
        }
        let at = pc as u32;
        // A branch constituent: record the live exit test, continue along
        // the chosen successor. Only one branch may appear in the cycle.
        let branch = |steps: &mut Vec<PlanStep>,
                      branch_seen: &mut bool,
                      bpc: usize,
                      cond: Opnd,
                      then_delta: i32,
                      else_delta: i32|
         -> Option<usize> {
            if *branch_seen {
                return None;
            }
            *branch_seen = true;
            let (cont, exit) = if take_then {
                (then_delta, else_delta)
            } else {
                (else_delta, then_delta)
            };
            steps.push(PlanStep {
                pc: bpc as u32,
                op: PlanOp::Exit {
                    cond,
                    cont_on_true: take_then,
                    exit_pc: jump(bpc, exit) as u32,
                },
            });
            Some(jump(bpc, cont))
        };
        match *code.hot.get(pc)? {
            HotOp::Load { dst, mem } => {
                steps.push(PlanStep {
                    pc: at,
                    op: PlanOp::Load {
                        dst,
                        mem: code.mems[mem as usize],
                    },
                });
                pc += 1;
            }
            HotOp::Store { mem, src } => {
                steps.push(PlanStep {
                    pc: at,
                    op: PlanOp::Store {
                        src,
                        mem: code.mems[mem as usize],
                    },
                });
                pc += 1;
            }
            HotOp::Bin { op, dst, lhs, rhs } => {
                steps.push(PlanStep {
                    pc: at,
                    op: PlanOp::Bin { op, dst, lhs, rhs },
                });
                pc += 1;
            }
            HotOp::Un { op, dst, src } => {
                steps.push(PlanStep {
                    pc: at,
                    op: PlanOp::Un { op, dst, src },
                });
                pc += 1;
            }
            HotOp::LoopBody { region } => {
                steps.push(PlanStep {
                    pc: at,
                    op: PlanOp::Body { region },
                });
                pc += 1;
            }
            HotOp::Jump { delta } => {
                steps.push(PlanStep {
                    pc: at,
                    op: PlanOp::Skip,
                });
                pc = jump(pc, delta);
            }
            HotOp::Branch {
                cond,
                then_delta,
                else_delta,
            } => {
                pc = branch(
                    &mut steps,
                    &mut branch_seen,
                    pc,
                    cond,
                    then_delta,
                    else_delta,
                )?;
            }
            HotOp::CmpBranch { fused } => {
                let cb = code.cmp_branches[fused as usize];
                steps.push(PlanStep {
                    pc: at,
                    op: PlanOp::Bin {
                        op: cb.op,
                        dst: cb.dst,
                        lhs: cb.lhs,
                        rhs: cb.rhs,
                    },
                });
                pc = branch(
                    &mut steps,
                    &mut branch_seen,
                    pc + 1,
                    cb.cond,
                    cb.then_delta,
                    cb.else_delta,
                )?;
            }
            HotOp::LoadCmpBranch { fused } => {
                let c = code.load_cmp_branches[fused as usize];
                steps.push(PlanStep {
                    pc: at,
                    op: PlanOp::Load {
                        dst: c.load_dst,
                        mem: c.load,
                    },
                });
                steps.push(PlanStep {
                    pc: at + 1,
                    op: PlanOp::Bin {
                        op: c.cmp.op,
                        dst: c.cmp.dst,
                        lhs: c.cmp.lhs,
                        rhs: c.cmp.rhs,
                    },
                });
                pc = branch(
                    &mut steps,
                    &mut branch_seen,
                    pc + 2,
                    c.cmp.cond,
                    c.cmp.then_delta,
                    c.cmp.else_delta,
                )?;
            }
            HotOp::Rmw { fused } | HotOp::RmwJump { fused, .. } => {
                let r = code.rmws[fused as usize];
                steps.push(PlanStep {
                    pc: at,
                    op: PlanOp::Load {
                        dst: r.load_dst,
                        mem: r.load,
                    },
                });
                steps.push(PlanStep {
                    pc: at + 1,
                    op: PlanOp::Bin {
                        op: r.op,
                        dst: r.bin_dst,
                        lhs: r.lhs,
                        rhs: r.rhs,
                    },
                });
                steps.push(PlanStep {
                    pc: at + 2,
                    op: PlanOp::Store {
                        src: r.store_src,
                        mem: r.store,
                    },
                });
                if let HotOp::RmwJump { delta, .. } = code.hot[pc] {
                    steps.push(PlanStep {
                        pc: at + 3,
                        op: PlanOp::Skip,
                    });
                    pc = jump(pc + 3, delta);
                } else {
                    pc += 3;
                }
            }
            HotOp::LoadRmw { fused } | HotOp::LoadRmwJump { fused, .. } => {
                let r = code.load_rmws[fused as usize];
                steps.push(PlanStep {
                    pc: at,
                    op: PlanOp::Load {
                        dst: r.load_dst,
                        mem: r.load,
                    },
                });
                steps.push(PlanStep {
                    pc: at + 1,
                    op: PlanOp::Load {
                        dst: r.rmw.load_dst,
                        mem: r.rmw.load,
                    },
                });
                steps.push(PlanStep {
                    pc: at + 2,
                    op: PlanOp::Bin {
                        op: r.rmw.op,
                        dst: r.rmw.bin_dst,
                        lhs: r.rmw.lhs,
                        rhs: r.rmw.rhs,
                    },
                });
                steps.push(PlanStep {
                    pc: at + 3,
                    op: PlanOp::Store {
                        src: r.rmw.store_src,
                        mem: r.rmw.store,
                    },
                });
                if let HotOp::LoadRmwJump { delta, .. } = code.hot[pc] {
                    steps.push(PlanStep {
                        pc: at + 4,
                        op: PlanOp::Skip,
                    });
                    pc = jump(pc + 4, delta);
                } else {
                    pc += 4;
                }
            }
            HotOp::LoadLoadBin { fused } => {
                let r = code.load_load_bins[fused as usize];
                steps.push(PlanStep {
                    pc: at,
                    op: PlanOp::Load {
                        dst: r.load_dst,
                        mem: r.load,
                    },
                });
                steps.push(PlanStep {
                    pc: at + 1,
                    op: PlanOp::Load {
                        dst: r.load2_dst,
                        mem: r.load2,
                    },
                });
                steps.push(PlanStep {
                    pc: at + 2,
                    op: PlanOp::Bin {
                        op: r.op,
                        dst: r.bin_dst,
                        lhs: r.lhs,
                        rhs: r.rhs,
                    },
                });
                pc += 3;
            }
            HotOp::LoadBin { fused } => {
                let r = code.load_bins[fused as usize];
                steps.push(PlanStep {
                    pc: at,
                    op: PlanOp::Load {
                        dst: r.load_dst,
                        mem: r.load,
                    },
                });
                steps.push(PlanStep {
                    pc: at + 1,
                    op: PlanOp::Bin {
                        op: r.op,
                        dst: r.bin_dst,
                        lhs: r.lhs,
                        rhs: r.rhs,
                    },
                });
                pc += 2;
            }
            // Everything else disqualifies the loop: calls (unbounded
            // effects), BinChecked (cold-table trap), region markers and
            // inner loop markers (nesting), returns, unreachable.
            _ => return None,
        }
    }
    Some(steps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DecodeConfig, Program};

    fn program(src: &str) -> Program {
        Program::new(lang::compile(src, "t").unwrap())
    }

    fn all_plans(p: &Program) -> Vec<&LoopPlan> {
        p.code().iter().flat_map(|c| c.plans.iter()).collect()
    }

    #[test]
    fn affine_counted_loop_compiles_to_a_plan() {
        let p = program(
            "global int a[16];
            global int s;
            fn main() {
                for (int i = 0; i < 16; i = i + 1) {
                    s = s + a[i];
                }
            }",
        );
        let plans = all_plans(&p);
        assert_eq!(plans.len(), 1, "exactly the one loop qualifies");
        let plan = plans[0];
        assert_eq!(plan.trip_count, 16);
        // Header: i load. Body: s load, i load (the index), a[i] load,
        // s store. Increment: i load, i store — 5 loads + 2 stores.
        assert_eq!(plan.mem_ops, 7, "plan: {:#?}", plan.steps);
        assert_eq!(
            plans[0]
                .steps
                .iter()
                .filter(|s| matches!(s.op, PlanOp::Exit { .. }))
                .count(),
            1,
            "exactly one live exit test"
        );
        // The plan is anchored at the LoopIter slot.
        assert!(matches!(
            p.code()[0].hot[plan.trigger as usize],
            HotOp::LoopIter { .. }
        ));
        assert!(p.code()[0].plan_at(plan.trigger).is_some());
        assert!(p.code()[0].plan_at(plan.trigger + 1).is_none());
    }

    #[test]
    fn plans_are_identical_with_fusion_on_and_off() {
        let src = "global int a[64];
            global int b[64];
            global int s;
            fn main() {
                for (int i = 0; i < 64; i = i + 1) {
                    b[i] = a[i] + 1;
                    s = s + a[i] * b[i];
                }
            }";
        let m = lang::compile(src, "t").unwrap();
        let fused = Program::new(m.clone());
        let unfused = Program::with_decode_config(m, DecodeConfig { fuse: false });
        for (f, u) in fused.code().iter().zip(unfused.code().iter()) {
            assert_eq!(f.plans, u.plans, "fusion must not change the plan");
            assert_eq!(f.plan_idx, u.plan_idx);
        }
        assert!(!all_plans(&fused).is_empty(), "the loop must qualify");
    }

    #[test]
    fn disqualifying_shapes_get_no_plan() {
        // A call in the body: unbounded effects.
        let call = program(
            "global int s;
            fn f(int x) -> int { return x + 1; }
            fn main() {
                for (int i = 0; i < 8; i = i + 1) { s = f(s); }
            }",
        );
        assert!(all_plans(&call).is_empty(), "calls disqualify");
        // Division in the body: the trap needs the cold line table.
        let div = program(
            "global int s;
            fn main() {
                for (int i = 1; i < 8; i = i + 1) { s = s / i; }
            }",
        );
        assert!(all_plans(&div).is_empty(), "BinChecked disqualifies");
        // An if in the body: a second branch in the cycle.
        let iffy = program(
            "global int s;
            fn main() {
                for (int i = 0; i < 8; i = i + 1) {
                    if (s < 100) { s = s + i; }
                }
            }",
        );
        assert!(all_plans(&iffy).is_empty(), "inner branches disqualify");
        // An unknown trip count: `while` on a computed bound.
        let unknown = program(
            "global int s;
            fn main() {
                int n = s + 8;
                int i = 0;
                while (i < n) { i = i + 1; }
            }",
        );
        assert!(all_plans(&unknown).is_empty(), "unknown trip disqualifies");
    }

    #[test]
    fn inner_loop_qualifies_outer_does_not() {
        let p = program(
            "global int a[64];
            fn main() {
                for (int i = 0; i < 8; i = i + 1) {
                    for (int j = 0; j < 8; j = j + 1) {
                        a[8 * i + j] = i + j;
                    }
                }
            }",
        );
        let plans = all_plans(&p);
        assert_eq!(
            plans.len(),
            1,
            "only the innermost cycle is straight-line: {:#?}",
            plans.iter().map(|p| p.trigger).collect::<Vec<_>>()
        );
        assert_eq!(plans[0].trip_count, 8);
    }
}
