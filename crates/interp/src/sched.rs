//! The run-queue scheduler: deterministic cooperative scheduling for
//! actors (green threads), shared by [`crate::machine`] and
//! [`crate::reference`].
//!
//! Scheduling used to live inside the interpreters as an ad-hoc
//! `Vec<Thread>` round-robin with a linear wake scan over every blocked
//! thread per slice — O(threads) per scheduling decision, and unable to
//! express blocking message-passing. This module extracts the policy into
//! one component both interpreters share:
//!
//! - a FIFO **ready queue** ([`Scheduler::pick`]/[`Scheduler::yield_back`])
//!   giving fair round-robin slices;
//! - typed **wait reasons** ([`WaitReason`]) with per-resource wait lists,
//!   so parking and waking are O(1) in the number of actors — a `join`
//!   wake touches only the join's waiters, an `unlock` only that lock's
//!   queue, a `send` only the receiver;
//! - `running`/`sleeping`/`dead` accounting (`live`, `peak_live`,
//!   [`Scheduler::blocked_actors`]) that makes deadlocks reportable with
//!   *who waits on what* instead of a bare error;
//! - the seeded slice-length jitter ([`Scheduler::next_quantum`]), moved
//!   here so both interpreters draw from the identical sequence.
//!
//! Determinism contract: every method is a pure function of the call
//! sequence and the seed. Wait lists wake in park order, the ready queue
//! is FIFO, and the jitter RNG is the same xorshift the old scheduler
//! used — so the machine and the reference interpreter, driving one
//! `Scheduler` each through identical call sequences, make identical
//! scheduling decisions and their event streams stay byte-comparable.

use fxhash::FxHashMap;
use std::collections::VecDeque;
use std::fmt;

/// Opaque actor (green thread) identifier: the index into the
/// interpreter's actor table. Thread ids and actor ids are the same
/// namespace — every thread is an actor with a mailbox.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ActorId(pub u32);

impl ActorId {
    /// The actor's index into per-actor tables.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ActorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Why a sleeping actor is parked — the typed wake reasons that replace
/// the old linear `BlockedJoin`/`BlockedLock` scans. Each variant has a
/// dedicated wait list keyed by the awaited resource, so the wake on the
/// resource's state change is O(waiters), not O(actors).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaitReason {
    /// `join(target)`: waiting for `target` to finish.
    Join(ActorId),
    /// `lock(id)`: waiting for the lock to be released.
    Lock(i64),
    /// `receive()`: waiting for a message in the actor's own mailbox.
    Receive,
    /// `send(target, …)`: waiting for capacity in `target`'s bounded
    /// mailbox.
    SendCap(ActorId),
}

impl fmt::Display for WaitReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WaitReason::Join(t) => write!(f, "join({t})"),
            WaitReason::Lock(l) => write!(f, "lock({l})"),
            WaitReason::Receive => write!(f, "receive()"),
            WaitReason::SendCap(t) => write!(f, "send to full mailbox of actor {t}"),
        }
    }
}

/// Lifecycle state of one actor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ActorState {
    /// Runnable: in the ready queue, or currently holding the slice.
    Ready,
    /// Parked on the contained reason; registered in that resource's wait
    /// list (except [`WaitReason::Receive`], whose wake target is the
    /// actor itself).
    Sleeping(WaitReason),
    /// Returned from its root frame. Terminal.
    Dead,
}

/// The deterministic run queue. See the module docs for the contract.
#[derive(Debug)]
pub struct Scheduler {
    /// Runnable actors in dispatch order. The actor holding the current
    /// slice is *not* in the queue (popped by [`Scheduler::pick`], pushed
    /// back by [`Scheduler::yield_back`] if still runnable).
    ready: VecDeque<ActorId>,
    state: Vec<ActorState>,
    /// Actors parked on `join` of the key, in park order.
    join_waiters: FxHashMap<u32, Vec<ActorId>>,
    /// Actors parked on `lock` of the key, in park order.
    lock_waiters: FxHashMap<i64, Vec<ActorId>>,
    /// Actors parked on `send` to the key's full mailbox, in park order.
    send_waiters: FxHashMap<u32, Vec<ActorId>>,
    /// Actors not yet dead (ready or sleeping).
    live: usize,
    /// High-water mark of `live`.
    peak_live: usize,
    /// Slice-length jitter RNG (xorshift, seeded).
    rng: u64,
}

impl Scheduler {
    /// A scheduler with no actors. `seed` drives only the slice-length
    /// jitter; the queue and wake orders are fully deterministic.
    pub fn new(seed: u64) -> Self {
        Scheduler {
            ready: VecDeque::new(),
            state: Vec::new(),
            join_waiters: FxHashMap::default(),
            lock_waiters: FxHashMap::default(),
            send_waiters: FxHashMap::default(),
            live: 0,
            peak_live: 0,
            rng: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1,
        }
    }

    /// Register a new actor, runnable at the back of the queue. Returns
    /// its id; ids are assigned densely in spawn order.
    pub fn spawn(&mut self) -> ActorId {
        let id = ActorId(self.state.len() as u32);
        self.state.push(ActorState::Ready);
        self.ready.push_back(id);
        self.live += 1;
        self.peak_live = self.peak_live.max(self.live);
        id
    }

    /// Take the next runnable actor off the queue, or `None` when nothing
    /// can run (all dead, or deadlock — distinguish with
    /// [`Scheduler::all_dead`]).
    pub fn pick(&mut self) -> Option<ActorId> {
        self.ready.pop_front()
    }

    /// Return the slice holder to the back of the queue if it is still
    /// runnable (it may have parked or died during its slice).
    pub fn yield_back(&mut self, a: ActorId) {
        if self.state[a.index()] == ActorState::Ready {
            self.ready.push_back(a);
        }
    }

    /// Is the actor runnable right now? The interpreters' slice loops
    /// check this after every blocking-capable operation.
    pub fn is_ready(&self, a: ActorId) -> bool {
        self.state[a.index()] == ActorState::Ready
    }

    /// Has the actor returned from its root frame?
    pub fn is_dead(&self, a: ActorId) -> bool {
        self.state[a.index()] == ActorState::Dead
    }

    /// Park the slice holder on `reason`, registering it in the
    /// resource's wait list. The caller must not `yield_back` a parked
    /// actor (it is woken by the resource's state change instead).
    pub fn park(&mut self, a: ActorId, reason: WaitReason) {
        debug_assert_eq!(self.state[a.index()], ActorState::Ready);
        self.state[a.index()] = ActorState::Sleeping(reason);
        match reason {
            WaitReason::Join(t) => self.join_waiters.entry(t.0).or_default().push(a),
            WaitReason::Lock(l) => self.lock_waiters.entry(l).or_default().push(a),
            WaitReason::SendCap(t) => self.send_waiters.entry(t.0).or_default().push(a),
            // The mailbox owner itself is the wake target; no list needed.
            WaitReason::Receive => {}
        }
    }

    /// Make a sleeping actor runnable again at the back of the queue.
    /// No-op for ready or dead actors, so wake notifications can be sent
    /// unconditionally.
    fn wake(&mut self, a: ActorId) {
        if matches!(self.state[a.index()], ActorState::Sleeping(_)) {
            self.state[a.index()] = ActorState::Ready;
            self.ready.push_back(a);
        }
    }

    /// The actor returned from its root frame: mark it dead and wake all
    /// its joiners (they retry `join`, which now completes).
    pub fn actor_died(&mut self, a: ActorId) {
        debug_assert_ne!(self.state[a.index()], ActorState::Dead);
        self.state[a.index()] = ActorState::Dead;
        self.live -= 1;
        if let Some(ws) = self.join_waiters.remove(&a.0) {
            for w in ws {
                self.wake(w);
            }
        }
    }

    /// A lock was released: wake all its waiters in park order. Each
    /// retries `lock`; the first scheduled takes it and the rest re-park,
    /// so no wakeup is ever lost.
    pub fn lock_released(&mut self, lock: i64) {
        if let Some(ws) = self.lock_waiters.remove(&lock) {
            for w in ws {
                self.wake(w);
            }
        }
    }

    /// A message arrived in `target`'s mailbox: wake it if it is parked
    /// on `receive`.
    pub fn message_arrived(&mut self, target: ActorId) {
        if self.state[target.index()] == ActorState::Sleeping(WaitReason::Receive) {
            self.wake(target);
        }
    }

    /// A slot freed up in `target`'s mailbox: wake all senders parked on
    /// its capacity, in park order. Each retries `send`; those that still
    /// find the mailbox full re-park.
    pub fn mailbox_slot_freed(&mut self, target: ActorId) {
        if let Some(ws) = self.send_waiters.remove(&target.0) {
            for w in ws {
                self.wake(w);
            }
        }
    }

    /// Every actor has finished (program completion, as opposed to
    /// deadlock when [`Scheduler::pick`] returns `None`).
    pub fn all_dead(&self) -> bool {
        self.live == 0
    }

    /// Actors ever registered.
    pub fn spawned(&self) -> u32 {
        self.state.len() as u32
    }

    /// High-water mark of simultaneously live actors.
    pub fn peak_live(&self) -> u32 {
        self.peak_live as u32
    }

    /// Every sleeping actor with its wait reason, in id order — the
    /// deadlock report. Non-empty whenever `pick` returned `None` but
    /// `all_dead` is false.
    pub fn blocked_actors(&self) -> Vec<(u32, WaitReason)> {
        self.state
            .iter()
            .enumerate()
            .filter_map(|(i, s)| match s {
                ActorState::Sleeping(r) => Some((i as u32, *r)),
                _ => None,
            })
            .collect()
    }

    /// Draw the next slice length: `base + (rng % base)` instructions,
    /// the same seeded jitter the pre-refactor schedulers applied.
    pub fn next_quantum(&mut self, base: u32) -> u32 {
        let mut x = self.rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng = x;
        let drawn = x.wrapping_mul(0x2545_F491_4F6C_DD1D);
        base + (drawn % base.max(1) as u64) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_round_robin_order() {
        let mut s = Scheduler::new(1);
        let a = s.spawn();
        let b = s.spawn();
        let c = s.spawn();
        assert_eq!(s.pick(), Some(a));
        s.yield_back(a);
        assert_eq!(s.pick(), Some(b));
        s.yield_back(b);
        assert_eq!(s.pick(), Some(c));
        s.yield_back(c);
        assert_eq!(s.pick(), Some(a));
    }

    #[test]
    fn park_and_wake_join() {
        let mut s = Scheduler::new(1);
        let a = s.spawn();
        let b = s.spawn();
        assert_eq!(s.pick(), Some(a));
        s.park(a, WaitReason::Join(b));
        assert_eq!(s.pick(), Some(b));
        s.actor_died(b);
        // a woken by b's death, at the back of the (empty) queue.
        assert_eq!(s.pick(), Some(a));
        assert!(s.is_ready(a));
        assert!(s.is_dead(b));
    }

    #[test]
    fn lock_waiters_wake_in_park_order() {
        let mut s = Scheduler::new(1);
        let a = s.spawn();
        let b = s.spawn();
        let c = s.spawn();
        s.pick();
        s.yield_back(a);
        s.pick();
        s.park(b, WaitReason::Lock(7));
        s.pick();
        s.park(c, WaitReason::Lock(7));
        s.lock_released(7);
        // Queue: a (yielded), then b and c in park order.
        assert_eq!(s.pick(), Some(a));
        assert_eq!(s.pick(), Some(b));
        assert_eq!(s.pick(), Some(c));
    }

    #[test]
    fn receive_wake_only_when_parked() {
        let mut s = Scheduler::new(1);
        let a = s.spawn();
        // Not parked: a send notification must not enqueue a twice.
        s.message_arrived(a);
        assert_eq!(s.pick(), Some(a));
        assert_eq!(s.pick(), None);
        s.park(a, WaitReason::Receive);
        s.message_arrived(a);
        assert_eq!(s.pick(), Some(a));
    }

    #[test]
    fn deadlock_report_lists_waiters() {
        let mut s = Scheduler::new(1);
        let a = s.spawn();
        let b = s.spawn();
        s.pick();
        s.park(a, WaitReason::Join(b));
        s.pick();
        s.park(b, WaitReason::Lock(3));
        assert_eq!(s.pick(), None);
        assert!(!s.all_dead());
        let blocked = s.blocked_actors();
        assert_eq!(blocked.len(), 2);
        assert_eq!(blocked[0], (0, WaitReason::Join(b)));
        assert_eq!(blocked[1], (1, WaitReason::Lock(3)));
    }

    #[test]
    fn live_accounting_tracks_peak() {
        let mut s = Scheduler::new(1);
        let a = s.spawn();
        let _b = s.spawn();
        s.actor_died(a);
        let _c = s.spawn();
        assert_eq!(s.spawned(), 3);
        assert_eq!(s.peak_live(), 2);
        assert!(!s.all_dead());
    }

    #[test]
    fn quantum_jitter_is_seed_deterministic() {
        let mut s1 = Scheduler::new(42);
        let mut s2 = Scheduler::new(42);
        let mut s3 = Scheduler::new(43);
        let a: Vec<u32> = (0..8).map(|_| s1.next_quantum(64)).collect();
        let b: Vec<u32> = (0..8).map(|_| s2.next_quantum(64)).collect();
        let c: Vec<u32> = (0..8).map(|_| s3.next_quantum(64)).collect();
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.iter().all(|&q| (64..128).contains(&q)));
    }
}
