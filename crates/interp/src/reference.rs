//! The reference interpreter: a direct tree-walking executor over
//! [`mir::Instr`], preserved verbatim from the pre-decode implementation.
//!
//! [`crate::machine`] runs the pre-decoded flat instruction stream built at
//! [`Program::new`]; this module keeps the original slow path — per-step
//! frame/block/pc re-resolution, match dispatch on the tree-shaped IR,
//! name-map call resolution, and the `op_ids` side table (re-derived here) —
//! as an independent oracle. The decode layer is pure lowering and the
//! superinstruction peephole is observationally invisible, so for any
//! program, sink, configuration, and decode mode (fused or unfused) the two
//! interpreters must produce **byte-identical event streams** and results;
//! `tests/decode_equivalence.rs` pins this on real workloads. Keep this
//! module dumb and obvious: its value is that it cannot share a bug with
//! the decoder. (The only change since the pre-decode implementation is the
//! [`Sink::WANTS_EVENTS`] gate in `emit`, mirroring the machine so both
//! interpreters elide event work for the same sinks.)

// Same panic policy as `machine`: verified-module invariants make these
// lookups infallible, and the oracle must stay dumb and obvious rather
// than grow error plumbing the machine does not have.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use crate::event::{Event, MemEvent, RegionExitEvent, Sink};
use crate::machine::{bin_eval, ActorStats, RunConfig, RunResult, RuntimeError};
use crate::program::{
    Program, GLOBAL_BASE, MAILBOX_BASE, MAILBOX_SLOTS, MAILBOX_SPAN, STACK_BASE, STACK_SPAN, WORD,
};
use crate::sched::{ActorId, Scheduler, WaitReason};
use fxhash::FxHashMap;
use mir::{Instr, Operand, Place, RegId, Terminator, UnOp, Value, VarRef};
use std::collections::VecDeque;

#[derive(Debug)]
struct RegionState {
    region: u32,
    th_steps_at_enter: u64,
    iters: u64,
}

#[derive(Debug)]
struct Frame {
    func: usize,
    block: usize,
    pc: usize,
    regs: Vec<Value>,
    base: usize,
    ret_dst: Option<RegId>,
    regions: Vec<RegionState>,
}

#[derive(Debug)]
struct Thread {
    mem: Vec<Value>,
    sp: usize,
    frames: Vec<Frame>,
    buf: Vec<Event>,
    steps: u64,
    ret: Option<Value>,
    mbox: VecDeque<Value>,
    mbox_in: u64,
    mbox_out: u64,
}

enum Target {
    User(usize),
    Builtin(&'static str),
}

const BUILTINS: &[&str] = &[
    "print",
    "sqrt",
    "sin",
    "cos",
    "exp",
    "log",
    "fabs",
    "floor",
    "ceil",
    "pow",
    "fmin",
    "fmax",
    "abs",
    "min",
    "max",
    "rand",
    "frand",
    "srand",
    "tid",
    "lock",
    "unlock",
    "join",
    "spawn",
    "spawn_actor",
    "send",
    "receive",
];

/// The reference interpreter. Use [`run_with_config`]; the struct itself is
/// an implementation detail.
struct RefInterp<'p, S: Sink> {
    prog: &'p Program,
    sink: S,
    cfg: RunConfig,
    globals: Vec<Value>,
    threads: Vec<Thread>,
    locks: FxHashMap<i64, u32>,
    steps: u64,
    user_rng: u64,
    sched: Scheduler,
    msgs_sent: u64,
    msgs_received: u64,
    channels: FxHashMap<(u32, u32), u64>,
    printed: Vec<String>,
    targets: FxHashMap<String, Target>,
    /// Static memory-op ids re-derived from the module:
    /// `op_ids[func][block][pc]`, `u32::MAX` for non-memory instructions.
    /// Mailbox builtin calls (`send`/`receive` not shadowed by a user
    /// function) carry ids appended after the load/store range, in the
    /// same program order the decoder assigns them.
    op_ids: Vec<Vec<Vec<u32>>>,
    batch: Vec<Event>,
    batching: bool,
}

/// Run a program through the reference (tree-walking) interpreter.
pub fn run_with_config<S: Sink>(
    prog: &Program,
    sink: S,
    cfg: RunConfig,
) -> Result<RunResult, RuntimeError> {
    RefInterp::new(prog, sink, cfg)?.run()
}

impl<'p, S: Sink> RefInterp<'p, S> {
    fn new(prog: &'p Program, sink: S, cfg: RunConfig) -> Result<Self, RuntimeError> {
        let mut targets = FxHashMap::default();
        for (i, f) in prog.module.functions.iter().enumerate() {
            targets.insert(f.name.clone(), Target::User(i));
        }
        for b in BUILTINS {
            targets.entry(b.to_string()).or_insert(Target::Builtin(b));
        }
        // Independent re-derivation of the static memory-op id table.
        // Load/store ids come first in program order; mailbox builtin call
        // ids are appended after that range (second walk patches them once
        // the load/store count is known), matching the decoder's layout.
        let mut op_ids = Vec::new();
        let mut next_op = 0u32;
        let mut mbox_slots: Vec<(usize, usize, usize)> = Vec::new();
        for (fi, f) in prog.module.functions.iter().enumerate() {
            let mut per_block = Vec::new();
            for (bi, b) in f.blocks.iter().enumerate() {
                let mut ids = Vec::with_capacity(b.instrs.len());
                for (pi, i) in b.instrs.iter().enumerate() {
                    if i.is_memory_op() {
                        ids.push(next_op);
                        next_op += 1;
                    } else {
                        if let Instr::Call { func: callee, .. } = i {
                            let is_user =
                                matches!(targets.get(callee.as_str()), Some(Target::User(_)));
                            let is_mbox = crate::code::Builtin::from_name(callee)
                                .map(|b| b.is_mailbox_op())
                                .unwrap_or(false);
                            if !is_user && is_mbox {
                                mbox_slots.push((fi, bi, pi));
                            }
                        }
                        ids.push(u32::MAX);
                    }
                }
                per_block.push(ids);
            }
            op_ids.push(per_block);
        }
        for (ord, (fi, bi, pi)) in mbox_slots.into_iter().enumerate() {
            op_ids[fi][bi][pi] = next_op + ord as u32;
        }
        let (main_id, _) = prog.module.function("main").ok_or(RuntimeError::NoMain)?;
        let batching = !cfg.racy_delivery && cfg.effective_batch_cap() >= 2 && sink.batch_hint();
        let mut it = RefInterp {
            prog,
            sink,
            cfg: cfg.clone(),
            globals: vec![Value::I64(0); prog.global_words],
            threads: Vec::new(),
            locks: FxHashMap::default(),
            steps: 0,
            user_rng: cfg.seed | 1,
            sched: Scheduler::new(cfg.seed),
            msgs_sent: 0,
            msgs_received: 0,
            channels: FxHashMap::default(),
            printed: Vec::new(),
            targets,
            op_ids,
            batch: Vec::with_capacity(if batching { cfg.batch_cap } else { 0 }),
            batching,
        };
        it.spawn_thread(main_id.index(), &[], None, 0);
        Ok(it)
    }

    fn user_next(&mut self) -> u64 {
        let mut x = self.user_rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.user_rng = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn spawn_thread(&mut self, func: usize, args: &[Value], parent: Option<u32>, line: u32) -> u32 {
        let tid = self.threads.len() as u32;
        let mut th = Thread {
            mem: Vec::new(),
            sp: 0,
            frames: Vec::new(),
            buf: Vec::new(),
            steps: 0,
            ret: None,
            mbox: VecDeque::new(),
            mbox_in: 0,
            mbox_out: 0,
        };
        Self::push_frame_raw(self.prog, &mut th, func, args, None);
        self.threads.push(th);
        let aid = self.sched.spawn();
        debug_assert_eq!(aid.0, tid, "scheduler ids track thread ids");
        if let Some(p) = parent {
            self.emit(
                p as usize,
                Event::ThreadSpawn {
                    parent: p,
                    child: tid,
                    line,
                },
            );
            self.flush(p as usize);
        }
        let f = &self.prog.module.functions[func];
        self.emit(
            tid as usize,
            Event::FuncEnter {
                func: func as u32,
                line: f.start_line,
                thread: tid,
            },
        );
        tid
    }

    fn push_frame_raw(
        prog: &Program,
        th: &mut Thread,
        func: usize,
        args: &[Value],
        ret_dst: Option<RegId>,
    ) {
        let f = &prog.module.functions[func];
        let base = th.sp;
        let need = base + prog.frame_words[func];
        if th.mem.len() < need {
            th.mem.resize(need, Value::I64(0));
        }
        th.sp = need;
        for (i, a) in args.iter().enumerate() {
            let off = prog.local_off[func][i] as usize;
            th.mem[base + off] = *a;
        }
        th.frames.push(Frame {
            func,
            block: 0,
            pc: 0,
            regs: vec![Value::I64(0); f.num_regs as usize],
            base,
            ret_dst,
            regions: Vec::new(),
        });
    }

    #[inline]
    fn emit(&mut self, t: usize, ev: Event) {
        if !S::WANTS_EVENTS {
            return;
        }
        if self.batching {
            self.batch.push(ev);
            if self.batch.len() >= self.cfg.batch_cap {
                self.flush_batch();
            }
        } else if self.cfg.racy_delivery {
            self.threads[t].buf.push(ev);
            if self.threads[t].buf.len() >= self.cfg.buffer_cap {
                self.flush(t);
            }
        } else {
            self.sink.event(&ev);
        }
    }

    fn flush_batch(&mut self) {
        if !self.batch.is_empty() {
            self.sink.events(&self.batch);
            self.batch.clear();
        }
    }

    fn flush(&mut self, t: usize) {
        if !self.cfg.racy_delivery {
            return;
        }
        self.sink.events(&self.threads[t].buf);
        self.threads[t].buf.clear();
    }

    fn run(mut self) -> Result<RunResult, RuntimeError> {
        let outcome = self.exec();
        for t in 0..self.threads.len() {
            self.flush(t);
        }
        self.flush_batch();
        outcome?;
        let mut channels: Vec<(u32, u32, u64)> = self
            .channels
            .iter()
            .map(|(&(from, to), &count)| (from, to, count))
            .collect();
        channels.sort_unstable();
        Ok(RunResult {
            ret: self.threads[0].ret,
            printed: self.printed,
            steps: self.steps,
            // The tree-walker dispatches every instruction individually
            // and never skips: each step is one dispatch, no synthesis.
            dispatches: self.steps,
            synth: crate::machine::SynthStats::default(),
            threads: self.threads.len() as u32,
            actors: ActorStats {
                spawned: self.sched.spawned(),
                peak_live: self.sched.peak_live(),
                sent: self.msgs_sent,
                received: self.msgs_received,
                channels,
            },
            interrupted: false,
        })
    }

    /// The scheduler loop, mirroring `machine::Interp::exec` call for
    /// call: same picks, same quantum draws, same park/wake — so the two
    /// interpreters make identical scheduling decisions.
    fn exec(&mut self) -> Result<(), RuntimeError> {
        loop {
            if self.steps > self.cfg.max_steps {
                return Err(RuntimeError::StepLimit);
            }
            let Some(a) = self.sched.pick() else {
                if self.sched.all_dead() {
                    break;
                }
                return Err(RuntimeError::Deadlock {
                    waiting: self.sched.blocked_actors(),
                });
            };
            let t = a.index();
            let q = self.sched.next_quantum(self.cfg.quantum);
            for _ in 0..q {
                if !self.sched.is_ready(a) {
                    break;
                }
                self.step(t)?;
            }
            self.sched.yield_back(a);
        }
        Ok(())
    }

    #[inline]
    fn reg(&self, t: usize, r: RegId) -> Value {
        self.threads[t].frames.last().unwrap().regs[r.index()]
    }

    #[inline]
    fn op_val(&self, t: usize, op: &Operand) -> Value {
        match op {
            Operand::Reg(r) => self.reg(t, *r),
            Operand::Const(v) => *v,
        }
    }

    #[inline]
    fn set_reg(&mut self, t: usize, r: RegId, v: Value) {
        *self.threads[t]
            .frames
            .last_mut()
            .unwrap()
            .regs
            .get_mut(r.index())
            .unwrap() = v;
    }

    fn resolve(
        &self,
        t: usize,
        place: &Place,
        line: u32,
    ) -> Result<(u64, bool, usize, u32), RuntimeError> {
        let idx = match &place.index {
            Some(op) => self.op_val(t, op).as_i64(),
            None => 0,
        };
        let fr = self.threads[t].frames.last().unwrap();
        match place.var {
            VarRef::Global(g) => {
                let gv = &self.prog.module.globals[g.index()];
                if idx < 0 || idx as u64 >= gv.elems {
                    return Err(RuntimeError::OutOfBounds {
                        line,
                        var: gv.name.clone(),
                        index: idx,
                    });
                }
                let addr = self.prog.global_addr[g.index()] + idx as u64 * WORD;
                let slot = ((addr - GLOBAL_BASE) / WORD) as usize;
                Ok((addr, true, slot, self.prog.global_syms[g.index()]))
            }
            VarRef::Local(l) => {
                let lv = &self.prog.module.functions[fr.func].locals[l.index()];
                if idx < 0 || idx as u64 >= lv.elems {
                    return Err(RuntimeError::OutOfBounds {
                        line,
                        var: lv.name.clone(),
                        index: idx,
                    });
                }
                let word = fr.base as u64 + self.prog.local_off[fr.func][l.index()] + idx as u64;
                let addr = STACK_BASE + t as u64 * STACK_SPAN + word * WORD;
                Ok((
                    addr,
                    false,
                    word as usize,
                    self.prog.local_syms[fr.func][l.index()],
                ))
            }
        }
    }

    fn step(&mut self, t: usize) -> Result<(), RuntimeError> {
        let prog = self.prog;
        let fr = self.threads[t].frames.last().unwrap();
        let func_idx = fr.func;
        let f = &prog.module.functions[func_idx];
        let block_idx = fr.block;
        let block = &f.blocks[block_idx];
        let pc = fr.pc;
        self.steps += 1;
        self.threads[t].steps += 1;

        if pc >= block.instrs.len() {
            return self.terminator(t, func_idx, &block.term);
        }
        let instr = &block.instrs[pc];
        match instr {
            Instr::Load { dst, place, line } => {
                let (addr, is_global, slot, sym) = self.resolve(t, place, *line)?;
                let v = if is_global {
                    self.globals[slot]
                } else {
                    self.threads[t].mem[slot]
                };
                self.set_reg(t, *dst, v);
                let ts = self.steps;
                let op = self.op_ids[func_idx][self.threads[t].frames.last().unwrap().block][pc];
                self.emit(
                    t,
                    Event::Mem(MemEvent {
                        is_write: false,
                        addr,
                        op,
                        line: *line,
                        var: sym,
                        thread: t as u32,
                        ts,
                    }),
                );
                self.advance(t);
            }
            Instr::Store { place, src, line } => {
                let v = self.op_val(t, src);
                let (addr, is_global, slot, sym) = self.resolve(t, place, *line)?;
                if is_global {
                    self.globals[slot] = v;
                } else {
                    self.threads[t].mem[slot] = v;
                }
                let ts = self.steps;
                let op = self.op_ids[func_idx][self.threads[t].frames.last().unwrap().block][pc];
                self.emit(
                    t,
                    Event::Mem(MemEvent {
                        is_write: true,
                        addr,
                        op,
                        line: *line,
                        var: sym,
                        thread: t as u32,
                        ts,
                    }),
                );
                self.advance(t);
            }
            Instr::Bin {
                dst,
                op,
                lhs,
                rhs,
                line,
            } => {
                let a = self.op_val(t, lhs);
                let b = self.op_val(t, rhs);
                let v = bin_eval(*op, a, b, *line)?;
                self.set_reg(t, *dst, v);
                self.advance(t);
            }
            Instr::Un { dst, op, src, .. } => {
                let v = self.op_val(t, src);
                let r = match op {
                    UnOp::Neg => match v {
                        Value::I64(x) => Value::I64(x.wrapping_neg()),
                        Value::F64(x) => Value::F64(-x),
                    },
                    UnOp::Not => Value::I64(i64::from(!v.is_truthy())),
                    UnOp::ToF64 => Value::F64(v.as_f64()),
                    UnOp::ToI64 => Value::I64(v.as_i64()),
                };
                self.set_reg(t, *dst, r);
                self.advance(t);
            }
            Instr::Call {
                dst,
                func: callee,
                args,
                line,
            } => {
                let vals: Vec<Value> = args.iter().map(|a| self.op_val(t, a)).collect();
                match self.targets.get(callee.as_str()) {
                    Some(Target::User(fi)) => {
                        let fi = *fi;
                        self.advance(t);
                        let dst = *dst;
                        let th = &mut self.threads[t];
                        Self::push_frame_raw(prog, th, fi, &vals, dst);
                        let callee_f = &prog.module.functions[fi];
                        let start = callee_f.start_line;
                        self.emit(
                            t,
                            Event::FuncEnter {
                                func: fi as u32,
                                line: start,
                                thread: t as u32,
                            },
                        );
                    }
                    Some(Target::Builtin(name)) => {
                        let name = *name;
                        let dst = *dst;
                        let line = *line;
                        // Mailbox builtins carry their appended static
                        // memory-op id in the same table as loads/stores.
                        let mbox_op = self.op_ids[func_idx][block_idx][pc];
                        self.builtin(t, name, &vals, dst, line, mbox_op)?;
                    }
                    None => return Err(RuntimeError::UnknownFunction(callee.clone())),
                }
            }
            Instr::RegionEnter { region, line } => {
                let r = &f.regions[region.index()];
                let th_steps = self.threads[t].steps;
                self.threads[t]
                    .frames
                    .last_mut()
                    .unwrap()
                    .regions
                    .push(RegionState {
                        region: region.0,
                        th_steps_at_enter: th_steps,
                        iters: 0,
                    });
                self.emit(
                    t,
                    Event::RegionEnter {
                        func: func_idx as u32,
                        region: region.0,
                        kind: r.kind,
                        start_line: *line,
                        end_line: r.end_line,
                        thread: t as u32,
                    },
                );
                self.advance(t);
            }
            Instr::RegionExit { region, .. } => {
                self.pop_regions_through(t, func_idx, region.0);
                self.advance(t);
            }
            Instr::LoopIter { region, .. } => {
                self.pop_regions_above(t, func_idx, region.0);
                self.emit(
                    t,
                    Event::LoopIter {
                        func: func_idx as u32,
                        region: region.0,
                        thread: t as u32,
                    },
                );
                self.advance(t);
            }
            Instr::LoopBody { region, .. } => {
                let fr = self.threads[t].frames.last_mut().unwrap();
                if let Some(top) = fr.regions.last_mut() {
                    if top.region == region.0 {
                        top.iters += 1;
                    }
                }
                self.advance(t);
            }
        }
        Ok(())
    }

    #[inline]
    fn advance(&mut self, t: usize) {
        self.threads[t].frames.last_mut().unwrap().pc += 1;
    }

    fn pop_regions_above(&mut self, t: usize, func_idx: usize, region: u32) {
        loop {
            let fr = self.threads[t].frames.last().unwrap();
            match fr.regions.last() {
                Some(top) if top.region != region => {
                    self.pop_one_region(t, func_idx);
                }
                _ => break,
            }
        }
    }

    fn pop_regions_through(&mut self, t: usize, func_idx: usize, region: u32) {
        self.pop_regions_above(t, func_idx, region);
        let fr = self.threads[t].frames.last().unwrap();
        if fr.regions.last().map(|r| r.region) == Some(region) {
            self.pop_one_region(t, func_idx);
        }
    }

    fn pop_one_region(&mut self, t: usize, func_idx: usize) {
        let th_steps = self.threads[t].steps;
        let fr = self.threads[t].frames.last_mut().unwrap();
        let st = fr.regions.pop().expect("region stack underflow");
        let frame_base = fr.base as u64;
        let rinfo = &self.prog.module.functions[func_idx].regions[st.region as usize];
        let ev = Event::RegionExit(RegionExitEvent {
            func: func_idx as u32,
            region: st.region,
            kind: rinfo.kind,
            start_line: rinfo.start_line,
            end_line: rinfo.end_line,
            iters: st.iters,
            dyn_instrs: th_steps - st.th_steps_at_enter,
            thread: t as u32,
        });
        self.emit(t, ev);
        let owned = rinfo.owned_locals.clone();
        for l in owned {
            let off = self.prog.local_off[func_idx][l.index()];
            let words = self.prog.module.functions[func_idx].locals[l.index()].elems;
            let addr = STACK_BASE + t as u64 * STACK_SPAN + (frame_base + off) * WORD;
            self.emit(
                t,
                Event::VarDealloc {
                    addr,
                    words,
                    thread: t as u32,
                },
            );
        }
    }

    fn terminator(
        &mut self,
        t: usize,
        func_idx: usize,
        term: &Terminator,
    ) -> Result<(), RuntimeError> {
        match term {
            Terminator::Jump(b) => {
                let fr = self.threads[t].frames.last_mut().unwrap();
                fr.block = b.index();
                fr.pc = 0;
            }
            Terminator::Branch {
                cond,
                then_bb,
                else_bb,
            } => {
                let v = self.op_val(t, cond);
                let fr = self.threads[t].frames.last_mut().unwrap();
                fr.block = if v.is_truthy() {
                    then_bb.index()
                } else {
                    else_bb.index()
                };
                fr.pc = 0;
            }
            Terminator::Return(v) => {
                let val = v.as_ref().map(|o| self.op_val(t, o));
                while !self.threads[t].frames.last().unwrap().regions.is_empty() {
                    self.pop_one_region(t, func_idx);
                }
                let f = &self.prog.module.functions[func_idx];
                let end_line = f.end_line;
                let fr = self.threads[t].frames.pop().unwrap();
                let words = self.prog.frame_words[func_idx] as u64;
                if words > 0 {
                    let addr = STACK_BASE + t as u64 * STACK_SPAN + fr.base as u64 * WORD;
                    self.emit(
                        t,
                        Event::VarDealloc {
                            addr,
                            words,
                            thread: t as u32,
                        },
                    );
                }
                self.emit(
                    t,
                    Event::FuncExit {
                        func: func_idx as u32,
                        line: end_line,
                        thread: t as u32,
                    },
                );
                self.threads[t].sp = fr.base;
                if self.threads[t].frames.is_empty() {
                    self.sched.actor_died(ActorId(t as u32));
                    self.threads[t].ret = val;
                    self.emit(t, Event::ThreadEnd { thread: t as u32 });
                    self.flush(t);
                } else if let (Some(dst), Some(v)) = (fr.ret_dst, val) {
                    self.set_reg(t, dst, v);
                }
            }
            Terminator::Unreachable => unreachable!("verified IR has no unreachable terminators"),
        }
        Ok(())
    }

    fn builtin(
        &mut self,
        t: usize,
        name: &str,
        args: &[Value],
        dst: Option<RegId>,
        line: u32,
        mbox_op: u32,
    ) -> Result<(), RuntimeError> {
        let mut result: Option<Value> = None;
        match name {
            "print" => {
                let s = args
                    .iter()
                    .map(|v| v.to_string())
                    .collect::<Vec<_>>()
                    .join(" ");
                self.printed.push(s);
            }
            "sqrt" => result = Some(Value::F64(args[0].as_f64().sqrt())),
            "sin" => result = Some(Value::F64(args[0].as_f64().sin())),
            "cos" => result = Some(Value::F64(args[0].as_f64().cos())),
            "exp" => result = Some(Value::F64(args[0].as_f64().exp())),
            "log" => result = Some(Value::F64(args[0].as_f64().ln())),
            "fabs" => result = Some(Value::F64(args[0].as_f64().abs())),
            "floor" => result = Some(Value::F64(args[0].as_f64().floor())),
            "ceil" => result = Some(Value::F64(args[0].as_f64().ceil())),
            "pow" => result = Some(Value::F64(args[0].as_f64().powf(args[1].as_f64()))),
            "fmin" => result = Some(Value::F64(args[0].as_f64().min(args[1].as_f64()))),
            "fmax" => result = Some(Value::F64(args[0].as_f64().max(args[1].as_f64()))),
            "abs" => result = Some(Value::I64(args[0].as_i64().wrapping_abs())),
            "min" => result = Some(Value::I64(args[0].as_i64().min(args[1].as_i64()))),
            "max" => result = Some(Value::I64(args[0].as_i64().max(args[1].as_i64()))),
            "rand" => {
                let v = (self.user_next() >> 33) as i64;
                result = Some(Value::I64(v));
            }
            "frand" => {
                let v = (self.user_next() >> 11) as f64 / (1u64 << 53) as f64;
                result = Some(Value::F64(v));
            }
            "srand" => {
                self.user_rng = (args[0].as_i64() as u64) | 1;
            }
            "tid" => result = Some(Value::I64(t as i64)),
            "spawn" => {
                let fi = args[0].as_i64() as usize;
                let child = self.spawn_thread(fi, &args[1..], Some(t as u32), line);
                result = Some(Value::I64(child as i64));
            }
            "join" => {
                let target = args[0].as_i64();
                if target < 0 || target as usize >= self.threads.len() {
                    return Err(RuntimeError::BadJoin { line });
                }
                if !self.sched.is_dead(ActorId(target as u32)) {
                    self.sched
                        .park(ActorId(t as u32), WaitReason::Join(ActorId(target as u32)));
                    return Ok(());
                }
                self.emit(
                    t,
                    Event::ThreadJoin {
                        thread: t as u32,
                        target: target as u32,
                        line,
                    },
                );
                self.flush(t);
            }
            "lock" => {
                let id = args[0].as_i64();
                match self.locks.get(&id) {
                    None => {
                        self.locks.insert(id, t as u32);
                        self.emit(
                            t,
                            Event::LockAcquire {
                                id,
                                thread: t as u32,
                                line,
                            },
                        );
                    }
                    Some(holder) if *holder == t as u32 => {
                        return Err(RuntimeError::RecursiveLock { line })
                    }
                    Some(_) => {
                        self.sched.park(ActorId(t as u32), WaitReason::Lock(id));
                        return Ok(());
                    }
                }
            }
            "unlock" => {
                let id = args[0].as_i64();
                if self.locks.get(&id) != Some(&(t as u32)) {
                    return Err(RuntimeError::BadUnlock { line });
                }
                self.emit(
                    t,
                    Event::LockRelease {
                        id,
                        thread: t as u32,
                        line,
                    },
                );
                self.flush(t);
                self.locks.remove(&id);
                self.sched.lock_released(id);
            }
            "spawn_actor" => {
                let fi = args[0].as_i64() as usize;
                let child = self.spawn_thread(fi, &args[1..], Some(t as u32), line);
                result = Some(Value::I64(child as i64));
            }
            "send" => {
                let target = args[0].as_i64();
                if target < 0 || target as usize >= self.threads.len() {
                    return Err(RuntimeError::BadSend { line });
                }
                let tgt = target as usize;
                let cap = self.cfg.mailbox_cap.max(1);
                if self.threads[tgt].mbox.len() >= cap {
                    self.sched
                        .park(ActorId(t as u32), WaitReason::SendCap(ActorId(tgt as u32)));
                    return Ok(());
                }
                let seq = self.threads[tgt].mbox_in;
                self.threads[tgt].mbox_in += 1;
                self.threads[tgt].mbox.push_back(args[1]);
                let slot = (seq % cap as u64) % MAILBOX_SLOTS;
                let addr = MAILBOX_BASE + tgt as u64 * MAILBOX_SPAN + slot * WORD;
                self.emit(
                    t,
                    Event::Mem(MemEvent {
                        is_write: true,
                        addr,
                        op: mbox_op,
                        line,
                        var: self.prog.mailbox_symbol().unwrap_or(0),
                        thread: t as u32,
                        ts: self.steps,
                    }),
                );
                self.flush(t);
                self.msgs_sent += 1;
                *self.channels.entry((t as u32, tgt as u32)).or_insert(0) += 1;
                self.sched.message_arrived(ActorId(tgt as u32));
            }
            "receive" => {
                let Some(val) = self.threads[t].mbox.pop_front() else {
                    self.sched.park(ActorId(t as u32), WaitReason::Receive);
                    return Ok(());
                };
                let seq = self.threads[t].mbox_out;
                self.threads[t].mbox_out += 1;
                let cap = self.cfg.mailbox_cap.max(1);
                let slot = (seq % cap as u64) % MAILBOX_SLOTS;
                let addr = MAILBOX_BASE + t as u64 * MAILBOX_SPAN + slot * WORD;
                self.emit(
                    t,
                    Event::Mem(MemEvent {
                        is_write: false,
                        addr,
                        op: mbox_op,
                        line,
                        var: self.prog.mailbox_symbol().unwrap_or(0),
                        thread: t as u32,
                        ts: self.steps,
                    }),
                );
                self.flush(t);
                self.msgs_received += 1;
                result = Some(val);
                self.sched.mailbox_slot_freed(ActorId(t as u32));
            }
            other => return Err(RuntimeError::UnknownFunction(other.to_string())),
        }
        if let (Some(d), Some(v)) = (dst, result) {
            self.set_reg(t, d, v);
        }
        self.advance(t);
        Ok(())
    }
}
