//! Executable program: a verified module plus precomputed memory layout,
//! symbol table, and the pre-decoded instruction streams the interpreter
//! executes (see [`crate::code`]).

use crate::code::{Builtin, DecodeConfig, DecodeCtx, FuncCode, HotOp};
use mir::{Module, Ty};

/// Static metadata of one memory operation: everything a [`MemEvent`]
/// carries that is fully determined by the op id alone. The parallel
/// profiler ships accesses over queues with only the op id and resolves
/// line/variable/direction through this table on the consumer side, so the
/// in-transit record stays compact.
///
/// [`MemEvent`]: crate::MemEvent
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemOpMeta {
    /// Source line of the operation.
    pub line: u32,
    /// Variable symbol id.
    pub var: u32,
    /// `true` for stores, `false` for loads.
    pub is_write: bool,
}

/// Machine word size in bytes; every IR cell is one word.
pub const WORD: u64 = 8;
/// Base address of the global data segment.
pub const GLOBAL_BASE: u64 = 0x1000_0000;
/// Base address of thread 0's stack segment.
pub const STACK_BASE: u64 = 0x5000_0000;
/// Address span reserved per thread stack.
pub const STACK_SPAN: u64 = 0x0100_0000;
/// Base address of actor 0's mailbox segment. Mailbox slots are
/// addressable memory: a `send` is a store to the target's slot
/// `seq % cap`, the matching `receive` a load from the same slot, so
/// message passing surfaces to the profiler as ordinary RAW (and, once a
/// slot is reused, WAR/WAW) dependences. Far above any stack: stacks
/// reach this base only past ~4M actors.
pub const MAILBOX_BASE: u64 = 0x4000_0000_0000;
/// Address span reserved per actor mailbox.
pub const MAILBOX_SPAN: u64 = 0x1_0000;
/// Addressable slots per mailbox (`MAILBOX_SPAN / WORD`); ring addressing
/// wraps within this many slots even if the configured capacity exceeds
/// it.
pub const MAILBOX_SLOTS: u64 = MAILBOX_SPAN / WORD;

/// A program ready for execution: module + layout + symbols.
///
/// The layout mimics a conventional process image: globals live in a data
/// segment, locals in per-thread stacks whose frames are reused as calls
/// return — address reuse is what makes variable-lifetime analysis
/// (dissertation §2.3.5) necessary and is reproduced faithfully here.
#[derive(Debug, Clone)]
pub struct Program {
    /// The underlying module.
    pub module: Module,
    /// Symbol table: variable names referenced by `MemEvent::var`.
    symbols: Vec<String>,
    /// Per-global symbol id.
    pub(crate) global_syms: Vec<u32>,
    /// Per-function, per-local symbol id.
    pub(crate) local_syms: Vec<Vec<u32>>,
    /// Per-global base address.
    pub(crate) global_addr: Vec<u64>,
    /// Total words in the global segment.
    pub(crate) global_words: usize,
    /// Per-function, per-local word offset within the frame.
    pub(crate) local_off: Vec<Vec<u64>>,
    /// Per-function frame size in words.
    pub(crate) frame_words: Vec<usize>,
    /// Per-function pre-decoded instruction streams (the tentpole of the
    /// flattened hot path); built once here, executed by [`crate::machine`].
    pub(crate) code: Vec<FuncCode>,
    /// Total number of static memory operations, including mailbox ops.
    num_mem_ops: u32,
    /// First mailbox op id: loads/stores occupy `0..mbox_op_base`,
    /// `send`/`receive` sites `mbox_op_base..num_mem_ops`.
    mbox_op_base: u32,
    /// Interned symbol every mailbox access reports as its variable;
    /// `u32::MAX` when the program has no mailbox ops.
    mbox_sym: u32,
    /// Static metadata per memory op, in id order — collected during
    /// decode, so it never has to be recovered by re-walking the streams.
    mem_meta: Vec<MemOpMeta>,
    /// Static analysis facts per memory op, in id order: affine
    /// classification, constant indices, innermost-loop strides. Both
    /// tables are built from the same program-order walk over
    /// `Load`/`Store` instructions, so `mem_facts[i]` describes the same
    /// access as `mem_meta[i]`.
    mem_facts: Vec<analysis::AccessFact>,
}

impl Program {
    /// Prepare a module for execution with the default decode options
    /// (superinstruction fusion on). The module must pass
    /// [`mir::verify_module`]; use `lang::compile` to obtain verified
    /// modules from source.
    pub fn new(module: Module) -> Self {
        Self::with_decode_config(module, DecodeConfig::default())
    }

    /// Prepare a module for execution with explicit decode options. The
    /// fused and unfused forms must produce byte-identical event streams;
    /// the knob exists for differential testing and dispatch benchmarking.
    pub fn with_decode_config(module: Module, decode: DecodeConfig) -> Self {
        let mut symbols = Vec::new();
        let intern = |name: &str, symbols: &mut Vec<String>| -> u32 {
            if let Some(i) = symbols.iter().position(|s| s == name) {
                i as u32
            } else {
                symbols.push(name.to_string());
                (symbols.len() - 1) as u32
            }
        };

        let mut global_syms = Vec::new();
        let mut global_addr = Vec::new();
        let mut next = GLOBAL_BASE;
        for g in &module.globals {
            global_syms.push(intern(&g.name, &mut symbols));
            global_addr.push(next);
            next += g.elems * WORD;
        }
        let global_words = ((next - GLOBAL_BASE) / WORD) as usize;

        let mut local_syms = Vec::new();
        let mut local_off = Vec::new();
        let mut frame_words = Vec::new();
        for f in &module.functions {
            let mut syms = Vec::new();
            let mut offs = Vec::new();
            let mut off = 0u64;
            for v in &f.locals {
                syms.push(intern(&v.name, &mut symbols));
                offs.push(off);
                off += v.elems;
            }
            local_syms.push(syms);
            local_off.push(offs);
            frame_words.push(off as usize);
        }

        // Decode pass: lower every function into its flat instruction
        // stream, assigning static memory-op ids in program order.
        let mut ctx = DecodeCtx::new(
            &module,
            &global_addr,
            &global_syms,
            &local_off,
            &local_syms,
            &frame_words,
            decode,
        );
        let mut code: Vec<FuncCode> = (0..module.functions.len())
            .map(|fx| ctx.decode_function(fx))
            .collect();
        let mbox_op_base = ctx.next_op;
        let num_mem_ops = ctx.next_op + ctx.next_mbox;
        let mut mem_meta = std::mem::take(&mut ctx.mem_meta);
        let mbox_meta = std::mem::take(&mut ctx.mbox_meta);
        let statics = analysis::static_facts(&module);
        let mut mem_facts = statics.access;
        debug_assert_eq!(
            mem_facts.len(),
            mbox_op_base as usize,
            "static fact table must align with decode-time load/store ids"
        );
        // Mailbox ops (`send`/`receive` sites) extend the op-id space past
        // the load/store range: rebase the decode-time ordinals and pad the
        // per-op tables, so every consumer indexing by `MemEvent::op` —
        // skip vectors, the parallel transport's meta lookup — covers them
        // without the analysis crate having to know about mailboxes. Their
        // addresses are runtime ring positions, never affine.
        let mbox_sym = if mbox_meta.is_empty() {
            u32::MAX
        } else {
            intern("<mailbox>", &mut symbols)
        };
        for c in code.iter_mut() {
            for e in c.mbox_ops.iter_mut() {
                e.1 += mbox_op_base;
            }
        }
        for (line, is_write) in &mbox_meta {
            mem_meta.push(MemOpMeta {
                line: *line,
                var: mbox_sym,
                is_write: *is_write,
            });
            mem_facts.push(analysis::AccessFact {
                affine: false,
                const_index: None,
                stride: None,
            });
        }
        // Skip-tier plan compilation: with the fact table and trip counts
        // in hand, compile each eligible loop's cycle into a straight-line
        // plan the machine can replay without dispatching (see
        // [`crate::synth`]). Fused and unfused decodes yield identical
        // plans, since tracing expands superinstructions back into their
        // constituents.
        for (fx, c) in code.iter_mut().enumerate() {
            crate::synth::compile_plans(c, &mem_facts, &statics.trip_counts[fx]);
        }

        Program {
            module,
            symbols,
            global_syms,
            local_syms,
            global_addr,
            global_words,
            local_off,
            frame_words,
            code,
            num_mem_ops,
            mbox_op_base,
            mbox_sym,
            mem_meta,
            mem_facts,
        }
    }

    /// The pre-decoded instruction streams, one [`FuncCode`] per function.
    pub fn code(&self) -> &[FuncCode] {
        &self.code
    }

    /// Total decoded op slots across all functions (instructions +
    /// flattened terminators) — the size of the flat execution form. Fusion
    /// does not change this: fused heads occupy their first constituent's
    /// slot and tails keep their plain ops.
    pub fn num_decoded_ops(&self) -> usize {
        self.code.iter().map(|c| c.hot.len()).sum()
    }

    /// Static address-footprint upper bound in words: the global segment
    /// plus one frame of every function. Engine auto-selection uses this to
    /// choose between the exact shadow memory and the bounded signature
    /// (recursion can exceed it dynamically; it is a sizing heuristic, not
    /// a guarantee).
    pub fn footprint_words(&self) -> usize {
        self.global_words + self.frame_words.iter().sum::<usize>()
    }

    /// Total number of static memory operations in the program: loads and
    /// stores (`0..mailbox_op_base`) followed by `send`/`receive` sites
    /// (`mailbox_op_base..num_mem_ops`). Per-op tables indexed by
    /// [`crate::MemEvent::op`] must be sized by this total.
    pub fn num_mem_ops(&self) -> u32 {
        self.num_mem_ops
    }

    /// First mailbox op id; equals [`Program::num_mem_ops`] when the
    /// program has no `send`/`receive` sites.
    pub fn mailbox_op_base(&self) -> u32 {
        self.mbox_op_base
    }

    /// The interned symbol mailbox accesses report as their variable, when
    /// the program has mailbox ops. Consumers can use it to separate
    /// message-passing traffic from ordinary variable traffic.
    pub fn mailbox_symbol(&self) -> Option<u32> {
        (self.mbox_sym != u32::MAX).then_some(self.mbox_sym)
    }

    /// Per-memory-operation static metadata, indexed by op id
    /// (`0..num_mem_ops`). Every emitted [`crate::MemEvent`] with op id `i`
    /// has exactly `meta[i].line`/`var`/`is_write`, so consumers that
    /// receive the op id can drop those fields from their wire format.
    pub fn mem_op_meta(&self) -> &[MemOpMeta] {
        &self.mem_meta
    }

    /// Static analysis facts per memory op, indexed by op id like
    /// [`Program::mem_op_meta`]: whether the access classified affine, its
    /// constant index when provable, and its stride along the innermost
    /// enclosing loop. Profiler consumers can use these to pre-filter
    /// provably-independent traffic.
    pub fn mem_op_facts(&self) -> &[analysis::AccessFact] {
        &self.mem_facts
    }

    /// True if any decoded op can spawn a target thread or actor. Engine
    /// auto-selection uses this to route large multithreaded targets to the
    /// parallel engine. Calls never fuse, so scanning the hot stream is
    /// exhaustive under any decode configuration.
    pub fn spawns_threads(&self) -> bool {
        self.code.iter().any(|c| {
            c.hot.iter().any(|op| {
                matches!(
                    op,
                    HotOp::CallBuiltin {
                        builtin: Builtin::Spawn | Builtin::SpawnActor,
                        ..
                    }
                )
            })
        })
    }

    /// True if the target passes messages (`spawn_actor`/`send`/`receive`
    /// sites decoded). Scheduler-aware engine auto-detection and the
    /// report's `actors` block key off this.
    pub fn uses_actors(&self) -> bool {
        self.mbox_op_base != self.num_mem_ops
            || self.code.iter().any(|c| {
                c.hot.iter().any(|op| {
                    matches!(
                        op,
                        HotOp::CallBuiltin {
                            builtin: Builtin::SpawnActor,
                            ..
                        }
                    )
                })
            })
    }

    /// Resolve a symbol id to its variable name.
    pub fn symbol(&self, sym: u32) -> &str {
        &self.symbols[sym as usize]
    }

    /// Number of interned symbols.
    pub fn num_symbols(&self) -> usize {
        self.symbols.len()
    }

    /// The base address of a global.
    pub fn global_address(&self, name: &str) -> Option<u64> {
        let (id, _) = self.module.global(name)?;
        Some(self.global_addr[id.index()])
    }

    /// Element type of the cell at a global address, if it is in the global
    /// segment.
    pub fn global_ty_at(&self, addr: u64) -> Option<Ty> {
        if !(GLOBAL_BASE..GLOBAL_BASE + (self.global_words as u64) * WORD).contains(&addr) {
            return None;
        }
        for (i, g) in self.module.globals.iter().enumerate() {
            let base = self.global_addr[i];
            if (base..base + g.elems * WORD).contains(&addr) {
                return Some(g.ty);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mir::{ModuleBuilder, Ty};

    #[test]
    fn layout_assigns_disjoint_global_addresses() {
        let mut mb = ModuleBuilder::new("m");
        mb.global("a", Ty::I64, 4, 1);
        mb.global("b", Ty::F64, 2, 2);
        let p = Program::new(mb.build());
        let a = p.global_address("a").unwrap();
        let b = p.global_address("b").unwrap();
        assert_eq!(a, GLOBAL_BASE);
        assert_eq!(b, GLOBAL_BASE + 4 * WORD);
        assert_eq!(p.global_words, 6);
        assert_eq!(p.global_ty_at(b), Some(Ty::F64));
        assert_eq!(p.global_ty_at(0), None);
    }

    #[test]
    fn static_facts_align_with_mem_op_meta() {
        let src = "global int a[16];\n\
                   global int s;\n\
                   fn main() {\n\
                       for (int i = 0; i < 16; i = i + 1) {\n\
                           s = s + a[i];\n\
                       }\n\
                   }\n";
        let m = lang::compile(src, "t").unwrap();
        let facts_by_access = analysis::analyze(&m);
        let p = Program::new(m);
        let meta = p.mem_op_meta();
        let facts = p.mem_op_facts();
        assert_eq!(meta.len(), facts.len());
        assert_eq!(meta.len() as u32, p.num_mem_ops());
        // Same program-order walk on both sides: op i has the same line
        // and direction in the analysis access list and the decode table.
        assert_eq!(facts_by_access.accesses.len(), meta.len());
        for (i, a) in facts_by_access.accesses.iter().enumerate() {
            assert_eq!(a.op_id as usize, i);
            assert_eq!(a.line, meta[i].line, "op {i} line");
            assert_eq!(a.is_write, meta[i].is_write, "op {i} direction");
        }
        // The a[i] load is affine with stride 1; the s accesses are
        // constant-index scalars.
        assert!(facts.iter().any(|f| f.affine && f.stride == Some(1)));
        assert!(facts.iter().any(|f| f.const_index == Some(0)));
    }

    #[test]
    fn symbols_are_interned_once() {
        let mut mb = ModuleBuilder::new("m");
        mb.global("x", Ty::I64, 1, 1);
        mb.global("y", Ty::I64, 1, 1);
        let p = Program::new(mb.build());
        assert_eq!(p.num_symbols(), 2);
        assert_eq!(p.symbol(p.global_syms[0]), "x");
    }
}
