//! `interp` — an instrumenting interpreter for MIR programs.
//!
//! This crate stands in for "compile with the DiscoPoP LLVM pass, link
//! against libDiscoPoP, and run": executing a program through [`run`] with a
//! [`Sink`] produces exactly the instrumentation stream the original system
//! obtains from inserted calls — memory accesses with source line, variable
//! name and thread id; control-region entry/exit with iteration counts;
//! function entry/exit; variable deallocation (for lifetime analysis); and
//! thread/lock events for multi-threaded targets.
//!
//! Multi-threaded mini-C programs (`spawn`/`join`/`lock`/`unlock`) execute
//! under a deterministic, seeded round-robin scheduler, so every experiment
//! is reproducible. The optional *racy delivery* mode buffers events per
//! thread and flushes them at synchronization points, reproducing the
//! out-of-order event delivery of real threads that the profiler's
//! timestamp-based race detection is designed to catch (dissertation
//! Fig. 2.4).

pub mod event;
pub mod machine;
pub mod program;

pub use event::{Event, MemEvent, NullSink, RecordingSink, RegionExitEvent, Sink};
pub use machine::{run, run_with_config, Interp, RunConfig, RunResult, RuntimeError};
pub use program::{Program, GLOBAL_BASE, STACK_BASE, STACK_SPAN, WORD};
