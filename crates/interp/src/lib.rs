//! `interp` — an instrumenting interpreter for MIR programs.
//!
//! This crate stands in for "compile with the DiscoPoP LLVM pass, link
//! against libDiscoPoP, and run": executing a program through [`run`] with a
//! [`Sink`] produces exactly the instrumentation stream the original system
//! obtains from inserted calls — memory accesses with source line, variable
//! name and thread id; control-region entry/exit with iteration counts;
//! function entry/exit; variable deallocation (for lifetime analysis); and
//! thread/lock events for multi-threaded targets.
//!
//! Multi-threaded mini-C programs (`spawn`/`join`/`lock`/`unlock`) and
//! actor programs (`spawn_actor`/`send`/`receive` over bounded mailboxes)
//! execute under a deterministic, seeded run-queue scheduler
//! ([`sched::Scheduler`]: O(1) park/wake, typed wake reasons, seeded
//! quantum jitter), so every experiment is reproducible — the same seed
//! yields the same schedule, events, and dependences, even with 10k green
//! threads. The optional *racy delivery* mode buffers events per
//! thread and flushes them at synchronization points, reproducing the
//! out-of-order event delivery of real threads that the profiler's
//! timestamp-based race detection is designed to catch (dissertation
//! Fig. 2.4).
//!
//! # Execution pipeline
//!
//! [`Program::new`] lowers the verified module into a compact flat
//! instruction stream ([`code`]): a dense array of fixed-size (≤ 16-byte)
//! [`HotOp`] records backed by cold side pools (memory references,
//! immediates, call arguments), with call targets resolved to indices,
//! blocks flattened to absolute pcs, and a decode-time peephole that fuses
//! frequent adjacent sequences (compare-and-branch, read-modify-write)
//! into superinstructions — observationally invisible: same events, same
//! timestamps, same step accounting. [`machine`] executes that stream;
//! [`mod@reference`] keeps the original tree-walking interpreter as an
//! equivalence oracle — both emit byte-identical event streams for any
//! program, configuration, and decode mode.

#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod code;
pub mod event;
pub mod machine;
pub mod program;
pub mod reference;
pub mod sched;
pub mod synth;

pub use code::{Builtin, DecodeConfig, FuncCode, HotOp, MemRef, Opnd};
pub use event::{Event, MemEvent, NullSink, RecordingSink, RegionExitEvent, Sink};
pub use machine::{
    run, run_with_config, ActorStats, Interp, RunConfig, RunResult, RuntimeError, SynthStats,
};
pub use program::{
    MemOpMeta, Program, GLOBAL_BASE, MAILBOX_BASE, MAILBOX_SPAN, STACK_BASE, STACK_SPAN, WORD,
};
pub use sched::{ActorId, Scheduler, WaitReason};
pub use synth::LoopPlan;
