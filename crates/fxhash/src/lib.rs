//! A fast, non-cryptographic hasher for the profiler's hot maps.
//!
//! `std::collections::HashMap` defaults to SipHash-1-3, which is
//! DoS-resistant but costs tens of cycles per key — far too slow for maps
//! probed once per profiled memory access. This crate provides an
//! FxHash-style multiplicative hasher (the folded-multiply scheme used by
//! rustc's interner tables): each 8-byte word of the key is combined with
//! a rotate–xor–multiply step, which compiles to a handful of ALU
//! instructions and no memory traffic.
//!
//! All profiler keys are either small integers (addresses, thread ids) or
//! small fixed-size structs ([`profiler::Dep`](../profiler), source
//! locations), so the weaker avalanche behavior relative to SipHash is
//! irrelevant, and none of the maps are exposed to attacker-chosen keys.
//!
//! The hasher is deterministic (no per-process seed), which also makes
//! profiling runs bit-reproducible across processes — an invariant the
//! equivalence tests rely on.

use std::hash::{BuildHasherDefault, Hasher};

/// Golden-ratio multiplier (2^64 / φ), the classic Fibonacci-hashing
/// constant; odd, so multiplication permutes u64.
const SEED: u64 = 0x9E37_79B9_7F4A_7C15;
/// Rotation distance; balances mixing of high/low halves per step.
const ROTATE: u32 = 26;

/// FxHash-style streaming hasher.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.mix(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            // Fold in the length so "ab" and "ab\0" differ.
            self.mix(u64::from_le_bytes(tail) ^ (rest.len() as u64) << 56);
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.mix(v as u64);
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.mix(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.mix(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.mix(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.mix(v as u64);
    }

    #[inline]
    fn write_i64(&mut self, v: i64) {
        self.mix(v as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        // Final avalanche: HashMap takes the *high* bits via multiplication
        // elsewhere, but raw Fx output has weak low bits — xor-fold them.
        let h = self.hash;
        h ^ (h >> 32)
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

/// An empty [`FxHashMap`] with room for `cap` entries.
pub fn map_with_capacity<K, V>(cap: usize) -> FxHashMap<K, V> {
    FxHashMap::with_capacity_and_hasher(cap, FxBuildHasher::default())
}

/// An empty [`FxHashSet`] with room for `cap` entries.
pub fn set_with_capacity<T>(cap: usize) -> FxHashSet<T> {
    FxHashSet::with_capacity_and_hasher(cap, FxBuildHasher::default())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hash_of(f: impl FnOnce(&mut FxHasher)) -> u64 {
        let mut h = FxHasher::default();
        f(&mut h);
        h.finish()
    }

    #[test]
    fn deterministic() {
        assert_eq!(
            hash_of(|h| h.write_u64(0xDEAD_BEEF)),
            hash_of(|h| h.write_u64(0xDEAD_BEEF))
        );
    }

    #[test]
    fn distinguishes_close_keys() {
        // Word addresses differ in low bits; the map must not degenerate.
        let hashes: std::collections::HashSet<u64> = (0..1024u64)
            .map(|a| hash_of(|h| h.write_u64(0x1000 + a * 8)))
            .collect();
        assert_eq!(hashes.len(), 1024, "sequential addresses must not collide");
    }

    #[test]
    fn byte_streams_respect_length() {
        assert_ne!(hash_of(|h| h.write(b"ab")), hash_of(|h| h.write(b"ab\0")));
    }

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<u64, u32> = map_with_capacity(16);
        for i in 0..100u64 {
            m.insert(i * 8, i as u32);
        }
        assert_eq!(m.len(), 100);
        assert_eq!(m[&64], 8);
    }

    #[test]
    fn low_bits_spread() {
        // HashMap (hashbrown) uses the low 7 bits for SIMD tag matching;
        // make sure they vary across a stride-8 key set.
        // 128 draws into 128 buckets: a uniform hash leaves ~81 distinct
        // tags; a degenerate one (constant low bits) leaves only a handful.
        let mut tags = std::collections::HashSet::new();
        for a in 0..128u64 {
            tags.insert(hash_of(|h| h.write_u64(a * 8)) & 0x7F);
        }
        assert!(tags.len() > 60, "low-bit spread too weak: {}", tags.len());
    }
}
