//! Actor-scenario workloads: message-passing programs driving the
//! run-queue scheduler and bounded mailboxes (`spawn_actor`/`send`/
//! `receive`). The family covers the canonical communication topologies —
//! pipeline, fan-out/fan-in, ring — plus a 10k-actor stress program that
//! exercises O(1) park/wake and mailbox backpressure at production task
//! counts (the ROADMAP's "thousands of green threads" tier).
//!
//! Unlike the sequential suites, ground truth here is about communication
//! structure, not loop classes: every workload's channel matrix and
//! actor counts are deterministic for a fixed scheduler seed, and the
//! detection tests assert the profiler's `actors` block against them.

use crate::meta::{LoopTruth, Suite, Workload};

/// All actor workloads.
pub fn suite() -> Vec<Workload> {
    vec![ACTOR_PIPELINE, ACTOR_FANOUT, ACTOR_RING, ACTORS_10K]
}

/// Three-stage pipeline: main feeds 64 items into stage1, stage1 doubles
/// and forwards to stage2, stage2 accumulates and replies to main. Each
/// hop is a mailbox RAW handoff; the channel matrix is the 0→1→2→0 chain.
pub const ACTOR_PIPELINE: Workload = Workload {
    name: "actor_pipeline",
    suite: Suite::Actors,
    parallel_target: true,
    source: r#"fn main() {
    int s2 = spawn_actor(stage2, 0);
    int s1 = spawn_actor(stage1, s2);
    for (int i = 0; i < 64; i = i + 1) {
        send(s1, i);
    }
    send(s1, 0 - 1);
    int total = receive();
    join(s1);
    join(s2);
    print(total);
}
fn stage1(int next) {
    while (0 < 1) {
        int v = receive();
        if (v < 0) {
            send(next, v);
            return;
        }
        send(next, v * 2);
    }
}
fn stage2(int unused) {
    int acc = 0;
    while (0 < 1) {
        int v = receive();
        if (v < 0) {
            send(0, acc);
            return;
        }
        acc = acc + v;
    }
}
"#,
    truths: &[LoopTruth {
        marker: "i < 64",
        parallel: false,
        reduction: false,
        note: "feed loop: sends are ordered mailbox writes, not a DOALL",
    }],
};

/// Fan-out/fan-in: main scatters 16 items to each of 8 workers, every
/// worker reduces its batch locally and sends one partial back; main
/// gathers the 8 partials.
pub const ACTOR_FANOUT: Workload = Workload {
    name: "actor_fanout",
    suite: Suite::Actors,
    parallel_target: true,
    source: r#"fn main() {
    int first = spawn_actor(worker, 0);
    for (int k = 1; k < 8; k = k + 1) {
        int c = spawn_actor(worker, k);
    }
    for (int k = 0; k < 8; k = k + 1) {
        for (int j = 0; j < 16; j = j + 1) {
            send(first + k, k * 16 + j);
        }
        send(first + k, 0 - 1);
    }
    int total = 0;
    for (int k = 0; k < 8; k = k + 1) {
        total = total + receive();
    }
    print(total);
}
fn worker(int id) {
    int acc = 0;
    while (0 < 1) {
        int v = receive();
        if (v < 0) {
            send(0, acc);
            return;
        }
        acc = acc + v;
    }
}
"#,
    truths: &[LoopTruth {
        marker: "total + receive",
        parallel: false,
        reduction: false,
        note: "fan-in gather: blocking receives serialize on the mailbox",
    }],
};

/// Token ring: 8 nodes forward an incrementing token for 4 laps; the last
/// node closes the ring back to node 1 and finally delivers the token to
/// main. Adjacent actor ids give the nearest-neighbour channel pattern.
pub const ACTOR_RING: Workload = Workload {
    name: "actor_ring",
    suite: Suite::Actors,
    parallel_target: true,
    source: r#"fn main() {
    int first = spawn_actor(node, 0);
    for (int k = 1; k < 8; k = k + 1) {
        int c = spawn_actor(node, k);
    }
    send(first, 0);
    int token = receive();
    print(token);
}
fn node(int id) {
    int next = id + 2;
    if (id == 7) {
        next = 1;
    }
    int rounds = 0;
    while (rounds < 4) {
        int v = receive();
        rounds = rounds + 1;
        if (id == 7) {
            if (rounds == 4) {
                next = 0;
            }
        }
        send(next, v + 1);
    }
}
"#,
    truths: &[LoopTruth {
        marker: "rounds < 4",
        parallel: false,
        reduction: false,
        note: "lap loop: the token is a serial recurrence through the ring",
    }],
};

/// 10k-actor stress: spawn 10,000 echo actors, round-trip one message
/// through each, then drive a 128-message burst through one bounded
/// mailbox (capacity 64) so the sender parks on backpressure. Exercises
/// O(1) park/wake at scale; the final total is seed-stable.
pub const ACTORS_10K: Workload = Workload {
    name: "actors_10k",
    suite: Suite::Actors,
    parallel_target: true,
    source: r#"fn main() {
    int first = spawn_actor(echo, 0);
    for (int k = 1; k < 10000; k = k + 1) {
        int c = spawn_actor(echo, k);
    }
    int total = 0;
    for (int k = 0; k < 10000; k = k + 1) {
        send(first + k, k);
        total = total + receive();
    }
    int burst = spawn_actor(collector, 0);
    for (int i = 0; i < 128; i = i + 1) {
        send(burst, 1);
    }
    send(burst, 0 - 1);
    total = total + receive();
    print(total);
}
fn echo(int id) {
    int v = receive();
    send(0, v * 2 + 1);
}
fn collector(int unused) {
    int acc = 0;
    while (0 < 1) {
        int v = receive();
        if (v < 0) {
            send(0, acc);
            return;
        }
        acc = acc + v;
    }
}
"#,
    truths: &[LoopTruth {
        marker: "k < 10000",
        parallel: false,
        reduction: false,
        note: "spawn wave: 10k green threads through the run queue",
    }],
};

#[cfg(test)]
mod tests {
    use super::*;

    /// The 10k stress total is the closed form: sum(2k+1, k<10000) = 1e8
    /// plus the 128-message burst.
    #[test]
    fn actors_10k_total_is_closed_form() {
        let p = ACTORS_10K.program().expect("compiles");
        let r = interp::run(&p, interp::NullSink).expect("runs");
        assert_eq!(r.printed, vec!["100000128".to_string()]);
        assert_eq!(r.actors.spawned, 10_002);
    }

    /// Pipeline and ring produce their closed-form answers and the
    /// expected channel matrices.
    #[test]
    fn topologies_compute_and_route_correctly() {
        let p = ACTOR_PIPELINE.program().expect("compiles");
        let r = interp::run(&p, interp::NullSink).expect("runs");
        // sum(2i, i<64) = 2 * 2016
        assert_eq!(r.printed, vec!["4032".to_string()]);
        assert_eq!(r.actors.spawned, 3);
        // main→stage1 (65 incl. sentinel), stage1→stage2 (65), stage2→main.
        assert_eq!(r.actors.channels, vec![(0, 2, 65), (1, 0, 1), (2, 1, 65)]);

        let p = ACTOR_RING.program().expect("compiles");
        let r = interp::run(&p, interp::NullSink).expect("runs");
        // 8 nodes × 4 laps, one increment per hop.
        assert_eq!(r.printed, vec!["32".to_string()]);
        assert_eq!(r.actors.spawned, 9);

        let p = ACTOR_FANOUT.program().expect("compiles");
        let r = interp::run(&p, interp::NullSink).expect("runs");
        // sum(k*16+j over k<8, j<16) = sum(0..127)
        assert_eq!(r.printed, vec!["8128".to_string()]);
        assert_eq!(r.actors.peak_live, 9);
    }
}
