//! `workloads` — benchmark stand-ins for the DiscoPoP evaluation.
//!
//! The dissertation evaluates on SNU NAS, Starbench, BOTS, PARSEC, and
//! several applications (gzip, bzip2, libVorbis, FaceDetection). Those are
//! large C programs this reproduction cannot execute; instead, each
//! benchmark is re-created as a mini-C kernel with the **same loop and
//! dependence structure** — true DOALL loops stay DOALL, reductions stay
//! reductions, recurrences stay recurrences, pipelines stay pipelines (see
//! DESIGN.md for the substitution rationale). Every workload carries a
//! ground-truth annotation per loop, used to score detection quality
//! (Table 4.1's 92.5% headline).
//!
//! The `native` module additionally provides real Rust implementations
//! (sequential + rayon / crossbeam) of the textbook programs and the
//! FaceDetection task graph, used to measure actual speedups for
//! Table 4.2 and Fig. 4.11.

pub mod actors;
pub mod apps;
pub mod bots;
pub mod meta;
pub mod nas;
pub mod native;
pub mod parsec;
pub mod starbench;
pub mod textbook;

pub use meta::{LoopTruth, Suite, Workload};

/// All workloads across every suite.
pub fn all() -> Vec<Workload> {
    let mut v = Vec::new();
    v.extend(nas::suite());
    v.extend(starbench::suite());
    v.extend(bots::suite());
    v.extend(apps::suite());
    v.extend(parsec::suite());
    v.extend(textbook::suite());
    v.extend(actors::suite());
    v
}

/// Workloads of one suite.
pub fn suite(s: Suite) -> Vec<Workload> {
    all().into_iter().filter(|w| w.suite == s).collect()
}

/// Find a workload by name.
pub fn by_name(name: &str) -> Option<Workload> {
    all().into_iter().find(|w| w.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every workload must compile and execute successfully under the
    /// interpreter, and its annotated loop markers must resolve to source
    /// lines.
    #[test]
    fn all_workloads_compile_and_run() {
        for w in all() {
            let prog = w
                .program()
                .unwrap_or_else(|e| panic!("workload `{}` failed to compile: {e}", w.name));
            let r = interp::run(&prog, interp::NullSink)
                .unwrap_or_else(|e| panic!("workload `{}` failed to run: {e}", w.name));
            assert!(r.steps > 0, "workload `{}` did nothing", w.name);
            for t in w.truths {
                assert!(
                    w.line_of(t.marker).is_some(),
                    "workload `{}`: marker `{}` not found",
                    w.name,
                    t.marker
                );
            }
        }
    }

    #[test]
    fn suites_are_populated() {
        assert!(suite(Suite::Nas).len() >= 8);
        assert!(suite(Suite::Starbench).len() >= 10);
        assert!(suite(Suite::Bots).len() >= 9);
        assert!(suite(Suite::Apps).len() >= 4);
        assert!(suite(Suite::Textbook).len() >= 5);
        assert!(suite(Suite::Parsec).len() >= 4);
        assert!(suite(Suite::Actors).len() >= 4);
    }

    #[test]
    fn names_unique() {
        let mut names: Vec<&str> = all().iter().map(|w| w.name).collect();
        let n = names.len();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), n);
    }
}
