//! Sequential and suggestion-parallelized textbook kernels (Table 4.2).
//!
//! Each `_par` version applies precisely the parallelization the discovery
//! pipeline suggests on the mini-C twin: the annotated DOALL loop becomes a
//! rayon parallel iterator; reduction variables become rayon reductions.

use rayon::prelude::*;

/// Mandelbrot escape counts, sequential.
pub fn mandelbrot_seq(w: usize, h: usize, max_iter: u32) -> Vec<u32> {
    let mut img = vec![0u32; w * h];
    for y in 0..h {
        for x in 0..w {
            img[y * w + x] = escape(x, y, w, h, max_iter);
        }
    }
    img
}

/// Mandelbrot with the suggested row-level DOALL parallelization.
pub fn mandelbrot_par(w: usize, h: usize, max_iter: u32) -> Vec<u32> {
    let mut img = vec![0u32; w * h];
    img.par_chunks_mut(w).enumerate().for_each(|(y, row)| {
        for (x, px) in row.iter_mut().enumerate() {
            *px = escape(x, y, w, h, max_iter);
        }
    });
    img
}

fn escape(x: usize, y: usize, w: usize, h: usize, max_iter: u32) -> u32 {
    let cr = x as f64 * 3.0 / w as f64 - 2.0;
    let ci = y as f64 * 2.4 / h as f64 - 1.2;
    let (mut zr, mut zi) = (0.0f64, 0.0f64);
    let mut n = 0;
    while n < max_iter {
        let zr2 = zr * zr - zi * zi + cr;
        zi = 2.0 * zr * zi + ci;
        zr = zr2;
        if zr * zr + zi * zi > 4.0 {
            break;
        }
        n += 1;
    }
    n
}

/// Matrix multiply, sequential (row-major, n×n).
pub fn matmul_seq(a: &[f64], b: &[f64], n: usize) -> Vec<f64> {
    let mut c = vec![0.0; n * n];
    for i in 0..n {
        for j in 0..n {
            let mut s = 0.0;
            for k in 0..n {
                s += a[i * n + k] * b[k * n + j];
            }
            c[i * n + j] = s;
        }
    }
    c
}

/// Matrix multiply with the suggested outer-row DOALL.
pub fn matmul_par(a: &[f64], b: &[f64], n: usize) -> Vec<f64> {
    let mut c = vec![0.0; n * n];
    c.par_chunks_mut(n).enumerate().for_each(|(i, row)| {
        for (j, out) in row.iter_mut().enumerate() {
            let mut s = 0.0;
            for k in 0..n {
                s += a[i * n + k] * b[k * n + j];
            }
            *out = s;
        }
    });
    c
}

/// Histogram, sequential.
pub fn histogram_seq(data: &[u8]) -> [u64; 256] {
    let mut h = [0u64; 256];
    for &d in data {
        h[d as usize] += 1;
    }
    h
}

/// Histogram with the suggested reduction parallelization (per-thread
/// private histograms merged at the end — the privatize-and-reduce
/// transformation of Table 4.3).
pub fn histogram_par(data: &[u8]) -> [u64; 256] {
    data.par_chunks(16 * 1024)
        .map(|chunk| {
            let mut h = [0u64; 256];
            for &d in chunk {
                h[d as usize] += 1;
            }
            h
        })
        .reduce(
            || [0u64; 256],
            |mut a, b| {
                for i in 0..256 {
                    a[i] += b[i];
                }
                a
            },
        )
}

/// Midpoint-rule π, sequential.
pub fn pi_seq(steps: usize) -> f64 {
    let dx = 1.0 / steps as f64;
    let mut acc = 0.0;
    for i in 0..steps {
        let x = (i as f64 + 0.5) * dx;
        acc += 4.0 / (1.0 + x * x);
    }
    acc * dx
}

/// π with the suggested reduction parallelization.
pub fn pi_par(steps: usize) -> f64 {
    let dx = 1.0 / steps as f64;
    let acc: f64 = (0..steps)
        .into_par_iter()
        .map(|i| {
            let x = (i as f64 + 0.5) * dx;
            4.0 / (1.0 + x * x)
        })
        .sum();
    acc * dx
}

/// Merge sort, sequential.
pub fn mergesort_seq(v: &mut [i64]) {
    let n = v.len();
    if n < 2 {
        return;
    }
    let mid = n / 2;
    mergesort_seq(&mut v[..mid]);
    mergesort_seq(&mut v[mid..]);
    merge(v, mid);
}

/// Merge sort with the suggested sibling-task parallelization (rayon join
/// on the two recursive halves).
pub fn mergesort_par(v: &mut [i64]) {
    let n = v.len();
    if n < 2 {
        return;
    }
    if n < 4096 {
        mergesort_seq(v);
        return;
    }
    let mid = n / 2;
    let (lo, hi) = v.split_at_mut(mid);
    rayon::join(|| mergesort_par(lo), || mergesort_par(hi));
    merge(v, mid);
}

fn merge(v: &mut [i64], mid: usize) {
    let mut out = Vec::with_capacity(v.len());
    let (mut i, mut j) = (0, mid);
    while i < mid && j < v.len() {
        if v[i] <= v[j] {
            out.push(v[i]);
            i += 1;
        } else {
            out.push(v[j]);
            j += 1;
        }
    }
    out.extend_from_slice(&v[i..mid]);
    out.extend_from_slice(&v[j..]);
    v.copy_from_slice(&out);
}

/// One n-body force+integrate step, sequential. Returns new positions.
pub fn nbody_seq(pos: &mut [f64], vel: &mut [f64], steps: usize) {
    let n = pos.len();
    let mut force = vec![0.0; n];
    for _ in 0..steps {
        for i in 0..n {
            let mut f = 0.0;
            for j in 0..n {
                if i != j {
                    let d = pos[j] - pos[i];
                    f += d / (d * d + 0.01);
                }
            }
            force[i] = f;
        }
        for i in 0..n {
            vel[i] += force[i] * 0.01;
            pos[i] += vel[i] * 0.01;
        }
    }
}

/// n-body with the suggested per-body DOALL on the force loop.
pub fn nbody_par(pos: &mut [f64], vel: &mut [f64], steps: usize) {
    let n = pos.len();
    let mut force = vec![0.0; n];
    for _ in 0..steps {
        {
            let posr: &[f64] = pos;
            force.par_iter_mut().enumerate().for_each(|(i, f)| {
                let mut acc = 0.0;
                for j in 0..n {
                    if i != j {
                        let d = posr[j] - posr[i];
                        acc += d / (d * d + 0.01);
                    }
                }
                *f = acc;
            });
        }
        for i in 0..n {
            vel[i] += force[i] * 0.01;
            pos[i] += vel[i] * 0.01;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mandelbrot_par_matches_seq() {
        assert_eq!(mandelbrot_seq(64, 48, 100), mandelbrot_par(64, 48, 100));
    }

    #[test]
    fn matmul_par_matches_seq() {
        let n = 24;
        let a: Vec<f64> = (0..n * n).map(|i| (i % 7) as f64).collect();
        let b: Vec<f64> = (0..n * n).map(|i| (i % 5) as f64 * 0.5).collect();
        let s = matmul_seq(&a, &b, n);
        let p = matmul_par(&a, &b, n);
        for (x, y) in s.iter().zip(&p) {
            assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn histogram_par_matches_seq() {
        let data: Vec<u8> = (0..100_000u32).map(|i| (i * 31 % 251) as u8).collect();
        assert_eq!(histogram_seq(&data), histogram_par(&data));
    }

    #[test]
    fn pi_par_matches_seq() {
        let s = pi_seq(100_000);
        let p = pi_par(100_000);
        assert!((s - p).abs() < 1e-9);
        assert!((s - std::f64::consts::PI).abs() < 1e-6);
    }

    #[test]
    fn mergesort_par_sorts() {
        let mut v: Vec<i64> = (0..20_000).map(|i| (i * 7919 % 10_007) as i64).collect();
        let mut w = v.clone();
        mergesort_par(&mut v);
        w.sort();
        assert_eq!(v, w);
    }

    #[test]
    fn nbody_par_matches_seq() {
        let n = 64;
        let mut p1: Vec<f64> = (0..n).map(|i| i as f64 * 0.3).collect();
        let mut v1 = vec![0.0; n];
        let mut p2 = p1.clone();
        let mut v2 = v1.clone();
        nbody_seq(&mut p1, &mut v1, 3);
        nbody_par(&mut p2, &mut v2, 3);
        for (a, b) in p1.iter().zip(&p2) {
            assert!((a - b).abs() < 1e-9);
        }
    }
}
