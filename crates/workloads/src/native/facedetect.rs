//! FaceDetection task-graph execution (Fig. 4.10 / Fig. 4.11).
//!
//! The dissertation's FaceDetection case study parallelizes the application
//! by executing its task graph — per-scale feature passes that are mutually
//! independent — on a thread pool, reaching a speedup of 9.92 with 32
//! threads. This module reproduces the pipeline natively: frames flow
//! through scale → {edge pass ∥ skin pass} per scale → merge, with the
//! independent stages dispatched onto a crossbeam-scoped worker set.

/// Input description for the pipeline.
#[derive(Debug, Clone, Copy)]
pub struct FaceDetectInput {
    /// Number of frames to process.
    pub frames: usize,
    /// Frame side length (pixels = side × side).
    pub side: usize,
    /// Number of detection scales per frame (each contributes two
    /// independent feature passes).
    pub scales: usize,
}

impl Default for FaceDetectInput {
    fn default() -> Self {
        FaceDetectInput {
            frames: 8,
            side: 64,
            scales: 8,
        }
    }
}

fn make_frame(f: usize, side: usize) -> Vec<f32> {
    (0..side * side)
        .map(|i| (((i * 29 + f * 131) % 67) as f32) * 0.015)
        .collect()
}

fn scale_frame(frame: &[f32], factor: usize) -> Vec<f32> {
    frame
        .iter()
        .map(|&v| v * 0.5 / (factor as f32 + 1.0) + 0.25)
        .collect()
}

fn edge_pass(scaled: &[f32]) -> Vec<f32> {
    let mut out = vec![0.0; scaled.len()];
    for i in 1..scaled.len() - 1 {
        out[i] = scaled[i + 1] - scaled[i - 1];
    }
    out
}

fn skin_pass(scaled: &[f32]) -> Vec<f32> {
    scaled.iter().map(|&v| v * v).collect()
}

fn merge_pass(edges: &[f32], skin: &[f32]) -> u64 {
    edges
        .iter()
        .zip(skin)
        .filter(|(&e, &s)| e > 0.001 && s > 0.05)
        .count() as u64
}

/// Run the pipeline with `threads` workers (1 = sequential semantics).
/// Returns total detector hits — identical for every thread count.
pub fn face_detection_pipeline(input: FaceDetectInput, threads: usize) -> u64 {
    let threads = threads.max(1);
    // Work items: (frame, scale) pairs; each runs scale→edge∥skin→merge.
    // With >1 threads the two feature passes of an item also overlap with
    // other items — exactly the task graph DiscoPoP emits for this app.
    let items: Vec<(usize, usize)> = (0..input.frames)
        .flat_map(|f| (0..input.scales).map(move |s| (f, s)))
        .collect();
    let next = std::sync::atomic::AtomicUsize::new(0);
    let total = std::sync::atomic::AtomicU64::new(0);
    crossbeam::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|_| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let (f, s) = items[i];
                let frame = make_frame(f, input.side);
                let scaled = scale_frame(&frame, s);
                // The two independent feature passes (MPMD tasks).
                let (edges, skin) = if threads > 1 {
                    crossbeam::thread::scope(|inner| {
                        let e = inner.spawn(|_| edge_pass(&scaled));
                        let k = skin_pass(&scaled);
                        (e.join().expect("edge pass"), k)
                    })
                    .expect("inner scope")
                } else {
                    (edge_pass(&scaled), skin_pass(&scaled))
                };
                let hits = merge_pass(&edges, &skin);
                total.fetch_add(hits, std::sync::atomic::Ordering::Relaxed);
            });
        }
    })
    .expect("scope");
    total.into_inner()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_thread_counts() {
        let input = FaceDetectInput {
            frames: 4,
            side: 32,
            scales: 4,
        };
        let t1 = face_detection_pipeline(input, 1);
        let t4 = face_detection_pipeline(input, 4);
        let t8 = face_detection_pipeline(input, 8);
        assert_eq!(t1, t4);
        assert_eq!(t1, t8);
        assert!(t1 > 0, "the detector must find something");
    }
}
