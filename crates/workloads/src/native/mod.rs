//! Native Rust implementations used for *measured* speedups.
//!
//! Table 4.2 reports the speedup obtained when the tool's suggestions are
//! applied to textbook programs; Fig. 4.11 reports FaceDetection speedups
//! when its task graph is executed in parallel. This module provides the
//! sequential kernels and parallel versions that follow exactly the
//! suggestions the discovery pipeline emits for the mini-C twins
//! (parallelize the annotated DOALL loop; add a reduction where flagged;
//! run the task graph stages concurrently).

pub mod facedetect;
pub mod kernels;

pub use facedetect::{face_detection_pipeline, FaceDetectInput};
pub use kernels::{
    histogram_par, histogram_seq, mandelbrot_par, mandelbrot_seq, matmul_par, matmul_seq,
    mergesort_par, mergesort_seq, nbody_par, nbody_seq, pi_par, pi_seq,
};
