//! Starbench parallel benchmark suite stand-ins.
//!
//! Sequential versions reproduce the dependence structure of the originals
//! (per-pixel DOALL kernels, reduction phases, bitstream recurrences,
//! wavefront dependences). The `-par` variants are multi-threaded mini-C
//! programs in the style of the pthread versions, used for the Fig. 2.10 /
//! 2.11 experiments (profiling parallel targets) and the §2.3.4 race-hint
//! machinery.

use crate::meta::{LoopTruth, Suite, Workload};

/// All Starbench stand-ins (sequential + parallel variants).
pub fn suite() -> Vec<Workload> {
    vec![
        C_RAY,
        KMEANS,
        MD5,
        RAY_ROT,
        RGBYUV,
        ROTATE,
        ROT_CC,
        STREAMCLUSTER,
        TINYJPEG,
        BODYTRACK,
        H264DEC,
        C_RAY_PAR,
        KMEANS_PAR,
        MD5_PAR,
        ROTATE_PAR,
    ]
}

/// c-ray: per-pixel ray/sphere intersection. Fully DOALL over pixels.
pub const C_RAY: Workload = Workload {
    name: "c-ray",
    suite: Suite::Starbench,
    parallel_target: false,
    source: r#"global float sx[8];
global float sy[8];
global float sr[8];
global float img[1024];
fn trace(int px, int py) -> float {
    float ox = px * 0.0625;
    float oy = py * 0.03125;
    float best = 1000.0;
    for (int s = 0; s < 8; s = s + 1) {
        float dx = ox - sx[s];
        float dy = oy - sy[s];
        float d2 = dx * dx + dy * dy;
        float r2 = sr[s] * sr[s];
        if (d2 < r2) {
            float depth = d2 / (r2 + 0.001);
            if (depth < best) {
                best = depth;
            }
        }
    }
    return best;
}
fn main() {
    for (int s0 = 0; s0 < 8; s0 = s0 + 1) {
        sx[s0] = s0 * 0.4;
        sy[s0] = s0 * 0.2 + 0.1;
        sr[s0] = 0.3 + (s0 % 3) * 0.2;
    }
    for (int y = 0; y < 32; y = y + 1) {
        for (int x = 0; x < 32; x = x + 1) {
            img[y * 32 + x] = trace(x, y);
        }
    }
    print(img[0], img[1023]);
}
"#,
    truths: &[
        LoopTruth {
            marker: "s0 < 8",
            parallel: true,
            reduction: false,
            note: "scene setup",
        },
        LoopTruth {
            marker: "y < 32",
            parallel: true,
            reduction: false,
            note: "scanlines (the parallel loop of c-ray)",
        },
        LoopTruth {
            marker: "x < 32",
            parallel: true,
            reduction: false,
            note: "pixels within a scanline",
        },
    ],
};

/// kmeans: assignment is DOALL; the centroid update is a histogram-style
/// reduction; the outer convergence iteration is sequential.
pub const KMEANS: Workload = Workload {
    name: "kmeans",
    suite: Suite::Starbench,
    parallel_target: false,
    source: r#"global float px[128];
global float py[128];
global int assign[128];
global float cx[4];
global float cy[4];
global float sumx[4];
global float sumy[4];
global int cnt[4];
fn main() {
    srand(5);
    for (int i0 = 0; i0 < 128; i0 = i0 + 1) {
        px[i0] = (rand() % 1000) * 0.001;
        py[i0] = (rand() % 1000) * 0.001;
    }
    for (int c0 = 0; c0 < 4; c0 = c0 + 1) {
        cx[c0] = c0 * 0.25;
        cy[c0] = 1.0 - c0 * 0.25;
    }
    for (int it = 0; it < 4; it = it + 1) {
        for (int i = 0; i < 128; i = i + 1) {
            float bestd = 100.0;
            int bestc = 0;
            for (int c = 0; c < 4; c = c + 1) {
                float dx = px[i] - cx[c];
                float dy = py[i] - cy[c];
                float d = dx * dx + dy * dy;
                if (d < bestd) {
                    bestd = d;
                    bestc = c;
                }
            }
            assign[i] = bestc;
        }
        for (int z = 0; z < 4; z = z + 1) {
            sumx[z] = 0.0;
            sumy[z] = 0.0;
            cnt[z] = 0;
        }
        for (int j = 0; j < 128; j = j + 1) {
            int a = assign[j];
            sumx[a] += px[j];
            sumy[a] += py[j];
            cnt[a] += 1;
        }
        for (int u = 0; u < 4; u = u + 1) {
            if (cnt[u] > 0) {
                cx[u] = sumx[u] / cnt[u];
                cy[u] = sumy[u] / cnt[u];
            }
        }
    }
    print(cx[0], cy[0]);
}
"#,
    truths: &[
        LoopTruth {
            marker: "it < 4",
            parallel: false,
            reduction: false,
            note: "convergence iterations",
        },
        LoopTruth {
            marker: "i < 128",
            parallel: true,
            reduction: false,
            note: "point assignment (the hot loop of kmeans)",
        },
        LoopTruth {
            marker: "j < 128",
            parallel: true,
            reduction: true,
            note: "centroid accumulation (reduction)",
        },
        LoopTruth {
            marker: "u < 4",
            parallel: true,
            reduction: false,
            note: "centroid recomputation",
        },
    ],
};

/// md5: independent buffers hashed by a sequential per-buffer chain.
pub const MD5: Workload = Workload {
    name: "md5",
    suite: Suite::Starbench,
    parallel_target: false,
    source: r#"global int data[1024];
global int digest[16];
fn main() {
    srand(99);
    for (int i0 = 0; i0 < 1024; i0 = i0 + 1) {
        data[i0] = rand() % 256;
    }
    for (int b = 0; b < 16; b = b + 1) {
        int h = 1732584193;
        for (int i = 0; i < 64; i = i + 1) {
            int w = data[b * 64 + i];
            h = ((h << 3) ^ (h >> 5)) + w * 2654435761 + 12345;
            h = h & 1073741823;
        }
        digest[b] = h;
    }
    print(digest[0], digest[15]);
}
"#,
    truths: &[
        LoopTruth {
            marker: "i0 < 1024",
            parallel: true,
            reduction: false,
            note: "buffer fill",
        },
        LoopTruth {
            marker: "b < 16",
            parallel: true,
            reduction: false,
            note: "independent buffers (the parallel loop of md5)",
        },
        LoopTruth {
            marker: "i < 64",
            parallel: false,
            reduction: false,
            note: "hash chain within a buffer",
        },
    ],
};

/// ray-rot: c-ray followed by a rotation — a two-stage pipeline.
pub const RAY_ROT: Workload = Workload {
    name: "ray-rot",
    suite: Suite::Starbench,
    parallel_target: false,
    source: r#"global float img[256];
global float rot[256];
fn main() {
    for (int y = 0; y < 16; y = y + 1) {
        for (int x = 0; x < 16; x = x + 1) {
            float fx = x * 0.125 - 1.0;
            float fy = y * 0.125 - 1.0;
            img[y * 16 + x] = fx * fx + fy * fy;
        }
    }
    for (int ry = 0; ry < 16; ry = ry + 1) {
        for (int rx = 0; rx < 16; rx = rx + 1) {
            rot[rx * 16 + (15 - ry)] = img[ry * 16 + rx];
        }
    }
    print(rot[0], rot[255]);
}
"#,
    truths: &[
        LoopTruth {
            marker: "y < 16",
            parallel: true,
            reduction: false,
            note: "render stage rows",
        },
        LoopTruth {
            marker: "ry < 16",
            parallel: true,
            reduction: false,
            note: "rotate stage rows",
        },
    ],
};

/// rgbyuv: per-pixel colour conversion with temporaries declared outside
/// the loop — the Fig. 4.7 target: DOALL after privatizing r/g/b/y/u/v.
pub const RGBYUV: Workload = Workload {
    name: "rgbyuv",
    suite: Suite::Starbench,
    parallel_target: false,
    source: r#"global int rgb[768];
global int yout[256];
global int uout[256];
global int vout[256];
fn main() {
    srand(7);
    for (int i0 = 0; i0 < 768; i0 = i0 + 1) {
        rgb[i0] = rand() % 256;
    }
    int r = 0;
    int g = 0;
    int b = 0;
    for (int p = 0; p < 256; p = p + 1) {
        r = rgb[p * 3];
        g = rgb[p * 3 + 1];
        b = rgb[p * 3 + 2];
        yout[p] = (66 * r + 129 * g + 25 * b + 4096) >> 8;
        uout[p] = ((0 - 38) * r - 74 * g + 112 * b + 32768) >> 8;
        vout[p] = (112 * r - 94 * g - 18 * b + 32768) >> 8;
    }
    print(yout[0], uout[0], vout[0]);
}
"#,
    truths: &[
        LoopTruth {
            marker: "i0 < 768",
            parallel: true,
            reduction: false,
            note: "input fill",
        },
        LoopTruth {
            marker: "p < 256",
            parallel: true,
            reduction: false,
            note: "pixel conversion; needs r/g/b privatization (Fig. 4.7/4.8)",
        },
    ],
};

/// rotate: pure data movement, fully DOALL.
pub const ROTATE: Workload = Workload {
    name: "rotate",
    suite: Suite::Starbench,
    parallel_target: false,
    source: r#"global float src[1024];
global float dst[1024];
fn main() {
    for (int i0 = 0; i0 < 1024; i0 = i0 + 1) {
        src[i0] = (i0 * 37 % 101) * 0.01;
    }
    for (int y = 0; y < 32; y = y + 1) {
        for (int x = 0; x < 32; x = x + 1) {
            dst[x * 32 + (31 - y)] = src[y * 32 + x];
        }
    }
    print(dst[0]);
}
"#,
    truths: &[
        LoopTruth {
            marker: "i0 < 1024",
            parallel: true,
            reduction: false,
            note: "fill",
        },
        LoopTruth {
            marker: "y < 32",
            parallel: true,
            reduction: false,
            note: "rotation rows (the parallel loop of rotate)",
        },
        LoopTruth {
            marker: "x < 32",
            parallel: true,
            reduction: false,
            note: "rotation columns",
        },
    ],
};

/// rot-cc: rotate then colour-convert — the three-phase structure whose CU
/// graph appears in Fig. 3.6 (two computations serving as barriers).
pub const ROT_CC: Workload = Workload {
    name: "rot-cc",
    suite: Suite::Starbench,
    parallel_target: false,
    source: r#"global float src[256];
global float mid[256];
global float outp[256];
fn main() {
    for (int i0 = 0; i0 < 256; i0 = i0 + 1) {
        src[i0] = (i0 % 16) * 0.0625;
    }
    for (int y = 0; y < 16; y = y + 1) {
        for (int x = 0; x < 16; x = x + 1) {
            mid[x * 16 + (15 - y)] = src[y * 16 + x];
        }
    }
    for (int p = 0; p < 256; p = p + 1) {
        outp[p] = mid[p] * 0.299 + 0.587 * (1.0 - mid[p]);
    }
    print(outp[128]);
}
"#,
    truths: &[
        LoopTruth {
            marker: "i0 < 256",
            parallel: true,
            reduction: false,
            note: "fill",
        },
        LoopTruth {
            marker: "y < 16",
            parallel: true,
            reduction: false,
            note: "rotate phase",
        },
        LoopTruth {
            marker: "p < 256",
            parallel: true,
            reduction: false,
            note: "colour-convert phase",
        },
    ],
};

/// streamcluster: nearest-centre assignment (DOALL) with a cost reduction
/// and a sequential centre-opening decision.
pub const STREAMCLUSTER: Workload = Workload {
    name: "streamcluster",
    suite: Suite::Starbench,
    parallel_target: false,
    source: r#"global float pt[256];
global float ctr[8];
global float cost;
global int nctr;
fn main() {
    srand(31);
    for (int i0 = 0; i0 < 256; i0 = i0 + 1) {
        pt[i0] = (rand() % 1000) * 0.001;
    }
    nctr = 1;
    ctr[0] = 0.5;
    for (int round = 0; round < 4; round = round + 1) {
        cost = 0.0;
        for (int i = 0; i < 256; i = i + 1) {
            float best = 99.0;
            for (int c = 0; c < 8; c = c + 1) {
                if (c < nctr) {
                    float d = pt[i] - ctr[c];
                    if (d < 0.0) {
                        d = 0.0 - d;
                    }
                    if (d < best) {
                        best = d;
                    }
                }
            }
            cost += best;
        }
        if (cost > 20.0) {
            if (nctr < 8) {
                ctr[nctr] = pt[(round * 67) % 256];
                nctr = nctr + 1;
            }
        }
    }
    print(cost, nctr);
}
"#,
    truths: &[
        LoopTruth {
            marker: "round < 4",
            parallel: false,
            reduction: false,
            note: "streaming rounds open centres sequentially",
        },
        LoopTruth {
            marker: "i < 256",
            parallel: true,
            reduction: true,
            note: "per-point nearest centre + cost reduction (hot loop)",
        },
    ],
};

/// tinyjpeg: sequential entropy decode feeding per-block IDCT — a
/// two-stage pipeline where only the second stage is DOALL.
pub const TINYJPEG: Workload = Workload {
    name: "tinyjpeg",
    suite: Suite::Starbench,
    parallel_target: false,
    source: r#"global int stream[512];
global int coeff[512];
global float block[512];
fn main() {
    srand(123);
    for (int i0 = 0; i0 < 512; i0 = i0 + 1) {
        stream[i0] = rand() % 64;
    }
    int state = 1;
    for (int i = 0; i < 512; i = i + 1) {
        state = (state * 5 + stream[i]) % 8191;
        coeff[i] = state % 128;
    }
    for (int b = 0; b < 8; b = b + 1) {
        for (int k = 0; k < 64; k = k + 1) {
            int c = coeff[b * 64 + k];
            block[b * 64 + k] = c * 0.125 + (c % 7) * 0.5;
        }
    }
    print(block[0], block[511]);
}
"#,
    truths: &[
        LoopTruth {
            marker: "i0 < 512",
            parallel: true,
            reduction: false,
            note: "stream fill",
        },
        LoopTruth {
            marker: "i < 512",
            parallel: false,
            reduction: false,
            note: "entropy decode: bitstream state recurrence",
        },
        LoopTruth {
            marker: "b < 8",
            parallel: true,
            reduction: false,
            note: "per-block IDCT (the parallel loop of tinyjpeg)",
        },
        LoopTruth {
            marker: "k < 64",
            parallel: true,
            reduction: false,
            note: "within-block transform",
        },
    ],
};

/// bodytrack: per-particle likelihood (DOALL), weight normalization
/// (reduction), sequential resampling prefix scan.
pub const BODYTRACK: Workload = Workload {
    name: "bodytrack",
    suite: Suite::Starbench,
    parallel_target: false,
    source: r#"global float particle[128];
global float weight[128];
global float cdf[128];
global float wsum;
fn main() {
    srand(17);
    for (int i0 = 0; i0 < 128; i0 = i0 + 1) {
        particle[i0] = (rand() % 100) * 0.01;
    }
    for (int frame = 0; frame < 3; frame = frame + 1) {
        for (int i = 0; i < 128; i = i + 1) {
            float d = particle[i] - 0.5;
            weight[i] = exp(0.0 - d * d * 4.0);
        }
        wsum = 0.0;
        for (int j = 0; j < 128; j = j + 1) {
            wsum += weight[j];
        }
        cdf[0] = weight[0] / wsum;
        for (int k = 1; k < 128; k = k + 1) {
            cdf[k] = cdf[k - 1] + weight[k] / wsum;
        }
        for (int m = 0; m < 128; m = m + 1) {
            particle[m] = cdf[(m * 13) % 128];
        }
    }
    print(wsum);
}
"#,
    truths: &[
        LoopTruth {
            marker: "frame < 3",
            parallel: false,
            reduction: false,
            note: "frames are sequential",
        },
        LoopTruth {
            marker: "i < 128",
            parallel: true,
            reduction: false,
            note: "particle likelihood (the hot loop of bodytrack)",
        },
        LoopTruth {
            marker: "j < 128",
            parallel: true,
            reduction: true,
            note: "weight-sum reduction",
        },
        LoopTruth {
            marker: "k = 1; k < 128",
            parallel: false,
            reduction: false,
            note: "CDF prefix recurrence",
        },
        LoopTruth {
            marker: "m < 128",
            parallel: true,
            reduction: false,
            note: "resampling",
        },
    ],
};

/// h264dec: macroblock wavefront — each block depends on its left and
/// upper neighbours: a DOACROSS pattern.
pub const H264DEC: Workload = Workload {
    name: "h264dec",
    suite: Suite::Starbench,
    parallel_target: false,
    source: r#"global float mb[289];
fn main() {
    for (int i0 = 0; i0 < 17; i0 = i0 + 1) {
        mb[i0] = i0 * 0.1;
        mb[i0 * 17] = i0 * 0.2;
    }
    for (int r = 1; r < 17; r = r + 1) {
        for (int c = 1; c < 17; c = c + 1) {
            mb[r * 17 + c] = 0.5 * mb[r * 17 + c - 1] + 0.5 * mb[(r - 1) * 17 + c] + 0.01;
        }
    }
    print(mb[288]);
}
"#,
    truths: &[
        LoopTruth {
            marker: "i0 < 17",
            parallel: true,
            reduction: false,
            note: "border init",
        },
        LoopTruth {
            marker: "r = 1; r < 17",
            parallel: false,
            reduction: false,
            note: "macroblock rows: wavefront (DOACROSS)",
        },
        LoopTruth {
            marker: "c = 1; c < 17",
            parallel: false,
            reduction: false,
            note: "left-neighbour dependence within a row",
        },
    ],
};

// ---- Multi-threaded (pthread-style) variants for §2.3.4 / Fig. 2.10 ----

/// c-ray pthread version: scanline blocks per thread, no shared writes.
pub const C_RAY_PAR: Workload = Workload {
    name: "c-ray-par",
    suite: Suite::Starbench,
    parallel_target: true,
    source: r#"global float img[1024];
fn render(int t) {
    int lo = t * 8;
    for (int y = 0; y < 8; y = y + 1) {
        for (int x = 0; x < 32; x = x + 1) {
            float fx = x * 0.0625 - 1.0;
            float fy = (lo + y) * 0.0625 - 1.0;
            img[(lo + y) * 32 + x] = fx * fx + fy * fy;
        }
    }
}
fn main() {
    int t0 = spawn(render, 0);
    int t1 = spawn(render, 1);
    int t2 = spawn(render, 2);
    int t3 = spawn(render, 3);
    join(t0);
    join(t1);
    join(t2);
    join(t3);
    print(img[0]);
}
"#,
    truths: &[],
};

/// kmeans pthread version: shared accumulators guarded by a lock.
pub const KMEANS_PAR: Workload = Workload {
    name: "kmeans-par",
    suite: Suite::Starbench,
    parallel_target: true,
    source: r#"global float px[128];
global float sumx[4];
global int cnt[4];
fn accumulate(int t) {
    for (int i = 0; i < 32; i = i + 1) {
        int idx = t * 32 + i;
        int c = idx % 4;
        lock(1);
        sumx[c] += px[idx];
        cnt[c] += 1;
        unlock(1);
    }
}
fn main() {
    srand(5);
    for (int i0 = 0; i0 < 128; i0 = i0 + 1) {
        px[i0] = (rand() % 1000) * 0.001;
    }
    int t0 = spawn(accumulate, 0);
    int t1 = spawn(accumulate, 1);
    int t2 = spawn(accumulate, 2);
    int t3 = spawn(accumulate, 3);
    join(t0);
    join(t1);
    join(t2);
    join(t3);
    print(sumx[0], cnt[0]);
}
"#,
    truths: &[],
};

/// md5 pthread version: each thread hashes its own buffers.
pub const MD5_PAR: Workload = Workload {
    name: "md5-par",
    suite: Suite::Starbench,
    parallel_target: true,
    source: r#"global int data[1024];
global int digest[16];
fn hash(int t) {
    for (int b = 0; b < 4; b = b + 1) {
        int blk = t * 4 + b;
        int h = 1732584193;
        for (int i = 0; i < 64; i = i + 1) {
            h = ((h << 3) ^ (h >> 5)) + data[blk * 64 + i] * 2654435761 + 12345;
            h = h & 1073741823;
        }
        digest[blk] = h;
    }
}
fn main() {
    srand(99);
    for (int i0 = 0; i0 < 1024; i0 = i0 + 1) {
        data[i0] = rand() % 256;
    }
    int t0 = spawn(hash, 0);
    int t1 = spawn(hash, 1);
    int t2 = spawn(hash, 2);
    int t3 = spawn(hash, 3);
    join(t0);
    join(t1);
    join(t2);
    join(t3);
    print(digest[0]);
}
"#,
    truths: &[],
};

/// rotate pthread version with an unsynchronized shared progress counter —
/// deliberately racy, to exercise the race-hint machinery.
pub const ROTATE_PAR: Workload = Workload {
    name: "rotate-par",
    suite: Suite::Starbench,
    parallel_target: true,
    source: r#"global float src[1024];
global float dst[1024];
global int progress;
fn rot(int t) {
    for (int y = 0; y < 8; y = y + 1) {
        int row = t * 8 + y;
        for (int x = 0; x < 32; x = x + 1) {
            dst[x * 32 + (31 - row)] = src[row * 32 + x];
        }
        progress = progress + 1;
    }
}
fn main() {
    for (int i0 = 0; i0 < 1024; i0 = i0 + 1) {
        src[i0] = (i0 % 64) * 0.015625;
    }
    int t0 = spawn(rot, 0);
    int t1 = spawn(rot, 1);
    int t2 = spawn(rot, 2);
    int t3 = spawn(rot, 3);
    join(t0);
    join(t1);
    join(t2);
    join(t3);
    print(progress);
}
"#,
    truths: &[],
};

#[cfg(test)]
mod tests {
    use super::*;
    use discovery::LoopClass;

    fn classify(w: &Workload, marker: &str) -> LoopClass {
        let p = w.program().unwrap();
        let out = profiler::profile_program(&p).unwrap();
        let d = discovery::discover(&p, &out.deps, &out.pet);
        let line = w.line_of(marker).unwrap();
        d.loops
            .iter()
            .find(|l| l.info.start_line == line)
            .unwrap_or_else(|| panic!("loop at line {line} not analysed"))
            .class
    }

    #[test]
    fn c_ray_scanlines_doall() {
        assert_eq!(classify(&C_RAY, "y < 32"), LoopClass::Doall);
    }

    #[test]
    fn md5_chain_not_parallel_buffers_parallel() {
        assert_eq!(classify(&MD5, "b < 16"), LoopClass::Doall);
        assert!(matches!(
            classify(&MD5, "i < 64"),
            LoopClass::Doacross | LoopClass::Sequential
        ));
    }

    #[test]
    fn h264_wavefront_not_doall() {
        assert!(matches!(
            classify(&H264DEC, "c = 1; c < 17"),
            LoopClass::Doacross | LoopClass::Sequential
        ));
    }

    #[test]
    fn rgbyuv_needs_privatization_but_parallel() {
        let w = &RGBYUV;
        let p = w.program().unwrap();
        let out = profiler::profile_program(&p).unwrap();
        let d = discovery::discover(&p, &out.deps, &out.pet);
        let line = w.line_of("p < 256").unwrap();
        let l = d.loops.iter().find(|l| l.info.start_line == line).unwrap();
        assert_eq!(l.class, LoopClass::Doall, "{l:?}");
        // Privatization advice must name the shared temporaries.
        let loops = discovery::hot_loops(&p, &out.pet);
        let target = loops.iter().find(|x| x.start_line == line).unwrap();
        let privs = discovery::doall::privatization_candidates(&p, &out.deps, target);
        assert!(privs.contains(&"r".to_string()), "{privs:?}");
    }

    #[test]
    fn parallel_variants_run_and_profile() {
        for w in [&C_RAY_PAR, &KMEANS_PAR, &MD5_PAR, &ROTATE_PAR] {
            let p = w.program().unwrap();
            let out = profiler::profile_multithreaded_target(
                &p,
                profiler::ParallelConfig {
                    workers: 4,
                    ..Default::default()
                },
                interp::RunConfig::default(),
            )
            .unwrap();
            assert!(!out.deps.is_empty(), "{} produced no deps", w.name);
        }
    }
}
