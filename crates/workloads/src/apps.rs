//! Open-source application stand-ins: gzip, bzip2 (Table 4.5), the
//! histogram program (Table 4.3), libVorbis and FaceDetection (Table 4.7 /
//! Fig. 4.10).

use crate::meta::{LoopTruth, Suite, Workload};

/// All application stand-ins.
pub fn suite() -> Vec<Workload> {
    vec![GZIP, BZIP2, HISTOGRAM, LIBVORBIS, FACEDETECTION]
}

/// gzip: per-block deflate. Within a block the LZ window match is a
/// recurrence; across blocks compression is independent — the pigz-style
/// opportunity Table 4.5 reports as the key suggestion.
pub const GZIP: Workload = Workload {
    name: "gzip",
    suite: Suite::Apps,
    parallel_target: false,
    source: r#"global int input[1024];
global int outlen[8];
fn deflate(int blk) -> int {
    int base = blk * 128;
    int produced = 0;
    int prev = 0;
    for (int i = 0; i < 128; i = i + 1) {
        int sym = input[base + i];
        if (sym == prev) {
            produced = produced + 1;
        } else {
            produced = produced + 2;
        }
        prev = sym;
    }
    return produced;
}
fn main() {
    srand(1951);
    for (int i0 = 0; i0 < 1024; i0 = i0 + 1) {
        input[i0] = rand() % 16;
    }
    for (int b = 0; b < 8; b = b + 1) {
        outlen[b] = deflate(b);
    }
    print(outlen[0], outlen[7]);
}
"#,
    truths: &[
        LoopTruth {
            marker: "i0 < 1024",
            parallel: true,
            reduction: false,
            note: "input fill",
        },
        LoopTruth {
            marker: "b < 8",
            parallel: true,
            reduction: false,
            note: "independent blocks — the pigz-style key opportunity",
        },
        LoopTruth {
            marker: "i < 128",
            parallel: false,
            reduction: false,
            note: "LZ window recurrence within a block",
        },
    ],
};

/// bzip2: per-block transform (sort passes + MTF recurrence). Blocks are
/// independent (the bzip2smp opportunity of Table 4.5).
pub const BZIP2: Workload = Workload {
    name: "bzip2",
    suite: Suite::Apps,
    parallel_target: false,
    source: r#"global int data[512];
global int mtf[512];
global int checksum[4];
fn compress_block(int blk) -> int {
    int base = blk * 128;
    int state = 0;
    for (int i = 0; i < 128; i = i + 1) {
        state = (state * 3 + data[base + i]) % 251;
        mtf[base + i] = state;
    }
    int sum = 0;
    for (int j = 0; j < 128; j = j + 1) {
        sum += mtf[base + j];
    }
    return sum;
}
fn main() {
    srand(1996);
    for (int i0 = 0; i0 < 512; i0 = i0 + 1) {
        data[i0] = rand() % 256;
    }
    for (int b = 0; b < 4; b = b + 1) {
        checksum[b] = compress_block(b);
    }
    print(checksum[0], checksum[3]);
}
"#,
    truths: &[
        LoopTruth {
            marker: "b < 4",
            parallel: true,
            reduction: false,
            note: "independent blocks — the bzip2smp opportunity",
        },
        LoopTruth {
            marker: "i < 128",
            parallel: false,
            reduction: false,
            note: "MTF state recurrence",
        },
        LoopTruth {
            marker: "j < 128",
            parallel: true,
            reduction: true,
            note: "block checksum reduction",
        },
    ],
};

/// The histogram visualization program of Table 4.3.
pub const HISTOGRAM: Workload = Workload {
    name: "histogram",
    suite: Suite::Apps,
    parallel_target: false,
    source: r#"global int image[1024];
global int hist[64];
global int cdf[64];
fn main() {
    srand(42);
    for (int i0 = 0; i0 < 1024; i0 = i0 + 1) {
        image[i0] = rand() % 64;
    }
    for (int i = 0; i < 1024; i = i + 1) {
        hist[image[i]] += 1;
    }
    cdf[0] = hist[0];
    for (int b = 1; b < 64; b = b + 1) {
        cdf[b] = cdf[b - 1] + hist[b];
    }
    for (int p = 0; p < 1024; p = p + 1) {
        image[p] = (cdf[image[p]] * 63) / 1024;
    }
    print(hist[0], cdf[63]);
}
"#,
    truths: &[
        LoopTruth {
            marker: "i0 < 1024",
            parallel: true,
            reduction: false,
            note: "image fill",
        },
        LoopTruth {
            marker: "i < 1024",
            parallel: true,
            reduction: true,
            note: "histogram accumulation (reduction on hist)",
        },
        LoopTruth {
            marker: "b = 1; b < 64",
            parallel: false,
            reduction: false,
            note: "CDF prefix recurrence",
        },
        LoopTruth {
            marker: "p < 1024",
            parallel: true,
            reduction: false,
            note: "equalization remap",
        },
    ],
};

/// libVorbis: packet decode (sequential bitstream), per-channel synthesis
/// (independent), overlap-add (DOALL) — the MPMD channels of Table 4.7.
pub const LIBVORBIS: Workload = Workload {
    name: "libvorbis",
    suite: Suite::Apps,
    parallel_target: false,
    source: r#"global int packet[256];
global float left[256];
global float right[256];
global float pcm[256];
fn synth_left() {
    for (int i = 0; i < 256; i = i + 1) {
        left[i] = packet[i] * 0.01 + 0.1;
    }
}
fn synth_right() {
    for (int i = 0; i < 256; i = i + 1) {
        right[i] = packet[i] * 0.012 - 0.05;
    }
}
fn main() {
    srand(3);
    int state = 7;
    for (int d = 0; d < 256; d = d + 1) {
        state = (state * 9 + d) % 127;
        packet[d] = state;
    }
    synth_left();
    synth_right();
    for (int m = 0; m < 256; m = m + 1) {
        pcm[m] = left[m] * 0.5 + right[m] * 0.5;
    }
    print(pcm[0], pcm[255]);
}
"#,
    truths: &[
        LoopTruth {
            marker: "d < 256",
            parallel: false,
            reduction: false,
            note: "bitstream decode recurrence",
        },
        LoopTruth {
            marker: "m < 256",
            parallel: true,
            reduction: false,
            note: "overlap-add mix",
        },
    ],
};

/// FaceDetection: the Fig. 4.10 pipeline — scale, two independent feature
/// passes per scale, then a merge. The CU task graph drives the Fig. 4.11
/// parallelization (implemented natively in `crate::native::facedetect`).
pub const FACEDETECTION: Workload = Workload {
    name: "facedetection",
    suite: Suite::Apps,
    parallel_target: false,
    source: r#"global float frame[256];
global float scaled[256];
global float edges[256];
global float skin[256];
global int hits;
fn scale_frame() {
    for (int i = 0; i < 256; i = i + 1) {
        scaled[i] = frame[i] * 0.5 + 0.25;
    }
}
fn edge_pass() {
    for (int i = 1; i < 255; i = i + 1) {
        edges[i] = scaled[i + 1] - scaled[i - 1];
    }
}
fn skin_pass() {
    for (int i = 0; i < 256; i = i + 1) {
        skin[i] = scaled[i] * scaled[i];
    }
}
fn merge_pass() {
    hits = 0;
    for (int i = 1; i < 255; i = i + 1) {
        if (edges[i] > 0.1) {
            if (skin[i] > 0.2) {
                hits = hits + 1;
            }
        }
    }
}
fn main() {
    for (int i0 = 0; i0 < 256; i0 = i0 + 1) {
        frame[i0] = ((i0 * 29) % 67) * 0.015;
    }
    scale_frame();
    edge_pass();
    skin_pass();
    merge_pass();
    print(hits);
}
"#,
    truths: &[LoopTruth {
        marker: "i0 < 256",
        parallel: true,
        reduction: false,
        note: "frame fill",
    }],
};

#[cfg(test)]
mod tests {
    use super::*;
    use discovery::{LoopClass, SpmdKind};

    #[test]
    fn gzip_blocks_suggested_as_tasks() {
        let p = GZIP.program().unwrap();
        let out = profiler::profile_program(&p).unwrap();
        let d = discovery::discover(&p, &out.deps, &out.pet);
        let line = GZIP.line_of("b < 8").unwrap();
        let l = d.loops.iter().find(|l| l.info.start_line == line).unwrap();
        assert_eq!(l.class, LoopClass::Doall, "{l:?}");
        assert!(
            d.spmd
                .iter()
                .any(|s| s.kind == SpmdKind::LoopTask
                    && s.callees.contains(&"deflate".to_string())),
            "{:?}",
            d.spmd
        );
    }

    #[test]
    fn histogram_loop_is_reduction() {
        let p = HISTOGRAM.program().unwrap();
        let out = profiler::profile_program(&p).unwrap();
        let d = discovery::discover(&p, &out.deps, &out.pet);
        let line = HISTOGRAM.line_of("i < 1024").unwrap();
        let l = d.loops.iter().find(|l| l.info.start_line == line).unwrap();
        assert_eq!(l.class, LoopClass::Reduction, "{l:?}");
    }

    #[test]
    fn facedetection_feature_passes_are_independent_tasks() {
        let p = FACEDETECTION.program().unwrap();
        let out = profiler::profile_program(&p).unwrap();
        let d = discovery::discover(&p, &out.deps, &out.pet);
        // edge_pass and skin_pass read `scaled` and write disjoint outputs:
        // sibling tasks.
        assert!(
            d.spmd.iter().any(|s| {
                s.kind == SpmdKind::SiblingCalls
                    && s.callees.contains(&"edge_pass".to_string())
                    && s.callees.contains(&"skin_pass".to_string())
            }),
            "{:?}",
            d.spmd
        );
    }

    #[test]
    fn libvorbis_channels_are_independent_tasks() {
        let p = LIBVORBIS.program().unwrap();
        let out = profiler::profile_program(&p).unwrap();
        let d = discovery::discover(&p, &out.deps, &out.pet);
        assert!(
            d.spmd.iter().any(|s| {
                s.kind == SpmdKind::SiblingCalls
                    && s.callees.contains(&"synth_left".to_string())
                    && s.callees.contains(&"synth_right".to_string())
            }),
            "{:?}",
            d.spmd
        );
    }
}
