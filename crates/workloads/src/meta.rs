//! Workload metadata: suites, ground-truth annotations, helpers.

/// Benchmark suite a workload belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Suite {
    /// SNU NAS Parallel Benchmarks stand-ins (BT, CG, EP, FT, IS, LU, MG, SP).
    Nas,
    /// Starbench stand-ins (c-ray, kmeans, md5, …).
    Starbench,
    /// Barcelona OpenMP Task Suite stand-ins (fib, nqueens, sort, …).
    Bots,
    /// Open-source applications (gzip, bzip2, libVorbis, FaceDetection, histogram).
    Apps,
    /// PARSEC stand-ins and splash2x-style parallel programs.
    Parsec,
    /// Textbook programs of Table 4.2.
    Textbook,
    /// Actor scenarios: message-passing topologies over the run-queue
    /// scheduler (pipeline, fan-out/fan-in, ring, 10k-actor stress).
    Actors,
}

impl std::fmt::Display for Suite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Suite::Nas => "NAS",
            Suite::Starbench => "Starbench",
            Suite::Bots => "BOTS",
            Suite::Apps => "Apps",
            Suite::Parsec => "PARSEC",
            Suite::Textbook => "Textbook",
            Suite::Actors => "Actors",
        };
        write!(f, "{s}")
    }
}

/// Ground truth for one loop, identified by a unique substring of its
/// header line (robust against line renumbering).
#[derive(Debug, Clone, Copy)]
pub struct LoopTruth {
    /// Unique substring of the loop header's source line.
    pub marker: &'static str,
    /// True if the loop is parallelizable (DOALL or with reduction/
    /// privatization clauses).
    pub parallel: bool,
    /// True if parallelization requires a reduction clause.
    pub reduction: bool,
    /// Human note (what the loop is).
    pub note: &'static str,
}

/// One benchmark stand-in.
#[derive(Debug, Clone, Copy)]
pub struct Workload {
    /// Short name (matches the paper's benchmark name where applicable).
    pub name: &'static str,
    /// Suite.
    pub suite: Suite,
    /// mini-C source.
    pub source: &'static str,
    /// Ground-truth loop annotations (the paper's "annotated in the
    /// parallel version" reference points).
    pub truths: &'static [LoopTruth],
    /// True when the program is multi-threaded (uses spawn/lock).
    pub parallel_target: bool,
}

impl Workload {
    /// Compile to an executable program.
    pub fn program(&self) -> Result<interp::Program, lang::CompileError> {
        Ok(interp::Program::new(lang::compile(self.source, self.name)?))
    }

    /// Resolve a marker to its 1-based source line.
    pub fn line_of(&self, marker: &str) -> Option<u32> {
        self.source
            .lines()
            .position(|l| l.contains(marker))
            .map(|i| i as u32 + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_of_resolves() {
        let w = Workload {
            name: "t",
            suite: Suite::Textbook,
            source: "fn main() {\nint x = 0;\n}",
            truths: &[],
            parallel_target: false,
        };
        assert_eq!(w.line_of("int x"), Some(2));
        assert_eq!(w.line_of("nope"), None);
    }
}
