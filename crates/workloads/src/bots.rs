//! Barcelona OpenMP Task Suite (BOTS) stand-ins — the §4.4.3 SPMD-task
//! evaluation targets (Table 4.6).

use crate::meta::{LoopTruth, Suite, Workload};

/// All BOTS stand-ins.
pub fn suite() -> Vec<Workload> {
    vec![
        FIB, NQUEENS, SORT, FFT, STRASSEN, SPARSELU, HEALTH, FLOORPLAN, ALIGNMENT, UTS,
    ]
}

/// fib: the canonical two-independent-recursive-calls task pattern
/// (Fig. 4.3).
pub const FIB: Workload = Workload {
    name: "fib",
    suite: Suite::Bots,
    parallel_target: false,
    source: r#"fn fib(int n) -> int {
    if (n < 2) {
        return n;
    }
    int a = fib(n - 1);
    int b = fib(n - 2);
    return a + b;
}
fn main() {
    int r = fib(12);
    print(r);
}
"#,
    truths: &[],
};

/// nqueens: per-row placement trials calling a pure recursive solver —
/// the loop-of-tasks pattern of Fig. 4.2.
pub const NQUEENS: Workload = Workload {
    name: "nqueens",
    suite: Suite::Bots,
    parallel_target: false,
    source: r#"fn nq(int n, int ld, int cols, int rd) -> int {
    int full = (1 << n) - 1;
    if (cols == full) {
        return 1;
    }
    int cnt = 0;
    for (int r = 0; r < n; r = r + 1) {
        int bit = 1 << r;
        int blocked = (ld | cols | rd) & bit;
        if (blocked == 0) {
            cnt += nq(n, (ld | bit) << 1, cols | bit, (rd | bit) >> 1);
        }
    }
    return cnt;
}
fn main() {
    int solutions = nq(6, 0, 0, 0);
    print(solutions);
}
"#,
    truths: &[LoopTruth {
        marker: "r < n",
        parallel: true,
        reduction: true,
        note: "row-placement trials: independent tasks + count reduction",
    }],
};

/// sort: recursive merge sort over a global array. The recursive splits are
/// tasks in BOTS; our static Bernstein check is conservative on shared-
/// array recursion (see EXPERIMENTS.md), but the merge-pass loop structure
/// is reproduced.
pub const SORT: Workload = Workload {
    name: "sort",
    suite: Suite::Bots,
    parallel_target: false,
    source: r#"global int a[256];
global int tmp[256];
fn merge(int lo, int mid, int hi) {
    int i = lo;
    int j = mid;
    for (int k = lo; k < hi; k = k + 1) {
        int takeleft = 0;
        if (i < mid) {
            if (j >= hi) {
                takeleft = 1;
            } else {
                if (a[i] <= a[j]) {
                    takeleft = 1;
                }
            }
        }
        if (takeleft == 1) {
            tmp[k] = a[i];
            i = i + 1;
        } else {
            tmp[k] = a[j];
            j = j + 1;
        }
    }
    for (int c = lo; c < hi; c = c + 1) {
        a[c] = tmp[c];
    }
}
fn msort(int lo, int hi) {
    if (hi - lo < 2) {
        return;
    }
    int mid = (lo + hi) / 2;
    msort(lo, mid);
    msort(mid, hi);
    merge(lo, mid, hi);
}
fn main() {
    srand(2024);
    for (int i0 = 0; i0 < 256; i0 = i0 + 1) {
        a[i0] = rand() % 1000;
    }
    msort(0, 256);
    print(a[0], a[255]);
}
"#,
    truths: &[LoopTruth {
        marker: "c = lo; c < hi",
        parallel: true,
        reduction: false,
        note: "copy-back within merge",
    }],
};

/// fft: independent twiddle blocks, the Fig. 4.9 `fft_twiddle_16` shape.
pub const FFT: Workload = Workload {
    name: "fft-bots",
    suite: Suite::Bots,
    parallel_target: false,
    source: r#"global float re[256];
global float im[256];
fn twiddle(int blk) {
    int base = blk * 16;
    for (int k = 0; k < 16; k = k + 1) {
        float c = cos(k * 0.3926990817);
        float s = sin(k * 0.3926990817);
        float x = re[base + k];
        float y = im[base + k];
        re[base + k] = x * c - y * s;
        im[base + k] = x * s + y * c;
    }
}
fn main() {
    for (int i0 = 0; i0 < 256; i0 = i0 + 1) {
        re[i0] = (i0 % 8) * 0.125;
        im[i0] = 0.0;
    }
    for (int b = 0; b < 16; b = b + 1) {
        twiddle(b);
    }
    print(re[0], im[255]);
}
"#,
    truths: &[
        LoopTruth {
            marker: "i0 < 256",
            parallel: true,
            reduction: false,
            note: "init",
        },
        LoopTruth {
            marker: "b < 16",
            parallel: true,
            reduction: false,
            note: "independent twiddle blocks (task loop, Fig. 4.9)",
        },
        LoopTruth {
            marker: "k < 16",
            parallel: true,
            reduction: false,
            note: "within-block butterflies",
        },
    ],
};

/// strassen: one level of the seven independent sub-multiplications, each
/// writing its own temporary — sibling tasks with disjoint global sets.
pub const STRASSEN: Workload = Workload {
    name: "strassen",
    suite: Suite::Bots,
    parallel_target: false,
    source: r#"global float A[64];
global float B[64];
global float M1[16];
global float M2[16];
global float M3[16];
global float C[64];
fn mul1() {
    for (int i = 0; i < 4; i = i + 1) {
        for (int j = 0; j < 4; j = j + 1) {
            float s = 0.0;
            for (int k = 0; k < 4; k = k + 1) {
                s += (A[i * 8 + k] + A[36 + i * 8 + k]) * (B[k * 8 + j] + B[36 + k * 8 + j]);
            }
            M1[i * 4 + j] = s;
        }
    }
}
fn mul2() {
    for (int i = 0; i < 4; i = i + 1) {
        for (int j = 0; j < 4; j = j + 1) {
            float s = 0.0;
            for (int k = 0; k < 4; k = k + 1) {
                s += (A[32 + i * 8 + k] + A[36 + i * 8 + k]) * B[k * 8 + j];
            }
            M2[i * 4 + j] = s;
        }
    }
}
fn mul3() {
    for (int i = 0; i < 4; i = i + 1) {
        for (int j = 0; j < 4; j = j + 1) {
            float s = 0.0;
            for (int k = 0; k < 4; k = k + 1) {
                s += A[i * 8 + k] * (B[k * 8 + 4 + j] - B[36 + k * 8 + j]);
            }
            M3[i * 4 + j] = s;
        }
    }
}
fn main() {
    for (int i0 = 0; i0 < 64; i0 = i0 + 1) {
        A[i0] = (i0 % 7) * 0.5;
        B[i0] = (i0 % 5) * 0.25;
    }
    mul1();
    mul2();
    mul3();
    for (int c = 0; c < 16; c = c + 1) {
        C[c] = M1[c] + M2[c] - M3[c];
    }
    print(C[0]);
}
"#,
    truths: &[LoopTruth {
        marker: "c < 16",
        parallel: true,
        reduction: false,
        note: "combine phase",
    }],
};

/// sparselu: block LU — sequential diagonal factorization, parallel panel
/// and interior updates per step.
pub const SPARSELU: Workload = Workload {
    name: "sparselu",
    suite: Suite::Bots,
    parallel_target: false,
    source: r#"global float blkval[256];
fn update(int bi, int bj, int bk) {
    for (int i = 0; i < 4; i = i + 1) {
        for (int j = 0; j < 4; j = j + 1) {
            float s = 0.0;
            for (int k = 0; k < 4; k = k + 1) {
                s += blkval[(bi * 4 + i) * 16 + bk * 4 + k] * blkval[(bk * 4 + k) * 16 + bj * 4 + j];
            }
            blkval[(bi * 4 + i) * 16 + bj * 4 + j] -= s * 0.1;
        }
    }
}
fn main() {
    for (int i0 = 0; i0 < 256; i0 = i0 + 1) {
        blkval[i0] = ((i0 * 13) % 29) * 0.1 + 1.0;
    }
    for (int step = 0; step < 3; step = step + 1) {
        for (int bi = step + 1; bi < 4; bi = bi + 1) {
            for (int bj = step + 1; bj < 4; bj = bj + 1) {
                update(bi, bj, step);
            }
        }
    }
    print(blkval[255]);
}
"#,
    truths: &[
        LoopTruth {
            marker: "step < 3",
            parallel: false,
            reduction: false,
            note: "elimination steps",
        },
        LoopTruth {
            marker: "bi = step + 1",
            parallel: true,
            reduction: false,
            note: "interior block updates (the task loop of sparselu)",
        },
    ],
};

/// health: per-village patient simulation with village-private state.
pub const HEALTH: Workload = Workload {
    name: "health",
    suite: Suite::Bots,
    parallel_target: false,
    source: r#"global int patients[160];
global int treated[16];
fn main() {
    srand(404);
    for (int i0 = 0; i0 < 160; i0 = i0 + 1) {
        patients[i0] = rand() % 100;
    }
    for (int tstep = 0; tstep < 4; tstep = tstep + 1) {
        for (int v = 0; v < 16; v = v + 1) {
            int sick = 0;
            for (int pp = 0; pp < 10; pp = pp + 1) {
                int sev = patients[v * 10 + pp];
                if (sev > 50) {
                    sick = sick + 1;
                    patients[v * 10 + pp] = sev - 10;
                } else {
                    patients[v * 10 + pp] = sev + 1;
                }
            }
            treated[v] += sick;
        }
    }
    print(treated[0]);
}
"#,
    truths: &[
        LoopTruth {
            marker: "tstep < 4",
            parallel: false,
            reduction: false,
            note: "simulation steps",
        },
        LoopTruth {
            marker: "v < 16",
            parallel: true,
            reduction: false,
            note: "independent villages (the task loop of health)",
        },
        LoopTruth {
            marker: "pp < 10",
            parallel: true,
            reduction: true,
            note: "per-patient updates with a sick-count reduction",
        },
    ],
};

/// floorplan: branch-and-bound over placements with a global best bound
/// maintained via `min` — a reduction.
pub const FLOORPLAN: Workload = Workload {
    name: "floorplan",
    suite: Suite::Bots,
    parallel_target: false,
    source: r#"global int best;
fn area(int x, int w) -> int {
    return (x % w + 1) * ((x / w) % w + 3) + (x % 13);
}
fn main() {
    best = 100000;
    for (int cand = 0; cand < 256; cand = cand + 1) {
        int a = area(cand, 7);
        best = min(best, a);
    }
    print(best);
}
"#,
    truths: &[LoopTruth {
        marker: "cand < 256",
        parallel: true,
        reduction: true,
        note: "candidate evaluation with min-reduction bound",
    }],
};

/// alignment: all independent sequence pairs, each scored by a small
/// dynamic program over locals.
pub const ALIGNMENT: Workload = Workload {
    name: "alignment",
    suite: Suite::Bots,
    parallel_target: false,
    source: r#"global int seqs[256];
global int score[16];
fn score_pair(int pair) -> int {
    int i = pair / 4;
    int j = pair % 4;
    int s = 0;
    for (int k = 0; k < 16; k = k + 1) {
        int a = seqs[i * 16 + k];
        int b = seqs[j * 16 + 64 + k];
        int delta = 0 - 1;
        if (a == b) {
            delta = 2;
        }
        s = s + delta;
    }
    return s;
}
fn main() {
    srand(55);
    for (int i0 = 0; i0 < 256; i0 = i0 + 1) {
        seqs[i0] = rand() % 4;
    }
    for (int p = 0; p < 16; p = p + 1) {
        score[p] = score_pair(p);
    }
    print(score[0], score[15]);
}
"#,
    truths: &[
        LoopTruth {
            marker: "p < 16",
            parallel: true,
            reduction: false,
            note: "independent pair scoring (the task loop of alignment)",
        },
        LoopTruth {
            marker: "k < 16",
            parallel: true,
            reduction: true,
            note: "per-pair score accumulation",
        },
    ],
};

/// uts: unbalanced tree search — pure recursion with a deterministic
/// branching function; sibling subtree expansions are independent tasks.
pub const UTS: Workload = Workload {
    name: "uts",
    suite: Suite::Bots,
    parallel_target: false,
    source: r#"fn expand(int node, int depth) -> int {
    if (depth >= 5) {
        return 1;
    }
    int children = (node * 2654435761) % 4;
    if (children < 0) {
        children = 0 - children;
    }
    int total = 1;
    for (int c = 0; c < children; c = c + 1) {
        total += expand(node * 4 + c + 1, depth + 1);
    }
    return total;
}
fn main() {
    int nodes = expand(1, 0);
    print(nodes);
}
"#,
    truths: &[LoopTruth {
        marker: "c < children",
        parallel: true,
        reduction: true,
        note: "child subtree expansion: independent tasks + node count",
    }],
};

#[cfg(test)]
mod tests {
    use super::*;
    use discovery::{LoopClass, SpmdKind};

    fn discover(w: &Workload) -> (interp::Program, discovery::Discovery) {
        let p = w.program().unwrap();
        let out = profiler::profile_program(&p).unwrap();
        let d = discovery::discover(&p, &out.deps, &out.pet);
        (p, d)
    }

    #[test]
    fn fib_computes_and_yields_sibling_tasks() {
        let p = FIB.program().unwrap();
        let r = interp::run(&p, interp::NullSink).unwrap();
        assert_eq!(r.printed[0], "144");
        let (_, d) = discover(&FIB);
        assert!(
            d.spmd.iter().any(|s| s.kind == SpmdKind::SiblingCalls),
            "{:?}",
            d.spmd
        );
    }

    #[test]
    fn nqueens_solves_and_yields_loop_task() {
        let p = NQUEENS.program().unwrap();
        let r = interp::run(&p, interp::NullSink).unwrap();
        assert_eq!(r.printed[0], "4", "6-queens has 4 solutions");
        let (_, d) = discover(&NQUEENS);
        assert!(
            d.spmd
                .iter()
                .any(|s| s.kind == SpmdKind::LoopTask && s.callees.contains(&"nq".to_string())),
            "{:?}",
            d.spmd
        );
    }

    #[test]
    fn sort_sorts() {
        let p = SORT.program().unwrap();
        let r = interp::run(&p, interp::NullSink).unwrap();
        let parts: Vec<i64> = r.printed[0]
            .split(' ')
            .map(|s| s.parse().unwrap())
            .collect();
        assert!(parts[0] <= parts[1]);
    }

    #[test]
    fn strassen_muls_are_independent_tasks() {
        let (_, d) = discover(&STRASSEN);
        let sib: Vec<_> = d
            .spmd
            .iter()
            .filter(|s| s.kind == SpmdKind::SiblingCalls)
            .collect();
        assert!(
            sib.iter().any(|s| s.callees.contains(&"mul1".to_string())
                || s.callees.contains(&"mul2".to_string())),
            "{:?}",
            d.spmd
        );
    }

    #[test]
    fn fft_twiddle_loop_task() {
        let (_, d) = discover(&FFT);
        assert!(
            d.spmd
                .iter()
                .any(|s| s.kind == SpmdKind::LoopTask
                    && s.callees.contains(&"twiddle".to_string())),
            "{:?}",
            d.spmd
        );
    }

    #[test]
    fn floorplan_is_min_reduction() {
        let w = &FLOORPLAN;
        let p = w.program().unwrap();
        let out = profiler::profile_program(&p).unwrap();
        let d = discovery::discover(&p, &out.deps, &out.pet);
        let line = w.line_of("cand < 256").unwrap();
        let l = d.loops.iter().find(|l| l.info.start_line == line).unwrap();
        assert_eq!(l.class, LoopClass::Reduction, "{l:?}");
    }
}
