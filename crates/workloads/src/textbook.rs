//! The textbook programs of Table 4.2 (mini-C versions for discovery; the
//! native Rust versions measured for speedup live in `crate::native`).

use crate::meta::{LoopTruth, Suite, Workload};

/// All textbook programs.
pub fn suite() -> Vec<Workload> {
    vec![MANDELBROT, MATMUL, PI, NBODY, PRIMES, DOTPROD]
}

/// mandelbrot: per-pixel escape iteration.
pub const MANDELBROT: Workload = Workload {
    name: "mandelbrot",
    suite: Suite::Textbook,
    parallel_target: false,
    source: r#"global int img[256];
fn main() {
    for (int y = 0; y < 16; y = y + 1) {
        for (int x = 0; x < 16; x = x + 1) {
            float cr = x * 0.15 - 2.0;
            float ci = y * 0.15 - 1.2;
            float zr = 0.0;
            float zi = 0.0;
            int n = 0;
            while (n < 32) {
                float zr2 = zr * zr - zi * zi + cr;
                zi = 2.0 * zr * zi + ci;
                zr = zr2;
                if (zr * zr + zi * zi > 4.0) {
                    break;
                }
                n = n + 1;
            }
            img[y * 16 + x] = n;
        }
    }
    print(img[0], img[255]);
}
"#,
    truths: &[
        LoopTruth {
            marker: "y < 16",
            parallel: true,
            reduction: false,
            note: "pixel rows",
        },
        LoopTruth {
            marker: "x < 16",
            parallel: true,
            reduction: false,
            note: "pixels",
        },
        LoopTruth {
            marker: "n < 32",
            parallel: false,
            reduction: false,
            note: "escape iteration recurrence",
        },
    ],
};

/// matmul: classic triple loop.
pub const MATMUL: Workload = Workload {
    name: "matmul",
    suite: Suite::Textbook,
    parallel_target: false,
    source: r#"global float A[256];
global float B[256];
global float C[256];
fn main() {
    for (int i0 = 0; i0 < 256; i0 = i0 + 1) {
        A[i0] = (i0 % 16) * 0.25;
        B[i0] = (i0 % 8) * 0.5;
    }
    for (int i = 0; i < 16; i = i + 1) {
        for (int j = 0; j < 16; j = j + 1) {
            float s = 0.0;
            for (int k = 0; k < 16; k = k + 1) {
                s += A[i * 16 + k] * B[k * 16 + j];
            }
            C[i * 16 + j] = s;
        }
    }
    print(C[0], C[255]);
}
"#,
    truths: &[
        LoopTruth {
            marker: "i < 16",
            parallel: true,
            reduction: false,
            note: "output rows",
        },
        LoopTruth {
            marker: "j < 16",
            parallel: true,
            reduction: false,
            note: "output columns",
        },
        LoopTruth {
            marker: "k < 16",
            parallel: true,
            reduction: true,
            note: "dot-product reduction",
        },
    ],
};

/// pi: midpoint-rule integration — a pure reduction.
pub const PI: Workload = Workload {
    name: "pi",
    suite: Suite::Textbook,
    parallel_target: false,
    source: r#"global float pi;
fn main() {
    pi = 0.0;
    for (int i = 0; i < 2048; i = i + 1) {
        float x = (i + 0.5) * 0.00048828125;
        pi += 4.0 / (1.0 + x * x);
    }
    pi = pi * 0.00048828125;
    print(pi);
}
"#,
    truths: &[LoopTruth {
        marker: "i < 2048",
        parallel: true,
        reduction: true,
        note: "integration reduction",
    }],
};

/// nbody: force accumulation (per-body DOALL with inner reduction) and an
/// integration step.
pub const NBODY: Workload = Workload {
    name: "nbody",
    suite: Suite::Textbook,
    parallel_target: false,
    source: r#"global float posx[32];
global float velx[32];
global float frc[32];
fn main() {
    for (int i0 = 0; i0 < 32; i0 = i0 + 1) {
        posx[i0] = i0 * 0.3;
    }
    for (int step = 0; step < 3; step = step + 1) {
        for (int i = 0; i < 32; i = i + 1) {
            float f = 0.0;
            for (int j = 0; j < 32; j = j + 1) {
                if (j != i) {
                    float d = posx[j] - posx[i];
                    f += d / (d * d + 0.01);
                }
            }
            frc[i] = f;
        }
        for (int u = 0; u < 32; u = u + 1) {
            velx[u] += frc[u] * 0.01;
            posx[u] += velx[u] * 0.01;
        }
    }
    print(posx[0]);
}
"#,
    truths: &[
        LoopTruth {
            marker: "step < 3",
            parallel: false,
            reduction: false,
            note: "time steps",
        },
        LoopTruth {
            marker: "i < 32",
            parallel: true,
            reduction: false,
            note: "per-body force (the hot loop)",
        },
        LoopTruth {
            marker: "j < 32",
            parallel: true,
            reduction: true,
            note: "force reduction",
        },
        LoopTruth {
            marker: "u < 32",
            parallel: true,
            reduction: false,
            note: "integration update",
        },
    ],
};

/// primes: trial-division count — DOALL with a count reduction.
pub const PRIMES: Workload = Workload {
    name: "primes",
    suite: Suite::Textbook,
    parallel_target: false,
    source: r#"global int nprimes;
fn is_prime(int n) -> int {
    if (n < 2) {
        return 0;
    }
    for (int d = 2; d * d <= n; d = d + 1) {
        if (n % d == 0) {
            return 0;
        }
    }
    return 1;
}
fn main() {
    nprimes = 0;
    for (int n = 2; n < 400; n = n + 1) {
        nprimes += is_prime(n);
    }
    print(nprimes);
}
"#,
    truths: &[LoopTruth {
        marker: "n = 2; n < 400",
        parallel: true,
        reduction: true,
        note: "candidate loop with count reduction",
    }],
};

/// dotprod: the simplest reduction.
pub const DOTPROD: Workload = Workload {
    name: "dotprod",
    suite: Suite::Textbook,
    parallel_target: false,
    source: r#"global float xs[512];
global float ys[512];
global float dot;
fn main() {
    for (int i0 = 0; i0 < 512; i0 = i0 + 1) {
        xs[i0] = (i0 % 10) * 0.1;
        ys[i0] = (i0 % 7) * 0.2;
    }
    dot = 0.0;
    for (int i = 0; i < 512; i = i + 1) {
        dot += xs[i] * ys[i];
    }
    print(dot);
}
"#,
    truths: &[
        LoopTruth {
            marker: "i0 < 512",
            parallel: true,
            reduction: false,
            note: "fill",
        },
        LoopTruth {
            marker: "i < 512",
            parallel: true,
            reduction: true,
            note: "dot-product reduction",
        },
    ],
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primes_counts_correctly() {
        let p = PRIMES.program().unwrap();
        let r = interp::run(&p, interp::NullSink).unwrap();
        assert_eq!(r.printed[0], "78", "78 primes below 400");
    }

    #[test]
    fn mandelbrot_interior_hits_limit() {
        let p = MANDELBROT.program().unwrap();
        let r = interp::run(&p, interp::NullSink).unwrap();
        // At least one pixel escapes immediately and the set interior
        // reaches the iteration cap.
        let parts: Vec<i64> = r.printed[0]
            .split(' ')
            .map(|s| s.parse().unwrap())
            .collect();
        assert!(parts.iter().any(|&v| v <= 2));
    }

    #[test]
    fn pi_approximates() {
        let p = PI.program().unwrap();
        let r = interp::run(&p, interp::NullSink).unwrap();
        let v: f64 = r.printed[0].parse().unwrap();
        assert!((v - std::f64::consts::PI).abs() < 1e-3, "pi ≈ {v}");
    }
}
