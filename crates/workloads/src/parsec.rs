//! PARSEC stand-ins (Table 4.7) and splash2x-style multi-threaded
//! programs used for communication-pattern detection (Fig. 5.1).

use crate::meta::{LoopTruth, Suite, Workload};

/// All PARSEC/splash2x stand-ins.
pub fn suite() -> Vec<Workload> {
    vec![
        BLACKSCHOLES,
        SWAPTIONS,
        DEDUP,
        FERRET,
        BARNES_PAR,
        RADIX_PAR,
        OCEAN_PAR,
    ]
}

/// blackscholes: per-option pricing — the canonical PARSEC DOALL.
pub const BLACKSCHOLES: Workload = Workload {
    name: "blackscholes",
    suite: Suite::Parsec,
    parallel_target: false,
    source: r#"global float spot[128];
global float strike[128];
global float price[128];
fn main() {
    srand(20);
    for (int i0 = 0; i0 < 128; i0 = i0 + 1) {
        spot[i0] = 80.0 + (rand() % 400) * 0.1;
        strike[i0] = 90.0 + (rand() % 200) * 0.1;
    }
    for (int i = 0; i < 128; i = i + 1) {
        float s = spot[i];
        float k = strike[i];
        float d1 = (log(s / k) + 0.045) / 0.3;
        float nd1 = 1.0 / (1.0 + exp(0.0 - d1 * 1.702));
        price[i] = s * nd1 - k * 0.95 * (1.0 - nd1);
    }
    print(price[0], price[127]);
}
"#,
    truths: &[
        LoopTruth {
            marker: "i0 < 128",
            parallel: true,
            reduction: false,
            note: "input fill",
        },
        LoopTruth {
            marker: "i < 128",
            parallel: true,
            reduction: false,
            note: "per-option pricing (the hot loop of blackscholes)",
        },
    ],
};

/// swaptions: per-swaption Monte-Carlo with an inner path reduction.
pub const SWAPTIONS: Workload = Workload {
    name: "swaptions",
    suite: Suite::Parsec,
    parallel_target: false,
    source: r#"global float result[16];
fn main() {
    srand(808);
    for (int s = 0; s < 16; s = s + 1) {
        float acc = 0.0;
        for (int path = 0; path < 32; path = path + 1) {
            float r = frand() * 0.1 + 0.01;
            acc += exp(0.0 - r * (s + 1)) * 100.0;
        }
        result[s] = acc / 32.0;
    }
    print(result[0], result[15]);
}
"#,
    truths: &[
        LoopTruth {
            marker: "s < 16",
            parallel: true,
            reduction: false,
            note: "independent swaptions",
        },
        LoopTruth {
            marker: "path < 32",
            parallel: true,
            reduction: true,
            note: "Monte-Carlo path reduction",
        },
    ],
};

/// dedup: chunk → hash → compress pipeline; hashing/compression per chunk
/// is independent, the chunk boundary scan is a recurrence.
pub const DEDUP: Workload = Workload {
    name: "dedup",
    suite: Suite::Parsec,
    parallel_target: false,
    source: r#"global int data[512];
global int boundary[16];
global int hashv[16];
fn main() {
    srand(11);
    for (int i0 = 0; i0 < 512; i0 = i0 + 1) {
        data[i0] = rand() % 256;
    }
    int nb = 0;
    int roll = 0;
    for (int i = 0; i < 512; i = i + 1) {
        roll = (roll * 31 + data[i]) % 4096;
        if (roll % 64 == 7) {
            if (nb < 15) {
                nb = nb + 1;
                boundary[nb] = i;
            }
        }
    }
    boundary[0] = 0;
    for (int c = 0; c < 15; c = c + 1) {
        int h = 17;
        for (int k = boundary[c]; k < boundary[c + 1]; k = k + 1) {
            h = (h * 33 + data[k]) % 65536;
        }
        hashv[c] = h;
    }
    print(hashv[0], nb);
}
"#,
    truths: &[
        LoopTruth {
            marker: "i < 512",
            parallel: false,
            reduction: false,
            note: "rolling-hash chunk boundary scan (recurrence)",
        },
        LoopTruth {
            marker: "c < 15",
            parallel: true,
            reduction: false,
            note: "per-chunk hashing (pipeline stage 2)",
        },
    ],
};

/// ferret: similarity-search pipeline: per-query feature extraction and
/// ranking are independent across queries.
pub const FERRET: Workload = Workload {
    name: "ferret",
    suite: Suite::Parsec,
    parallel_target: false,
    source: r#"global float db[256];
global float queries[64];
global int best[8];
fn main() {
    srand(91);
    for (int i0 = 0; i0 < 256; i0 = i0 + 1) {
        db[i0] = (rand() % 100) * 0.01;
    }
    for (int q0 = 0; q0 < 64; q0 = q0 + 1) {
        queries[q0] = (rand() % 100) * 0.01;
    }
    for (int q = 0; q < 8; q = q + 1) {
        float bestd = 99.0;
        int bestn = 0;
        for (int n = 0; n < 32; n = n + 1) {
            float d = 0.0;
            for (int f = 0; f < 8; f = f + 1) {
                float diff = queries[q * 8 + f] - db[n * 8 + f];
                d += diff * diff;
            }
            if (d < bestd) {
                bestd = d;
                bestn = n;
            }
        }
        best[q] = bestn;
    }
    print(best[0], best[7]);
}
"#,
    truths: &[
        LoopTruth {
            marker: "q < 8",
            parallel: true,
            reduction: false,
            note: "independent queries (the pipeline of ferret)",
        },
        LoopTruth {
            marker: "n < 32",
            parallel: false,
            reduction: false,
            note: "running-min over candidates",
        },
        LoopTruth {
            marker: "f < 8",
            parallel: true,
            reduction: true,
            note: "distance reduction",
        },
    ],
};

// ---- splash2x-style multi-threaded programs (Fig. 5.1 comm patterns) ----

/// barnes-like: all threads update a shared tree root under one lock —
/// all-to-all communication through the shared cells.
pub const BARNES_PAR: Workload = Workload {
    name: "barnes-par",
    suite: Suite::Parsec,
    parallel_target: true,
    source: r#"global float cells[64];
global float com;
fn body(int t) {
    for (int i = 0; i < 16; i = i + 1) {
        int c = (t * 16 + i * 7) % 64;
        lock(1);
        cells[c] += 0.25;
        com += cells[c] * 0.01;
        unlock(1);
    }
}
fn main() {
    int t0 = spawn(body, 0);
    int t1 = spawn(body, 1);
    int t2 = spawn(body, 2);
    int t3 = spawn(body, 3);
    join(t0);
    join(t1);
    join(t2);
    join(t3);
    print(com);
}
"#,
    truths: &[],
};

/// radix-like: threads write private buckets, then thread 0 combines —
/// gather/all-to-one communication.
pub const RADIX_PAR: Workload = Workload {
    name: "radix-par",
    suite: Suite::Parsec,
    parallel_target: true,
    source: r#"global int buckets[64];
global int total;
fn count(int t) {
    for (int i = 0; i < 16; i = i + 1) {
        buckets[t * 16 + i] = (t * 31 + i * 7) % 100;
    }
}
fn main() {
    int t0 = spawn(count, 0);
    int t1 = spawn(count, 1);
    int t2 = spawn(count, 2);
    int t3 = spawn(count, 3);
    join(t0);
    join(t1);
    join(t2);
    join(t3);
    total = 0;
    for (int i = 0; i < 64; i = i + 1) {
        total += buckets[i];
    }
    print(total);
}
"#,
    truths: &[],
};

/// ocean-like: neighbouring threads exchange halo rows — nearest-neighbour
/// communication.
pub const OCEAN_PAR: Workload = Workload {
    name: "ocean-par",
    suite: Suite::Parsec,
    parallel_target: true,
    source: r#"global float grid[128];
fn relax(int t) {
    int base = t * 32;
    for (int it = 0; it < 3; it = it + 1) {
        for (int i = 1; i < 31; i = i + 1) {
            lock(t);
            grid[base + i] = 0.5 * grid[base + i] + 0.25 * (grid[base + i - 1] + grid[base + i + 1]);
            unlock(t);
        }
    }
}
fn main() {
    for (int i0 = 0; i0 < 128; i0 = i0 + 1) {
        grid[i0] = (i0 % 11) * 0.1;
    }
    int t0 = spawn(relax, 0);
    int t1 = spawn(relax, 1);
    int t2 = spawn(relax, 2);
    int t3 = spawn(relax, 3);
    join(t0);
    join(t1);
    join(t2);
    join(t3);
    print(grid[64]);
}
"#,
    truths: &[],
};

#[cfg(test)]
mod tests {
    use super::*;
    use discovery::LoopClass;

    #[test]
    fn blackscholes_pricing_is_doall() {
        let p = BLACKSCHOLES.program().unwrap();
        let out = profiler::profile_program(&p).unwrap();
        let d = discovery::discover(&p, &out.deps, &out.pet);
        let line = BLACKSCHOLES.line_of("i < 128").unwrap();
        let l = d.loops.iter().find(|l| l.info.start_line == line).unwrap();
        assert_eq!(l.class, LoopClass::Doall, "{l:?}");
    }

    #[test]
    fn splash_programs_profile_with_cross_thread_deps() {
        for w in [&BARNES_PAR, &RADIX_PAR] {
            let p = w.program().unwrap();
            let out = profiler::profile_multithreaded_target(
                &p,
                profiler::ParallelConfig {
                    workers: 4,
                    ..Default::default()
                },
                interp::RunConfig::default(),
            )
            .unwrap();
            let cross = out
                .deps
                .sorted()
                .iter()
                .filter(|d| d.is_cross_thread())
                .count();
            assert!(cross > 0, "{} must show cross-thread communication", w.name);
        }
    }
}
