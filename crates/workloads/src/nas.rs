//! SNU NAS Parallel Benchmark stand-ins.
//!
//! Each kernel reproduces the dependence structure that matters for the
//! evaluation: which loops are DOALL, which need reductions, which are
//! genuine recurrences — including FT's famous `dummy = randlc(…)`
//! write-after-write pattern (Fig. 2.14).

use crate::meta::{LoopTruth, Suite, Workload};

/// The eight NAS stand-ins.
pub fn suite() -> Vec<Workload> {
    vec![BT, CG, EP, FT, IS, LU, MG, SP]
}

/// BT: block-tridiagonal line solves. Outer line loop is DOALL; the
/// forward/backward sweeps inside are recurrences.
pub const BT: Workload = Workload {
    name: "BT",
    suite: Suite::Nas,
    parallel_target: false,
    source: r#"global float rhs[1024];
global float lhs[1024];
global float sol[1024];
fn main() {
    for (int i = 0; i < 1024; i = i + 1) {
        rhs[i] = (i % 17) * 0.5 + 1.0;
        lhs[i] = (i % 13) * 0.25 + 2.0;
    }
    for (int sweep = 0; sweep < 3; sweep = sweep + 1) {
        for (int line = 0; line < 32; line = line + 1) {
            int base = line * 32;
            for (int j = 1; j < 32; j = j + 1) {
                rhs[base + j] = rhs[base + j] - rhs[base + j - 1] * 0.3 / lhs[base + j];
            }
            for (int j = 30; j >= 0; j = j - 1) {
                sol[base + j] = rhs[base + j] - sol[base + j + 1] * 0.1;
            }
        }
    }
}
"#,
    truths: &[
        LoopTruth {
            marker: "i < 1024",
            parallel: true,
            reduction: false,
            note: "initialization",
        },
        LoopTruth {
            marker: "sweep < 3",
            parallel: false,
            reduction: false,
            note: "time sweeps reuse rhs/sol",
        },
        LoopTruth {
            marker: "line < 32",
            parallel: true,
            reduction: false,
            note: "independent lines (the parallel loop of BT)",
        },
        LoopTruth {
            marker: "j = 1; j < 32",
            parallel: false,
            reduction: false,
            note: "forward elimination recurrence",
        },
        LoopTruth {
            marker: "j = 30",
            parallel: false,
            reduction: false,
            note: "back substitution recurrence",
        },
    ],
};

/// CG: conjugate-gradient iteration with a sparse matvec and dot products.
pub const CG: Workload = Workload {
    name: "CG",
    suite: Suite::Nas,
    parallel_target: false,
    source: r#"global float val[640];
global int colidx[640];
global int rowstart[65];
global float p[64];
global float q[64];
global float x[64];
global float rho;
fn main() {
    srand(1401);
    for (int r0 = 0; r0 < 64; r0 = r0 + 1) {
        rowstart[r0] = r0 * 10;
        p[r0] = 1.0 + (r0 % 5) * 0.125;
    }
    rowstart[64] = 640;
    for (int n = 0; n < 640; n = n + 1) {
        val[n] = ((n * 7) % 23) * 0.0625 + 0.5;
        colidx[n] = (n * 11 + n / 10) % 64;
    }
    for (int it = 0; it < 4; it = it + 1) {
        for (int row = 0; row < 64; row = row + 1) {
            float sum = 0.0;
            for (int k = rowstart[row]; k < rowstart[row + 1]; k = k + 1) {
                sum += val[k] * p[colidx[k]];
            }
            q[row] = sum;
        }
        rho = 0.0;
        for (int rd = 0; rd < 64; rd = rd + 1) {
            rho += p[rd] * q[rd];
        }
        for (int ru = 0; ru < 64; ru = ru + 1) {
            x[ru] = x[ru] + p[ru] / (rho + 1.0);
            p[ru] = q[ru] * 0.5 + p[ru] * 0.25;
        }
    }
    print(rho);
}
"#,
    truths: &[
        LoopTruth {
            marker: "r0 < 64",
            parallel: true,
            reduction: false,
            note: "init rows",
        },
        LoopTruth {
            marker: "it < 4",
            parallel: false,
            reduction: false,
            note: "CG iterations are inherently sequential",
        },
        LoopTruth {
            marker: "row < 64",
            parallel: true,
            reduction: false,
            note: "sparse matvec rows (hot loop of CG)",
        },
        LoopTruth {
            marker: "k = rowstart[row]",
            parallel: true,
            reduction: true,
            note: "row dot-product reduction",
        },
        LoopTruth {
            marker: "rd < 64",
            parallel: true,
            reduction: true,
            note: "global dot-product reduction",
        },
        LoopTruth {
            marker: "ru < 64",
            parallel: true,
            reduction: false,
            note: "vector update",
        },
    ],
};

/// EP: embarrassingly parallel random-pair tally.
pub const EP: Workload = Workload {
    name: "EP",
    suite: Suite::Nas,
    parallel_target: false,
    source: r#"global float gsx;
global float gsy;
global int q[10];
fn main() {
    srand(271828);
    for (int k = 0; k < 128; k = k + 1) {
        float sx = 0.0;
        float sy = 0.0;
        for (int i = 0; i < 24; i = i + 1) {
            float xx = frand() * 2.0 - 1.0;
            float yy = frand() * 2.0 - 1.0;
            float t = xx * xx + yy * yy;
            if (t <= 1.0) {
                sx += xx;
                sy += yy;
                int bin = t * 9.0;
                q[bin] += 1;
            }
        }
        gsx += sx;
        gsy += sy;
    }
    print(gsx, gsy);
}
"#,
    truths: &[
        LoopTruth {
            marker: "k < 128",
            parallel: true,
            reduction: true,
            note: "the embarrassingly parallel chunk loop",
        },
        LoopTruth {
            marker: "i < 24",
            parallel: true,
            reduction: true,
            note: "per-chunk pair loop (sx/sy/q reductions)",
        },
    ],
};

/// FT: FFT evolve phase plus the seed-chain loop with the `dummy` WAW
/// quirk (Fig. 2.14: "Write-after-write dependences are frequently built
/// in FT because of the use of variable dummy").
pub const FT: Workload = Workload {
    name: "FT",
    suite: Suite::Nas,
    parallel_target: false,
    source: r#"global float re[256];
global float im[256];
global float start;
global float dummy;
global float RanStarts[16];
fn randlc() -> float {
    start = start * 1220703125.0;
    start = start - floor(start / 16777216.0) * 16777216.0;
    return start / 16777216.0;
}
fn main() {
    start = 314159265.0;
    for (int k = 1; k < 2048; k = k + 1) {
        dummy = randlc();
        RanStarts[k % 16] = start;
        dummy = RanStarts[k % 16] * 0.5;
        dummy = start * 0.25;
    }
    for (int i0 = 0; i0 < 256; i0 = i0 + 1) {
        re[i0] = RanStarts[i0 % 16] * 0.001 + i0 * 0.01;
        im[i0] = RanStarts[(i0 * 3) % 16] * 0.002;
    }
    for (int t = 0; t < 3; t = t + 1) {
        for (int ip = 0; ip < 256; ip = ip + 1) {
            float a = re[ip];
            float b = im[ip];
            re[ip] = a * 0.9 - b * 0.1;
            im[ip] = a * 0.1 + b * 0.9;
        }
    }
    print(re[0], im[0]);
}
"#,
    truths: &[
        LoopTruth {
            marker: "k = 1; k < 2048",
            parallel: false,
            reduction: false,
            note: "seed chain through randlc (dummy WAW pattern)",
        },
        LoopTruth {
            marker: "i0 < 256",
            parallel: true,
            reduction: false,
            note: "field initialization",
        },
        LoopTruth {
            marker: "t < 3",
            parallel: false,
            reduction: false,
            note: "time evolution steps",
        },
        LoopTruth {
            marker: "ip < 256",
            parallel: true,
            reduction: false,
            note: "evolve: independent points (hot loop of FT)",
        },
    ],
};

/// IS: integer (counting) sort. Histogram is a reduction; ranking and
/// permutation are recurrences.
pub const IS: Workload = Workload {
    name: "IS",
    suite: Suite::Nas,
    parallel_target: false,
    source: r#"global int keys[512];
global int count[64];
global int sorted[512];
fn main() {
    srand(8191);
    for (int ig = 0; ig < 512; ig = ig + 1) {
        keys[ig] = rand() % 64;
    }
    for (int ih = 0; ih < 512; ih = ih + 1) {
        count[keys[ih]] += 1;
    }
    for (int b = 1; b < 64; b = b + 1) {
        count[b] += count[b - 1];
    }
    for (int i = 511; i >= 0; i = i - 1) {
        int k = keys[i];
        count[k] -= 1;
        sorted[count[k]] = k;
    }
    print(sorted[0], sorted[511]);
}
"#,
    truths: &[
        LoopTruth {
            marker: "ig < 512",
            parallel: true,
            reduction: false,
            note: "key generation",
        },
        LoopTruth {
            marker: "ih < 512",
            parallel: true,
            reduction: true,
            note: "key histogram (the parallel loop of IS)",
        },
        LoopTruth {
            marker: "b = 1; b < 64",
            parallel: false,
            reduction: false,
            note: "prefix-sum recurrence",
        },
        LoopTruth {
            marker: "i = 511",
            parallel: false,
            reduction: false,
            note: "permutation decrements shared ranks",
        },
    ],
};

/// LU: Gaussian elimination: sequential pivots, parallel panel updates.
pub const LU: Workload = Workload {
    name: "LU",
    suite: Suite::Nas,
    parallel_target: false,
    source: r#"global float m[576];
fn main() {
    srand(77);
    for (int i = 0; i < 576; i = i + 1) {
        m[i] = (rand() % 100) * 0.01 + 1.0;
    }
    for (int k = 0; k < 23; k = k + 1) {
        for (int i = k + 1; i < 24; i = i + 1) {
            float factor = m[i * 24 + k] / m[k * 24 + k];
            for (int j = k; j < 24; j = j + 1) {
                m[i * 24 + j] = m[i * 24 + j] - factor * m[k * 24 + j];
            }
        }
    }
    print(m[575]);
}
"#,
    truths: &[
        LoopTruth {
            marker: "i < 576",
            parallel: true,
            reduction: false,
            note: "matrix init",
        },
        LoopTruth {
            marker: "k < 23",
            parallel: false,
            reduction: false,
            note: "pivot sequence",
        },
        LoopTruth {
            marker: "i = k + 1",
            parallel: true,
            reduction: false,
            note: "row updates below the pivot (the parallel loop of LU)",
        },
        LoopTruth {
            marker: "j = k; j < 24",
            parallel: true,
            reduction: false,
            note: "per-row elimination",
        },
    ],
};

/// MG: multigrid smoothing: pure stencils, fully parallel.
pub const MG: Workload = Workload {
    name: "MG",
    suite: Suite::Nas,
    parallel_target: false,
    source: r#"global float u[258];
global float r[258];
fn main() {
    for (int i = 0; i < 258; i = i + 1) {
        u[i] = (i % 9) * 0.125;
    }
    for (int it = 0; it < 6; it = it + 1) {
        for (int i = 1; i < 257; i = i + 1) {
            r[i] = 0.5 * u[i] + 0.25 * (u[i - 1] + u[i + 1]);
        }
        for (int ic = 1; ic < 257; ic = ic + 1) {
            u[ic] = r[ic];
        }
    }
    print(u[128]);
}
"#,
    truths: &[
        LoopTruth {
            marker: "i < 258",
            parallel: true,
            reduction: false,
            note: "grid init",
        },
        LoopTruth {
            marker: "it < 6",
            parallel: false,
            reduction: false,
            note: "V-cycle iterations",
        },
        LoopTruth {
            marker: "i = 1; i < 257",
            parallel: true,
            reduction: false,
            note: "smoother stencil (hot loop of MG)",
        },
        LoopTruth {
            marker: "ic < 257",
            parallel: true,
            reduction: false,
            note: "copy-back",
        },
    ],
};

/// SP: scalar pentadiagonal: parallel lines with sequential line solves,
/// plus a residual-norm reduction.
pub const SP: Workload = Workload {
    name: "SP",
    suite: Suite::Nas,
    parallel_target: false,
    source: r#"global float v[1024];
global float w[1024];
global float norm;
fn main() {
    for (int i0 = 0; i0 < 1024; i0 = i0 + 1) {
        v[i0] = ((i0 * 31) % 97) * 0.01;
    }
    for (int line = 0; line < 32; line = line + 1) {
        int base = line * 32;
        for (int j = 2; j < 32; j = j + 1) {
            w[base + j] = v[base + j] - 0.2 * w[base + j - 1] - 0.05 * w[base + j - 2];
        }
    }
    norm = 0.0;
    for (int nn = 0; nn < 1024; nn = nn + 1) {
        norm += w[nn] * w[nn];
    }
    print(norm);
}
"#,
    truths: &[
        LoopTruth {
            marker: "i0 < 1024",
            parallel: true,
            reduction: false,
            note: "init",
        },
        LoopTruth {
            marker: "line < 32",
            parallel: true,
            reduction: false,
            note: "independent pentadiagonal lines (the parallel loop of SP)",
        },
        LoopTruth {
            marker: "j = 2; j < 32",
            parallel: false,
            reduction: false,
            note: "second-order recurrence along the line",
        },
        LoopTruth {
            marker: "nn < 1024",
            parallel: true,
            reduction: true,
            note: "residual norm reduction",
        },
    ],
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nas_results_sane() {
        // BT/LU produce finite floats; IS produces a sorted array.
        let p = IS.program().unwrap();
        let r = interp::run(&p, interp::NullSink).unwrap();
        // sorted[0] <= sorted[511] printed as "a b".
        let parts: Vec<i64> = r.printed[0]
            .split(' ')
            .map(|s| s.parse().unwrap())
            .collect();
        assert!(parts[0] <= parts[1], "counting sort broken: {parts:?}");
    }

    #[test]
    fn ft_exhibits_waw_on_dummy() {
        let p = FT.program().unwrap();
        let out = profiler::profile_program(&p).unwrap();
        let dummy_waw = out
            .deps
            .sorted()
            .into_iter()
            .any(|d| d.ty == profiler::DepType::Waw && p.symbol(d.var) == "dummy");
        assert!(dummy_waw, "FT must reproduce the dummy WAW pattern");
    }

    #[test]
    fn ep_chunk_loop_is_reduction_parallel() {
        let p = EP.program().unwrap();
        let out = profiler::profile_program(&p).unwrap();
        let d = discovery::discover(&p, &out.deps, &out.pet);
        let line = EP.line_of("k < 128").unwrap();
        let l = d
            .loops
            .iter()
            .find(|l| l.info.start_line == line)
            .expect("chunk loop analysed");
        assert!(
            matches!(
                l.class,
                discovery::LoopClass::Doall | discovery::LoopClass::Reduction
            ),
            "{l:?}"
        );
    }
}
