//! Detecting communication patterns on multicore systems (§5.3, Fig. 5.1).
//!
//! On shared-memory machines, "communication" between threads is a
//! cross-thread flow dependence: thread A writes an address, thread B reads
//! it. Aggregating the profiler's cross-thread RAW dependences into a
//! thread×thread matrix reveals the application's communication pattern —
//! nearest-neighbour, master-worker, all-to-all — exactly the splash2x
//! renderings of Fig. 5.1.

use profiler::{DepSet, DepType};
use serde::Serialize;

/// A thread-to-thread communication matrix: `m[producer][consumer]` counts
/// distinct cross-thread flow dependences.
#[derive(Debug, Clone, Serialize)]
pub struct CommMatrix {
    /// Number of threads.
    pub threads: usize,
    /// Row-major counts.
    pub counts: Vec<u64>,
}

impl CommMatrix {
    /// Count at (producer, consumer).
    pub fn get(&self, from: u32, to: u32) -> u64 {
        self.counts[from as usize * self.threads + to as usize]
    }

    /// Total communication volume.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Heuristic pattern classification for reporting.
    pub fn pattern(&self) -> &'static str {
        let n = self.threads;
        if n < 2 || self.total() == 0 {
            return "none";
        }
        let mut off_diag = 0u64;
        let mut neighbour = 0u64;
        let mut to_master = 0u64;
        for a in 0..n {
            for b in 0..n {
                let c = self.counts[a * n + b];
                if a == b {
                    continue;
                }
                off_diag += c;
                if a + 1 == b || b + 1 == a {
                    neighbour += c;
                }
                if b == 0 {
                    to_master += c;
                }
            }
        }
        if off_diag == 0 {
            return "private";
        }
        if to_master as f64 / off_diag as f64 > 0.8 {
            return "gather";
        }
        if neighbour as f64 / off_diag as f64 > 0.8 {
            return "nearest-neighbour";
        }
        "all-to-all"
    }
}

/// Build the communication matrix from a dependence set, counting each
/// distinct cross-thread RAW once per occurrence weight.
pub fn comm_matrix(deps: &DepSet, threads: usize) -> CommMatrix {
    let mut counts = vec![0u64; threads * threads];
    for (d, n) in deps.iter() {
        if d.ty == DepType::Raw
            && d.is_cross_thread()
            && (d.source_thread as usize) < threads
            && (d.sink_thread as usize) < threads
        {
            counts[d.source_thread as usize * threads + d.sink_thread as usize] += n;
        }
    }
    CommMatrix { threads, counts }
}

/// ASCII rendering of the matrix (Fig. 5.1 style): rows = producers,
/// columns = consumers, cells shaded by volume.
pub fn render_matrix(m: &CommMatrix) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let max = m.counts.iter().copied().max().unwrap_or(0).max(1);
    let _ = writeln!(out, "producer\\consumer (pattern: {})", m.pattern());
    let _ = write!(out, "     ");
    for b in 0..m.threads {
        let _ = write!(out, "{b:>6}");
    }
    let _ = writeln!(out);
    for a in 0..m.threads {
        let _ = write!(out, "{a:>4} ");
        for b in 0..m.threads {
            let c = m.counts[a * m.threads + b];
            let shade = match (c * 4 / max, c) {
                (_, 0) => "     .",
                (0, _) => "     -",
                (1, _) => "     +",
                (2, _) => "     *",
                _ => "     #",
            };
            let _ = write!(out, "{shade}");
        }
        let _ = writeln!(out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use profiler::{Dep, SrcLoc};

    fn dep(from_t: u32, to_t: u32, line: u32) -> Dep {
        Dep {
            sink: SrcLoc::new(line),
            ty: DepType::Raw,
            source: SrcLoc::new(line + 1),
            var: 0,
            sink_thread: to_t,
            source_thread: from_t,
            carried_by: None,
            race_hint: false,
        }
    }

    #[test]
    fn matrix_counts_cross_thread_flows() {
        let mut d = DepSet::new();
        d.insert(dep(1, 0, 5));
        d.insert(dep(1, 0, 5));
        d.insert(dep(2, 0, 6));
        let m = comm_matrix(&d, 4);
        assert_eq!(m.get(1, 0), 2);
        assert_eq!(m.get(2, 0), 1);
        assert_eq!(m.get(0, 1), 0);
        assert_eq!(m.total(), 3);
    }

    #[test]
    fn gather_pattern_recognized() {
        let mut d = DepSet::new();
        for t in 1..4 {
            d.insert(dep(t, 0, t * 10));
        }
        let m = comm_matrix(&d, 4);
        assert_eq!(m.pattern(), "gather");
    }

    #[test]
    fn neighbour_pattern_recognized() {
        let mut d = DepSet::new();
        for t in 0..3u32 {
            d.insert(dep(t, t + 1, t * 10 + 1));
            d.insert(dep(t + 1, t, t * 10 + 2));
        }
        let m = comm_matrix(&d, 4);
        assert_eq!(m.pattern(), "nearest-neighbour");
    }

    #[test]
    fn render_has_header_and_rows() {
        let mut d = DepSet::new();
        d.insert(dep(0, 1, 3));
        let m = comm_matrix(&d, 2);
        let text = render_matrix(&m);
        assert!(text.contains("pattern"));
        assert!(text.lines().count() >= 4);
    }
}
