//! Detecting communication patterns on multicore systems (§5.3, Fig. 5.1).
//!
//! On shared-memory machines, "communication" between threads is a
//! cross-thread flow dependence: thread A writes an address, thread B reads
//! it. Aggregating the profiler's cross-thread RAW dependences into a
//! thread×thread matrix reveals the application's communication pattern —
//! nearest-neighbour, master-worker, all-to-all — exactly the splash2x
//! renderings of Fig. 5.1.

use profiler::{DepSet, DepType};
use serde::Serialize;

/// A thread-to-thread communication matrix: `m[producer][consumer]` counts
/// distinct cross-thread flow dependences.
#[derive(Debug, Clone, Serialize)]
pub struct CommMatrix {
    /// Number of threads.
    pub threads: usize,
    /// Row-major counts.
    pub counts: Vec<u64>,
}

impl CommMatrix {
    /// Count at (producer, consumer).
    pub fn get(&self, from: u32, to: u32) -> u64 {
        self.counts[from as usize * self.threads + to as usize]
    }

    /// Total communication volume.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Heuristic pattern classification for reporting.
    pub fn pattern(&self) -> &'static str {
        let n = self.threads;
        if n < 2 || self.total() == 0 {
            return "none";
        }
        let mut off_diag = 0u64;
        let mut neighbour = 0u64;
        let mut to_master = 0u64;
        for a in 0..n {
            for b in 0..n {
                let c = self.counts[a * n + b];
                if a == b {
                    continue;
                }
                off_diag += c;
                if a + 1 == b || b + 1 == a {
                    neighbour += c;
                }
                if b == 0 {
                    to_master += c;
                }
            }
        }
        if off_diag == 0 {
            return "private";
        }
        if to_master as f64 / off_diag as f64 > 0.8 {
            return "gather";
        }
        if neighbour as f64 / off_diag as f64 > 0.8 {
            return "nearest-neighbour";
        }
        "all-to-all"
    }
}

/// Build the communication matrix from a dependence set, counting each
/// distinct cross-thread RAW once per occurrence weight.
pub fn comm_matrix(deps: &DepSet, threads: usize) -> CommMatrix {
    let mut counts = vec![0u64; threads * threads];
    for (d, n) in deps.iter() {
        if d.ty == DepType::Raw
            && d.is_cross_thread()
            && (d.source_thread as usize) < threads
            && (d.sink_thread as usize) < threads
        {
            counts[d.source_thread as usize * threads + d.sink_thread as usize] += n;
        }
    }
    CommMatrix { threads, counts }
}

/// Per-channel actor communication summary: the interpreter's exact
/// message counts arranged as an actor×actor matrix, plus the dependence
/// view of mailbox state — each send/receive pair is a write/read of the
/// same mailbox slot, so message handoffs appear as RAW dependences,
/// slot reuse at the capacity bound as WAR/WAW coupling, and unsynchronized
/// delivery as race hints.
#[derive(Debug, Clone, Serialize)]
pub struct ActorComm {
    /// Actor×actor message counts (`matrix.get(from, to)` = messages sent
    /// from `from` to `to`). Pattern classification applies unchanged.
    pub matrix: CommMatrix,
    /// Cross-actor RAW dependences over mailbox slots — the profiler's
    /// view of message handoffs.
    pub handoff_deps: u64,
    /// WAR/WAW dependences over mailbox slots: capacity coupling from
    /// bounded-mailbox slot reuse (a later message overwrites the slot an
    /// earlier one occupied).
    pub capacity_deps: u64,
    /// Race-hinted dependences over mailbox state (out-of-order delivery
    /// observed by timestamp inversion).
    pub race_hints: u64,
}

/// Build the per-channel actor summary from the interpreter's channel
/// counts and the profiled dependence set. `mailbox_sym` is the interned
/// `"<mailbox>"` symbol ([`interp::Program::mailbox_symbol`]); when
/// `None` (no mailbox ops in the program) the dependence counters are
/// zero and only the matrix is meaningful.
pub fn actor_comm(
    channels: &[(u32, u32, u64)],
    actors: usize,
    deps: &DepSet,
    mailbox_sym: Option<u32>,
) -> ActorComm {
    let mut counts = vec![0u64; actors * actors];
    for &(from, to, n) in channels {
        if (from as usize) < actors && (to as usize) < actors {
            counts[from as usize * actors + to as usize] += n;
        }
    }
    let mut handoff_deps = 0u64;
    let mut capacity_deps = 0u64;
    let mut race_hints = 0u64;
    if let Some(sym) = mailbox_sym {
        for (d, n) in deps.iter() {
            if d.var != sym {
                continue;
            }
            match d.ty {
                DepType::Raw if d.is_cross_thread() => handoff_deps += n,
                DepType::War | DepType::Waw => capacity_deps += n,
                _ => {}
            }
            if d.race_hint {
                race_hints += n;
            }
        }
    }
    ActorComm {
        matrix: CommMatrix {
            threads: actors,
            counts,
        },
        handoff_deps,
        capacity_deps,
        race_hints,
    }
}

/// ASCII rendering of the matrix (Fig. 5.1 style): rows = producers,
/// columns = consumers, cells shaded by volume.
pub fn render_matrix(m: &CommMatrix) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let max = m.counts.iter().copied().max().unwrap_or(0).max(1);
    let _ = writeln!(out, "producer\\consumer (pattern: {})", m.pattern());
    let _ = write!(out, "     ");
    for b in 0..m.threads {
        let _ = write!(out, "{b:>6}");
    }
    let _ = writeln!(out);
    for a in 0..m.threads {
        let _ = write!(out, "{a:>4} ");
        for b in 0..m.threads {
            let c = m.counts[a * m.threads + b];
            let shade = match (c * 4 / max, c) {
                (_, 0) => "     .",
                (0, _) => "     -",
                (1, _) => "     +",
                (2, _) => "     *",
                _ => "     #",
            };
            let _ = write!(out, "{shade}");
        }
        let _ = writeln!(out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use profiler::{Dep, SrcLoc};

    fn dep(from_t: u32, to_t: u32, line: u32) -> Dep {
        Dep {
            sink: SrcLoc::new(line),
            ty: DepType::Raw,
            source: SrcLoc::new(line + 1),
            var: 0,
            sink_thread: to_t,
            source_thread: from_t,
            carried_by: None,
            race_hint: false,
        }
    }

    #[test]
    fn matrix_counts_cross_thread_flows() {
        let mut d = DepSet::new();
        d.insert(dep(1, 0, 5));
        d.insert(dep(1, 0, 5));
        d.insert(dep(2, 0, 6));
        let m = comm_matrix(&d, 4);
        assert_eq!(m.get(1, 0), 2);
        assert_eq!(m.get(2, 0), 1);
        assert_eq!(m.get(0, 1), 0);
        assert_eq!(m.total(), 3);
    }

    #[test]
    fn gather_pattern_recognized() {
        let mut d = DepSet::new();
        for t in 1..4 {
            d.insert(dep(t, 0, t * 10));
        }
        let m = comm_matrix(&d, 4);
        assert_eq!(m.pattern(), "gather");
    }

    #[test]
    fn neighbour_pattern_recognized() {
        let mut d = DepSet::new();
        for t in 0..3u32 {
            d.insert(dep(t, t + 1, t * 10 + 1));
            d.insert(dep(t + 1, t, t * 10 + 2));
        }
        let m = comm_matrix(&d, 4);
        assert_eq!(m.pattern(), "nearest-neighbour");
    }

    #[test]
    fn actor_comm_counts_channels_and_mailbox_deps() {
        let p = interp::Program::new(
            lang::compile(
                "fn main() -> int {
                    int c = spawn_actor(stage, 0);
                    for (int i = 0; i < 8; i = i + 1) { send(c, i); }
                    join(c);
                    return receive();
                }
                fn stage(int x) {
                    int s = 0;
                    for (int i = 0; i < 8; i = i + 1) { s = s + receive(); }
                    send(0, s);
                }",
                "t",
            )
            .unwrap(),
        );
        let out = profiler::profile_program(&p).unwrap();
        let actors = out.actors.as_ref().expect("actor block present");
        let comm = actor_comm(
            &actors.channels,
            actors.spawned as usize,
            &out.deps,
            p.mailbox_symbol(),
        );
        assert_eq!(comm.matrix.get(0, 1), 8);
        assert_eq!(comm.matrix.get(1, 0), 1);
        assert_eq!(comm.matrix.total(), 9);
        // Each message handoff is a cross-actor RAW over a mailbox slot.
        assert!(comm.handoff_deps > 0, "handoffs visible as RAW deps");
        // Two actors exchanging 0↔1 traffic are adjacent.
        assert_eq!(comm.matrix.pattern(), "nearest-neighbour");
    }

    #[test]
    fn render_has_header_and_rows() {
        let mut d = DepSet::new();
        d.insert(dep(0, 1, 3));
        let m = comm_matrix(&d, 2);
        let text = render_matrix(&m);
        assert!(text.contains("pattern"));
        assert!(text.lines().count() >= 4);
    }
}
