//! `apps` — further applications of the framework (dissertation Ch. 5).
//!
//! Three use cases beyond parallelism discovery demonstrate the profiler's
//! generality:
//!
//! - [`ml`]: characterizing DOALL loops with machine learning (§5.1,
//!   Tables 5.1–5.3) — dynamic features from the profiler feed an AdaBoost
//!   ensemble of decision stumps.
//! - [`stm`]: determining parameters for software transactional memory
//!   (§5.2, Table 5.4) — transaction candidates counted from the
//!   dependence output.
//! - [`comm`]: detecting communication patterns on multicore systems
//!   (§5.3, Fig. 5.1) — thread-to-thread communication matrices from
//!   cross-thread dependences.

pub mod comm;
pub mod ml;
pub mod stm;

pub use comm::{actor_comm, comm_matrix, render_matrix, ActorComm, CommMatrix};
pub use ml::{AdaBoost, Dataset, Features, Sample, Scores};
pub use stm::{transactions_for, Transaction};
