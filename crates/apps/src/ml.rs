//! Characterizing DOALL loops with machine learning (§5.1).
//!
//! Dynamic features extracted by the profiler (Table 5.1) feed an
//! AdaBoost.M1 ensemble of depth-1 decision stumps. Feature importance is
//! the weighted error reduction accumulated per feature across the ensemble
//! (Table 5.2); evaluation reports per-class precision/recall/F1 on a
//! held-out split (Table 5.3).

use discovery::LoopInfo;
use interp::Program;
use profiler::{DepSet, DepType};
use serde::Serialize;

/// Number of features.
pub const NUM_FEATURES: usize = 8;

/// Names of the Table 5.1 features, in vector order.
pub const FEATURE_NAMES: [&str; NUM_FEATURES] = [
    "iterations",
    "instrs_per_iter",
    "carried_raw_count",
    "carried_warwaw_count",
    "intra_raw_count",
    "distinct_dep_vars",
    "reduction_lines",
    "dep_line_fraction",
];

/// A feature vector for one loop.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct Features(pub [f64; NUM_FEATURES]);

/// Extract the Table 5.1 dynamic features for a loop.
pub fn extract(program: &Program, deps: &DepSet, info: &LoopInfo) -> Features {
    let key = (info.func, info.region);
    let carried_raw = deps.carried_raws(key).len() as f64;
    let mut carried_ww = 0usize;
    let mut intra_raw = 0usize;
    let mut dep_vars = std::collections::BTreeSet::new();
    let mut dep_lines = std::collections::BTreeSet::new();
    let mut reduction_lines = std::collections::BTreeSet::new();
    for (d, _) in deps.iter() {
        let in_span = d.sink.line >= info.start_line && d.sink.line <= info.end_line;
        if !in_span {
            continue;
        }
        dep_lines.insert(d.sink.line);
        if d.var != u32::MAX {
            dep_vars.insert(d.var);
        }
        match d.ty {
            DepType::War | DepType::Waw if d.carried_by == Some(key) => carried_ww += 1,
            DepType::Raw if d.carried_by.is_none() => intra_raw += 1,
            DepType::Raw
                if d.carried_by == Some(key)
                    && d.sink.line == d.source.line
                    && d.var != u32::MAX =>
            {
                let f = &program.module.functions[info.func as usize];
                let name = program.symbol(d.var);
                if discovery::doall::is_reduction_line(f, d.sink.line, name, program) {
                    reduction_lines.insert(d.sink.line);
                }
            }
            _ => {}
        }
    }
    let body_lines = (info.end_line - info.start_line).max(1) as f64;
    Features([
        info.iters as f64,
        if info.iters > 0 {
            info.dyn_instrs as f64 / info.iters as f64
        } else {
            0.0
        },
        carried_raw,
        carried_ww as f64,
        intra_raw as f64,
        dep_vars.len() as f64,
        reduction_lines.len() as f64,
        dep_lines.len() as f64 / body_lines,
    ])
}

/// One labelled loop.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct Sample {
    /// The features.
    pub x: Features,
    /// True = parallelizable (the Table 5.3 "pragma" ground truth).
    pub y: bool,
}

/// A labelled dataset.
#[derive(Debug, Clone, Default, Serialize)]
pub struct Dataset {
    /// The samples.
    pub samples: Vec<Sample>,
}

impl Dataset {
    /// Deterministic train/test split: every `k`-th sample held out.
    pub fn split(&self, k: usize) -> (Dataset, Dataset) {
        let k = k.max(2);
        let mut train = Dataset::default();
        let mut test = Dataset::default();
        for (i, s) in self.samples.iter().enumerate() {
            if i % k == 0 {
                test.samples.push(*s);
            } else {
                train.samples.push(*s);
            }
        }
        (train, test)
    }
}

/// A decision stump: `x[feature] > threshold` votes `polarity`.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct Stump {
    feature: usize,
    threshold: f64,
    /// Vote for the positive class when above the threshold?
    polarity: bool,
    /// Ensemble weight (alpha).
    alpha: f64,
}

impl Stump {
    fn predict(&self, x: &Features) -> bool {
        (x.0[self.feature] > self.threshold) == self.polarity
    }
}

/// AdaBoost.M1 over decision stumps.
#[derive(Debug, Clone, Serialize)]
pub struct AdaBoost {
    stumps: Vec<Stump>,
}

impl AdaBoost {
    /// Train `rounds` boosting rounds on `data`.
    pub fn train(data: &Dataset, rounds: usize) -> Self {
        let n = data.samples.len();
        assert!(n > 0, "empty training set");
        let mut w = vec![1.0 / n as f64; n];
        let mut stumps = Vec::new();
        for _ in 0..rounds {
            let (stump, err) = best_stump(data, &w);
            let err = err.clamp(1e-10, 0.5 - 1e-10);
            let alpha = 0.5 * ((1.0 - err) / err).ln();
            let stump = Stump { alpha, ..stump };
            // Reweight: misclassified samples gain weight.
            let mut z = 0.0;
            for (i, s) in data.samples.iter().enumerate() {
                let correct = stump.predict(&s.x) == s.y;
                w[i] *= if correct { (-alpha).exp() } else { alpha.exp() };
                z += w[i];
            }
            for wi in &mut w {
                *wi /= z;
            }
            stumps.push(stump);
            if err < 1e-9 {
                break; // perfect stump: further rounds are redundant
            }
        }
        AdaBoost { stumps }
    }

    /// Predict the class of one feature vector.
    pub fn predict(&self, x: &Features) -> bool {
        let score: f64 = self
            .stumps
            .iter()
            .map(|s| if s.predict(x) { s.alpha } else { -s.alpha })
            .sum();
        score > 0.0
    }

    /// Feature importance: per-feature sum of ensemble weights (weighted
    /// error reduction), normalized to 1 (Table 5.2).
    pub fn feature_importance(&self) -> [f64; NUM_FEATURES] {
        let mut imp = [0.0; NUM_FEATURES];
        for s in &self.stumps {
            imp[s.feature] += s.alpha.max(0.0);
        }
        let total: f64 = imp.iter().sum();
        if total > 0.0 {
            for v in &mut imp {
                *v /= total;
            }
        }
        imp
    }

    /// Evaluate on a dataset.
    pub fn evaluate(&self, data: &Dataset) -> Scores {
        let mut tp = 0.0;
        let mut fp = 0.0;
        let mut tn = 0.0;
        let mut fnn = 0.0;
        for s in &data.samples {
            match (self.predict(&s.x), s.y) {
                (true, true) => tp += 1.0,
                (true, false) => fp += 1.0,
                (false, false) => tn += 1.0,
                (false, true) => fnn += 1.0,
            }
        }
        let precision = if tp + fp > 0.0 { tp / (tp + fp) } else { 1.0 };
        let recall = if tp + fnn > 0.0 { tp / (tp + fnn) } else { 1.0 };
        let f1 = if precision + recall > 0.0 {
            2.0 * precision * recall / (precision + recall)
        } else {
            0.0
        };
        Scores {
            accuracy: (tp + tn) / data.samples.len().max(1) as f64,
            precision,
            recall,
            f1,
        }
    }

    /// Number of stumps in the ensemble.
    pub fn len(&self) -> usize {
        self.stumps.len()
    }

    /// True if the ensemble is empty.
    pub fn is_empty(&self) -> bool {
        self.stumps.is_empty()
    }
}

/// Classification scores (Table 5.3 columns).
#[derive(Debug, Clone, Copy, Serialize)]
pub struct Scores {
    pub accuracy: f64,
    pub precision: f64,
    pub recall: f64,
    pub f1: f64,
}

/// Exhaustive stump search: for each feature, candidate thresholds are the
/// midpoints between consecutive distinct values.
fn best_stump(data: &Dataset, w: &[f64]) -> (Stump, f64) {
    let mut best = Stump {
        feature: 0,
        threshold: 0.0,
        polarity: true,
        alpha: 0.0,
    };
    let mut best_err = f64::INFINITY;
    for f in 0..NUM_FEATURES {
        let mut vals: Vec<f64> = data.samples.iter().map(|s| s.x.0[f]).collect();
        vals.sort_by(|a, b| a.partial_cmp(b).unwrap());
        vals.dedup();
        let mut cands = vec![vals[0] - 0.5];
        for win in vals.windows(2) {
            cands.push((win[0] + win[1]) / 2.0);
        }
        for &t in &cands {
            for polarity in [true, false] {
                let err: f64 = data
                    .samples
                    .iter()
                    .zip(w)
                    .filter(|(s, _)| ((s.x.0[f] > t) == polarity) != s.y)
                    .map(|(_, &wi)| wi)
                    .sum();
                if err < best_err {
                    best_err = err;
                    best = Stump {
                        feature: f,
                        threshold: t,
                        polarity,
                        alpha: 0.0,
                    };
                }
            }
        }
    }
    (best, best_err)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synthetic() -> Dataset {
        // Parallel loops: no carried RAW (feature 2 == 0). Plus noise
        // features so the stump search has work to do.
        let mut d = Dataset::default();
        for i in 0..40 {
            let carried = if i % 2 == 0 {
                0.0
            } else {
                1.0 + (i % 3) as f64
            };
            let x = Features([
                (i * 10) as f64,
                5.0 + (i % 7) as f64,
                carried,
                (i % 2) as f64,
                (i % 5) as f64,
                (i % 4) as f64,
                0.0,
                0.3,
            ]);
            d.samples.push(Sample {
                x,
                y: carried == 0.0,
            });
        }
        d
    }

    #[test]
    fn learns_separable_data() {
        let d = synthetic();
        let model = AdaBoost::train(&d, 10);
        let s = model.evaluate(&d);
        assert!(s.accuracy > 0.99, "{s:?}");
    }

    #[test]
    fn importance_identifies_carried_raw() {
        let d = synthetic();
        let model = AdaBoost::train(&d, 10);
        let imp = model.feature_importance();
        let max_f = (0..NUM_FEATURES)
            .max_by(|&a, &b| imp[a].total_cmp(&imp[b]))
            .unwrap();
        assert_eq!(
            FEATURE_NAMES[max_f], "carried_raw_count",
            "importances: {imp:?}"
        );
        let sum: f64 = imp.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn split_is_disjoint_and_complete() {
        let d = synthetic();
        let (train, test) = d.split(4);
        assert_eq!(train.samples.len() + test.samples.len(), d.samples.len());
        assert!(!test.samples.is_empty());
    }

    #[test]
    fn generalizes_to_held_out() {
        let d = synthetic();
        let (train, test) = d.split(4);
        let model = AdaBoost::train(&train, 12);
        let s = model.evaluate(&test);
        assert!(s.f1 > 0.9, "{s:?}");
    }
}
