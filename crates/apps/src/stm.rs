//! Determining optimal parameters for software transactional memory
//! (§5.2, Table 5.4).
//!
//! When a suggested parallel loop retains conflicting accesses to shared
//! variables, those accesses must execute atomically — each conflicting
//! update site is a *transaction* candidate, and their number and size
//! drive STM configuration (how many concurrent transactions, how large
//! the read/write sets). Transactions are determined by analyzing the
//! profiler's dependence output, exactly as Table 5.4 describes.

use discovery::{LoopClass, LoopResult};
use interp::Program;
use profiler::{DepSet, DepType};
use serde::Serialize;
use std::collections::BTreeSet;

/// A transaction candidate: a source line (or small line group) inside a
/// parallelizable loop whose accesses to a shared variable conflict across
/// iterations.
#[derive(Debug, Clone, Serialize)]
pub struct Transaction {
    /// Loop header line.
    pub loop_line: u32,
    /// Lines forming the atomic section.
    pub lines: Vec<u32>,
    /// Conflicting shared variables (names).
    pub vars: Vec<String>,
    /// Estimated read-set size (distinct shared variables read).
    pub read_set: usize,
    /// Estimated write-set size.
    pub write_set: usize,
}

/// Find transaction candidates for every parallelizable loop of a program.
///
/// A line group becomes a transaction when the loop is otherwise
/// parallelizable (DOALL/reduction) and the line carries a same-variable
/// cross-iteration conflict (the reduction updates and any remaining
/// carried WAR/WAW sites).
pub fn transactions_for(
    program: &Program,
    deps: &DepSet,
    loops: &[LoopResult],
) -> Vec<Transaction> {
    let mut out = Vec::new();
    for l in loops {
        if !matches!(l.class, LoopClass::Doall | LoopClass::Reduction) {
            continue;
        }
        let key = (l.info.func, l.info.region);
        // Conflict sites: lines with carried deps on shared variables.
        let mut by_line: std::collections::BTreeMap<u32, BTreeSet<String>> =
            std::collections::BTreeMap::new();
        for (d, _) in deps.iter() {
            if d.carried_by != Some(key) || d.var == u32::MAX {
                continue;
            }
            if matches!(d.ty, DepType::Raw | DepType::War | DepType::Waw) {
                let name = program.symbol(d.var).to_string();
                // Variables declared inside the loop (induction variables
                // and per-iteration temporaries) are privatized, not
                // transacted; only variables that outlive an iteration
                // need atomicity.
                let f = &program.module.functions[l.info.func as usize];
                let r = &f.regions[l.info.region as usize];
                let is_loop_local = f
                    .locals
                    .iter()
                    .any(|v| v.name == name && v.line >= r.start_line && v.line <= r.end_line);
                if !is_loop_local {
                    by_line.entry(d.sink.line).or_default().insert(name);
                }
            }
        }
        // Merge adjacent conflict lines into one transaction (they execute
        // together under one atomic section).
        let lines: Vec<u32> = by_line.keys().copied().collect();
        let mut group: Vec<u32> = Vec::new();
        let flush = |group: &mut Vec<u32>, out: &mut Vec<Transaction>| {
            if group.is_empty() {
                return;
            }
            let mut vars = BTreeSet::new();
            for g in group.iter() {
                vars.extend(by_line[g].iter().cloned());
            }
            // Read/write set sizes from the access lines.
            let mut reads = BTreeSet::new();
            let mut writes = BTreeSet::new();
            for (d, _) in deps.iter() {
                if group.contains(&d.sink.line) && d.var != u32::MAX {
                    match d.ty {
                        DepType::Raw => {
                            reads.insert(d.var);
                        }
                        DepType::War | DepType::Waw => {
                            writes.insert(d.var);
                        }
                        DepType::Init => {}
                    }
                }
            }
            out.push(Transaction {
                loop_line: l.info.start_line,
                lines: std::mem::take(group),
                vars: vars.into_iter().collect(),
                read_set: reads.len(),
                write_set: writes.len().max(1),
            });
        };
        for &line in &lines {
            if let Some(&last) = group.last() {
                if line > last + 1 {
                    flush(&mut group, &mut out);
                }
            }
            group.push(line);
        }
        flush(&mut group, &mut out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use profiler::profile_program;

    fn analyze(src: &str) -> (Program, Vec<Transaction>) {
        let p = Program::new(lang::compile(src, "t").unwrap());
        let out = profile_program(&p).unwrap();
        let loops: Vec<LoopResult> = discovery::hot_loops(&p, &out.pet)
            .into_iter()
            .map(|l| discovery::analyze_loop(&p, &out.deps, &l))
            .collect();
        let txs = transactions_for(&p, &out.deps, &loops);
        (p, txs)
    }

    #[test]
    fn reduction_update_is_a_transaction() {
        let (_, txs) = analyze(
            "global int a[64];\nglobal int s;\nfn main() {\nfor (int i = 0; i < 64; i = i + 1) {\ns = s + a[i];\n}\n}",
        );
        assert_eq!(txs.len(), 1, "{txs:?}");
        assert!(txs[0].vars.contains(&"s".to_string()));
        assert!(txs[0].write_set >= 1);
    }

    #[test]
    fn pure_doall_has_no_transactions() {
        let (_, txs) = analyze(
            "global int a[64];\nglobal int b[64];\nfn main() {\nfor (int i = 0; i < 64; i = i + 1) {\nb[i] = a[i] + 1;\n}\n}",
        );
        assert!(txs.is_empty(), "{txs:?}");
    }

    #[test]
    fn adjacent_conflicts_merge_into_one_transaction() {
        let (_, txs) = analyze(
            "global int a[64];\nglobal int s;\nglobal int t;\nfn main() {\nfor (int i = 0; i < 64; i = i + 1) {\ns = s + a[i];\nt = t + a[i] * 2;\n}\n}",
        );
        assert_eq!(txs.len(), 1, "{txs:?}");
        assert_eq!(txs[0].lines.len(), 2);
        assert_eq!(txs[0].vars.len(), 2);
    }

    #[test]
    fn separate_conflicts_stay_separate() {
        let (_, txs) = analyze(
            "global int a[64];\nglobal int s;\nglobal int t;\nfn main() {\nfor (int i = 0; i < 64; i = i + 1) {\ns = s + a[i];\nint mid = a[i] * 3 - 1;\nint mid2 = mid + a[i];\nt = t + mid2;\n}\n}",
        );
        assert_eq!(txs.len(), 2, "{txs:?}");
    }
}
