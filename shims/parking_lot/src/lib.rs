//! Offline parking_lot shim: `Mutex` and `RwLock` over `std::sync`,
//! exposing the poison-free `lock()`/`read()`/`write()` API.

use std::sync::{
    Mutex as StdMutex, MutexGuard, RwLock as StdRwLock, RwLockReadGuard, RwLockWriteGuard,
};

/// Poison-free mutex with the parking_lot API subset the workspace uses.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(StdMutex<T>);

impl<T> Mutex<T> {
    /// Wrap a value in a mutex.
    pub fn new(value: T) -> Self {
        Mutex(StdMutex::new(value))
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, recovering from poisoning (parking_lot has none).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// Poison-free reader-writer lock with the parking_lot API subset.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(StdRwLock<T>);

impl<T> RwLock<T> {
    /// Wrap a value in an rwlock.
    pub fn new(value: T) -> Self {
        RwLock(StdRwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }
}
