//! Offline criterion shim: a minimal timing harness with the criterion
//! API shape the benches use. Reports median wall-clock per iteration and
//! (when a throughput is set) elements per second, as plain text.

use std::time::Instant;

/// Re-export of the standard black box, matching `criterion::black_box`.
pub use std::hint::black_box;

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Top-level harness handle.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        println!("\n# {}", name.into());
        BenchmarkGroup {
            _c: self,
            sample_size: 20,
            throughput: None,
        }
    }

    /// Run a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&name.into(), 20, None, f);
        self
    }
}

/// A group of related benchmarks.
pub struct BenchmarkGroup<'c> {
    _c: &'c mut Criterion,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl<'c> BenchmarkGroup<'c> {
    /// Samples per benchmark (criterion's statistical knob; here: runs).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Annotate per-iteration throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Measure one benchmark.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&name.into(), self.sample_size, self.throughput, f);
        self
    }

    /// End the group (criterion finalizes reports here; the shim prints as
    /// it goes).
    pub fn finish(self) {}
}

/// Passed to the measured closure; `iter` times its argument.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<f64>,
    budget: usize,
}

impl Bencher {
    /// Time one sample of `f`.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        for _ in 0..self.budget {
            let t = Instant::now();
            black_box(f());
            self.samples.push(t.elapsed().as_secs_f64());
        }
    }
}

fn run_bench<F>(name: &str, sample_size: usize, throughput: Option<Throughput>, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut b = Bencher {
        samples: Vec::with_capacity(sample_size),
        budget: sample_size,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{name:40} (no samples)");
        return;
    }
    b.samples.sort_by(|a, x| a.partial_cmp(x).unwrap());
    let median = b.samples[b.samples.len() / 2];
    let extra = match throughput {
        Some(Throughput::Elements(n)) if median > 0.0 => {
            format!("  {:>12.0} elem/s", n as f64 / median)
        }
        Some(Throughput::Bytes(n)) if median > 0.0 => {
            format!("  {:>12.0} B/s", n as f64 / median)
        }
        _ => String::new(),
    };
    println!("{name:40} median {:>10.3} ms{extra}", median * 1e3);
}

/// Declare the benchmark functions of one target.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emit `main` for a bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(3).throughput(Throughput::Elements(10));
        let mut runs = 0;
        g.bench_function("noop", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        g.finish();
        assert_eq!(runs, 3);
    }
}
