//! No-op `Serialize`/`Deserialize` derives (offline serde shim).
//!
//! The workspace derives these traits for forward compatibility with wire
//! formats but never calls a serializer, so the derives only need to accept
//! the input (including `#[serde(...)]` attributes) and emit nothing.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
