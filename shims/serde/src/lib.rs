//! Offline serde shim: marker traits plus the no-op derives.
//!
//! Nothing in the workspace serializes at runtime; the traits exist so
//! `#[derive(Serialize, Deserialize)]` and trait bounds keep compiling
//! against the real serde API shape.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`; implemented for every type.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; implemented for every type.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}
