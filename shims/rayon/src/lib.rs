//! Offline rayon shim: the parallel-iterator subset the workspace uses,
//! executed on `std::thread::scope` threads (no work stealing — each
//! parallel iterator is split into one contiguous piece per thread).

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};

thread_local! {
    /// Thread-count override installed by [`ThreadPool::install`].
    static POOL_THREADS: Cell<usize> = const { Cell::new(0) };
}

fn current_threads() -> usize {
    let t = POOL_THREADS.with(|c| c.get());
    if t > 0 {
        return t;
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

/// Live threads spawned by [`join`], used to cap recursive fan-out.
static JOIN_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Run both closures, potentially in parallel; returns both results.
///
/// Spawns a real thread for `a` while the join budget (2× the thread
/// count) has headroom, so recursive sibling-task parallelism gets real
/// concurrency without unbounded thread creation.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let budget = current_threads() * 2;
    let live = JOIN_THREADS.load(Ordering::Relaxed);
    if live < budget
        && JOIN_THREADS
            .compare_exchange(live, live + 1, Ordering::Relaxed, Ordering::Relaxed)
            .is_ok()
    {
        let out = std::thread::scope(|s| {
            let ha = s.spawn(a);
            let rb = b();
            (ha.join().expect("rayon::join closure panicked"), rb)
        });
        JOIN_THREADS.fetch_sub(1, Ordering::Relaxed);
        out
    } else {
        (a(), b())
    }
}

/// Builder for a fixed-size pool; the shim pool only carries the thread
/// count that [`ThreadPool::install`] makes current.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Start building.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the worker count.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Finish building; infallible in the shim.
    pub fn build(self) -> Result<ThreadPool, std::convert::Infallible> {
        Ok(ThreadPool {
            num_threads: self.num_threads,
        })
    }
}

/// A "pool": parallel iterators inside [`ThreadPool::install`] split into
/// this many pieces.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Run `f` with this pool's thread count current.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        let prev = POOL_THREADS.with(|c| c.replace(self.num_threads));
        let r = f();
        POOL_THREADS.with(|c| c.set(prev));
        r
    }
}

pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelIterator, ParallelSlice, ParallelSliceMut};
}

/// A splittable source of items: contiguous pieces can be handed to
/// different threads, and each piece drains through a sequential iterator.
pub trait ParallelBase: Send + Sized {
    /// Item produced by this source.
    type Item: Send;
    /// Sequential iterator over one piece.
    type Iter: Iterator<Item = Self::Item>;
    /// Remaining items.
    fn len(&self) -> usize;
    /// True when no items remain.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Split into `[0, i)` and `[i, len)`.
    fn split_at(self, i: usize) -> (Self, Self);
    /// Drain this piece sequentially.
    fn into_seq(self) -> Self::Iter;
}

/// Split `base` into at most `pieces` contiguous parts of near-equal size.
fn split_even<B: ParallelBase>(base: B, pieces: usize) -> Vec<B> {
    let pieces = pieces.clamp(1, base.len().max(1));
    let mut out = Vec::with_capacity(pieces);
    let mut rest = base;
    for k in 0..pieces - 1 {
        let cut = rest.len() / (pieces - k);
        let (head, tail) = rest.split_at(cut);
        out.push(head);
        rest = tail;
    }
    out.push(rest);
    out
}

/// Run one closure per piece on scoped threads; results in piece order.
fn drive<B, R, F>(base: B, f: F) -> Vec<R>
where
    B: ParallelBase,
    R: Send,
    F: Fn(B) -> R + Sync,
{
    let pieces = split_even(base, current_threads());
    if pieces.len() == 1 {
        return pieces.into_iter().map(&f).collect();
    }
    std::thread::scope(|s| {
        let handles: Vec<_> = pieces.into_iter().map(|p| s.spawn(|| f(p))).collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("parallel iterator piece panicked"))
            .collect()
    })
}

/// The rayon `ParallelIterator` subset: adapters build lazily, terminals
/// split the source over threads.
pub trait ParallelIterator: ParallelBase {
    /// Pair each item with its global index.
    fn enumerate(self) -> Enumerate<Self> {
        Enumerate {
            inner: self,
            start: 0,
        }
    }

    /// Transform items.
    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Clone + Send + Sync,
    {
        Map { inner: self, f }
    }

    /// Consume every item.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Send + Sync,
    {
        drive(self, |piece| piece.into_seq().for_each(&f));
    }

    /// Fold each piece from `identity()` with `op`, then combine the piece
    /// results with `op`.
    fn reduce<ID, OP>(self, identity: ID, op: OP) -> Self::Item
    where
        ID: Fn() -> Self::Item + Send + Sync,
        OP: Fn(Self::Item, Self::Item) -> Self::Item + Send + Sync,
    {
        drive(self, |piece| piece.into_seq().fold(identity(), &op))
            .into_iter()
            .fold(identity(), &op)
    }

    /// Sum items per piece, then sum the piece sums.
    fn sum<S>(self) -> S
    where
        S: Send + std::iter::Sum<Self::Item> + std::iter::Sum<S>,
    {
        drive(self, |piece| piece.into_seq().sum::<S>())
            .into_iter()
            .sum()
    }
}

impl<B: ParallelBase> ParallelIterator for B {}

/// Enumerating adapter; tracks the global index across splits.
pub struct Enumerate<B> {
    inner: B,
    start: usize,
}

impl<B: ParallelBase> ParallelBase for Enumerate<B> {
    type Item = (usize, B::Item);
    type Iter = std::iter::Zip<std::ops::RangeFrom<usize>, B::Iter>;

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn split_at(self, i: usize) -> (Self, Self) {
        let (a, b) = self.inner.split_at(i);
        (
            Enumerate {
                inner: a,
                start: self.start,
            },
            Enumerate {
                inner: b,
                start: self.start + i,
            },
        )
    }

    fn into_seq(self) -> Self::Iter {
        (self.start..).zip(self.inner.into_seq())
    }
}

/// Mapping adapter.
pub struct Map<B, F> {
    inner: B,
    f: F,
}

impl<B, R, F> ParallelBase for Map<B, F>
where
    B: ParallelBase,
    R: Send,
    F: Fn(B::Item) -> R + Clone + Send + Sync,
{
    type Item = R;
    type Iter = std::iter::Map<B::Iter, F>;

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn split_at(self, i: usize) -> (Self, Self) {
        let (a, b) = self.inner.split_at(i);
        (
            Map {
                inner: a,
                f: self.f.clone(),
            },
            Map {
                inner: b,
                f: self.f,
            },
        )
    }

    fn into_seq(self) -> Self::Iter {
        self.inner.into_seq().map(self.f)
    }
}

/// Parallel shared chunks over a slice.
pub struct ChunksPar<'a, T> {
    slice: &'a [T],
    chunk: usize,
}

impl<'a, T: Sync> ParallelBase for ChunksPar<'a, T> {
    type Item = &'a [T];
    type Iter = std::slice::Chunks<'a, T>;

    fn len(&self) -> usize {
        self.slice.len().div_ceil(self.chunk)
    }

    fn split_at(self, i: usize) -> (Self, Self) {
        let mid = (i * self.chunk).min(self.slice.len());
        let (a, b) = self.slice.split_at(mid);
        (
            ChunksPar {
                slice: a,
                chunk: self.chunk,
            },
            ChunksPar {
                slice: b,
                chunk: self.chunk,
            },
        )
    }

    fn into_seq(self) -> Self::Iter {
        self.slice.chunks(self.chunk)
    }
}

/// Parallel exclusive chunks over a slice.
pub struct ChunksMutPar<'a, T> {
    slice: &'a mut [T],
    chunk: usize,
}

impl<'a, T: Send> ParallelBase for ChunksMutPar<'a, T> {
    type Item = &'a mut [T];
    type Iter = std::slice::ChunksMut<'a, T>;

    fn len(&self) -> usize {
        self.slice.len().div_ceil(self.chunk)
    }

    fn split_at(self, i: usize) -> (Self, Self) {
        let mid = (i * self.chunk).min(self.slice.len());
        let (a, b) = self.slice.split_at_mut(mid);
        (
            ChunksMutPar {
                slice: a,
                chunk: self.chunk,
            },
            ChunksMutPar {
                slice: b,
                chunk: self.chunk,
            },
        )
    }

    fn into_seq(self) -> Self::Iter {
        self.slice.chunks_mut(self.chunk)
    }
}

/// Parallel exclusive per-element iteration over a slice.
pub struct IterMutPar<'a, T> {
    slice: &'a mut [T],
}

impl<'a, T: Send> ParallelBase for IterMutPar<'a, T> {
    type Item = &'a mut T;
    type Iter = std::slice::IterMut<'a, T>;

    fn len(&self) -> usize {
        self.slice.len()
    }

    fn split_at(self, i: usize) -> (Self, Self) {
        let (a, b) = self.slice.split_at_mut(i);
        (IterMutPar { slice: a }, IterMutPar { slice: b })
    }

    fn into_seq(self) -> Self::Iter {
        self.slice.iter_mut()
    }
}

/// Parallel index range (no materialization).
pub struct RangePar {
    range: std::ops::Range<usize>,
}

impl ParallelBase for RangePar {
    type Item = usize;
    type Iter = std::ops::Range<usize>;

    fn len(&self) -> usize {
        self.range.len()
    }

    fn split_at(self, i: usize) -> (Self, Self) {
        let mid = self.range.start + i;
        (
            RangePar {
                range: self.range.start..mid,
            },
            RangePar {
                range: mid..self.range.end,
            },
        )
    }

    fn into_seq(self) -> Self::Iter {
        self.range
    }
}

/// `par_chunks` / shared-slice entry points.
pub trait ParallelSlice<T: Sync> {
    /// Parallel iterator over `size`-sized shared chunks.
    fn par_chunks(&self, size: usize) -> ChunksPar<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, size: usize) -> ChunksPar<'_, T> {
        assert!(size > 0, "chunk size must be non-zero");
        ChunksPar {
            slice: self,
            chunk: size,
        }
    }
}

/// `par_chunks_mut` / `par_iter_mut` entry points.
pub trait ParallelSliceMut<T: Send> {
    /// Parallel iterator over `size`-sized exclusive chunks.
    fn par_chunks_mut(&mut self, size: usize) -> ChunksMutPar<'_, T>;
    /// Parallel iterator over exclusive element references.
    fn par_iter_mut(&mut self) -> IterMutPar<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, size: usize) -> ChunksMutPar<'_, T> {
        assert!(size > 0, "chunk size must be non-zero");
        ChunksMutPar {
            slice: self,
            chunk: size,
        }
    }

    fn par_iter_mut(&mut self) -> IterMutPar<'_, T> {
        IterMutPar { slice: self }
    }
}

impl<T: Send> ParallelSliceMut<T> for Vec<T> {
    fn par_chunks_mut(&mut self, size: usize) -> ChunksMutPar<'_, T> {
        self.as_mut_slice().par_chunks_mut(size)
    }

    fn par_iter_mut(&mut self) -> IterMutPar<'_, T> {
        self.as_mut_slice().par_iter_mut()
    }
}

/// `into_par_iter` entry point.
pub trait IntoParallelIterator {
    /// The parallel iterator type.
    type ParIter: ParallelIterator;
    /// Convert into a parallel iterator.
    fn into_par_iter(self) -> Self::ParIter;
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type ParIter = RangePar;
    fn into_par_iter(self) -> RangePar {
        RangePar { range: self }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn chunks_mut_enumerate_for_each() {
        let mut v = vec![0usize; 100];
        v.par_chunks_mut(7).enumerate().for_each(|(i, ch)| {
            for x in ch.iter_mut() {
                *x = i;
            }
        });
        assert_eq!(v[0], 0);
        assert_eq!(v[7], 1);
        assert_eq!(v[99], 14);
    }

    #[test]
    fn map_reduce_matches_sequential() {
        let data: Vec<u8> = (0..10_000u64).map(|i| (i % 251) as u8).collect();
        let par: u64 = data
            .par_chunks(128)
            .map(|c| c.iter().map(|&b| b as u64).sum::<u64>())
            .reduce(|| 0, |a, b| a + b);
        let seq: u64 = data.iter().map(|&b| b as u64).sum();
        assert_eq!(par, seq);
    }

    #[test]
    fn range_sum() {
        let s: usize = (0..1000usize).into_par_iter().map(|i| i * 2).sum();
        assert_eq!(s, 999_000);
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = crate::join(|| 1 + 1, || "x");
        assert_eq!((a, b), (2, "x"));
    }

    #[test]
    fn nested_join_bounded() {
        fn rec(d: u32) -> u64 {
            if d == 0 {
                return 1;
            }
            let (a, b) = crate::join(|| rec(d - 1), || rec(d - 1));
            a + b
        }
        assert_eq!(rec(10), 1024);
    }

    #[test]
    fn pool_install_runs() {
        let pool = crate::ThreadPoolBuilder::new()
            .num_threads(2)
            .build()
            .unwrap();
        let r = pool.install(|| (0..100usize).into_par_iter().sum::<usize>());
        assert_eq!(r, 4950);
    }
}
