//! Offline proptest shim: deterministic random-input testing with the
//! proptest API surface the workspace uses. No shrinking — a failing case
//! panics with the generated inputs visible in the assertion message.

use std::collections::BTreeSet;
use std::ops::Range;

/// Test-case configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic xorshift64* generator.
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

/// Seed a per-test RNG from the test name (stable across runs).
pub fn test_rng(name: &str) -> TestRng {
    let mut seed = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        seed ^= b as u64;
        seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
    }
    TestRng(seed | 1)
}

/// A generator of random values (no shrinking in the shim).
pub trait Strategy {
    /// Generated value type.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<R, F: Fn(Self::Value) -> R>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Mapping combinator.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, R, F: Fn(S::Value) -> R> Strategy for Map<S, F> {
    type Value = R;
    fn generate(&self, rng: &mut TestRng) -> R {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as i128 - self.start as i128).max(1) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($s:ident . $i:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategy!(
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5)
);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// The canonical strategy.
    type Strategy: Strategy<Value = Self>;
    /// Build it.
    fn arbitrary() -> Self::Strategy;
}

/// `any::<T>()`: the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Strategy yielding uniformly random booleans.
#[derive(Debug, Clone, Copy, Default)]
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyBool;
    fn arbitrary() -> AnyBool {
        AnyBool
    }
}

macro_rules! arbitrary_full_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            type Strategy = Range<$t>;
            fn arbitrary() -> Range<$t> {
                <$t>::MIN..<$t>::MAX
            }
        }
    )*};
}

arbitrary_full_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Size specification for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        SizeRange {
            lo: r.start,
            hi: r.end.max(r.start + 1),
        }
    }
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        self.lo + rng.below((self.hi - self.lo) as u64) as usize
    }
}

pub mod collection {
    //! Collection strategies.

    use super::*;

    /// Strategy for `Vec<S::Value>` with a size drawn from `size`.
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// Generate vectors of values from `elem`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<S::Value>`; draws until the set reaches the
    /// chosen size or attempts run out (duplicates shrink the set).
    pub struct BTreeSetStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// Generate ordered sets of values from `elem`.
    pub fn btree_set<S>(elem: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let n = self.size.pick(rng);
            let mut out = BTreeSet::new();
            for _ in 0..n * 4 {
                if out.len() >= n {
                    break;
                }
                out.insert(self.elem.generate(rng));
            }
            out
        }
    }
}

pub mod sample {
    //! Sampling strategies.

    use super::*;

    /// Uniformly select one of the given options.
    pub struct Select<T> {
        options: Vec<T>,
    }

    /// Strategy choosing among `options` (must be non-empty).
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select requires at least one option");
        Select { options }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.options[rng.below(self.options.len() as u64) as usize].clone()
        }
    }
}

pub mod bool {
    //! Boolean strategies.

    /// Uniformly random booleans.
    pub const ANY: super::AnyBool = super::AnyBool;
}

/// String-pattern strategy: a `&str` is interpreted as a regex of the
/// restricted form `[class]{lo,hi}` (one character class with literal
/// characters, `a-b` ranges, and `\n`/`\t`/`\\`/`\]` escapes) — the only
/// shape the workspace uses.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let (chars, lo, hi) = parse_class_pattern(self)
            .unwrap_or_else(|| panic!("unsupported pattern for the proptest shim: {self:?}"));
        let n = lo + rng.below((hi - lo + 1) as u64) as usize;
        (0..n)
            .map(|_| chars[rng.below(chars.len() as u64) as usize])
            .collect()
    }
}

fn parse_class_pattern(pat: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pat.strip_prefix('[')?;
    let close = find_unescaped(rest, ']')?;
    let class: Vec<char> = rest[..close].chars().collect();
    let bounds = rest[close + 1..]
        .strip_prefix('{')?
        .strip_suffix('}')?
        .split_once(',')?;
    let lo: usize = bounds.0.parse().ok()?;
    let hi: usize = bounds.1.parse().ok()?;

    let mut chars = Vec::new();
    let mut i = 0;
    while i < class.len() {
        let c = match class[i] {
            '\\' => {
                i += 1;
                match *class.get(i)? {
                    'n' => '\n',
                    't' => '\t',
                    other => other,
                }
            }
            c => c,
        };
        // `a-b` range (a literal `-` at the ends is not a range).
        if i + 2 < class.len() && class[i + 1] == '-' && class[i + 2] != ']' {
            let end = class[i + 2];
            for x in c..=end {
                chars.push(x);
            }
            i += 3;
        } else {
            chars.push(c);
            i += 1;
        }
    }
    if chars.is_empty() || hi < lo {
        return None;
    }
    Some((chars, lo, hi))
}

fn find_unescaped(s: &str, target: char) -> Option<usize> {
    let chars: Vec<char> = s.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        if chars[i] == '\\' {
            i += 2;
            continue;
        }
        if chars[i] == target {
            return Some(i);
        }
        i += 1;
    }
    None
}

pub mod prelude {
    //! Everything a property test needs in scope.

    pub use crate::{
        any, prop_assert, prop_assert_eq, proptest, Arbitrary, ProptestConfig, Strategy,
    };

    pub mod prop {
        //! The `prop::` namespace (`prop::collection::vec` etc.).
        pub use crate::bool;
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Assert inside a property (panics; the shim has no failure persistence).
#[macro_export]
macro_rules! prop_assert {
    ($($arg:tt)*) => { assert!($($arg)*) };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($arg:tt)*) => { assert_eq!($($arg)*) };
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:pat in $strat:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::test_rng(stringify!($name));
            for __case in 0..__cfg.cases {
                let _ = __case;
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)*
                $body
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_in_bounds() {
        let mut rng = crate::test_rng("ranges");
        for _ in 0..1000 {
            let v = Strategy::generate(&(5u32..17), &mut rng);
            assert!((5..17).contains(&v));
        }
    }

    #[test]
    fn pattern_strategy_generates_in_class() {
        let mut rng = crate::test_rng("pattern");
        for _ in 0..200 {
            let s = Strategy::generate(&"[ -~\\n]{0,200}", &mut rng);
            assert!(s.len() <= 200);
            assert!(s.chars().all(|c| c == '\n' || (' '..='~').contains(&c)));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro itself: vec sizes respect the range.
        #[test]
        fn vec_sizes(v in prop::collection::vec(0u8..10, 3..7)) {
            prop_assert!(v.len() >= 3 && v.len() < 7);
            prop_assert!(v.iter().all(|&x| x < 10));
        }

        #[test]
        fn tuple_and_select(
            (a, b) in (0u64..9, any::<bool>()),
            word in prop::sample::select(vec!["x", "y"]),
        ) {
            prop_assert!(a < 9);
            let _ = b;
            prop_assert!(word == "x" || word == "y");
        }
    }
}
