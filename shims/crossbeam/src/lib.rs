//! Offline crossbeam shim: `utils::CachePadded` and `thread::scope`.

pub mod utils {
    use std::ops::{Deref, DerefMut};

    /// Pads and aligns a value to 128 bytes so adjacent atomics do not
    /// false-share a cache line (matches crossbeam's x86_64 alignment).
    #[derive(Debug, Default)]
    #[repr(align(128))]
    pub struct CachePadded<T>(T);

    impl<T> CachePadded<T> {
        /// Pad a value.
        pub fn new(value: T) -> Self {
            CachePadded(value)
        }

        /// Unwrap the padded value.
        pub fn into_inner(self) -> T {
            self.0
        }
    }

    impl<T> Deref for CachePadded<T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.0
        }
    }

    impl<T> DerefMut for CachePadded<T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.0
        }
    }
}

pub mod thread {
    //! Scoped threads with the crossbeam calling convention (the spawn
    //! closure receives the scope), implemented over `std::thread::scope`.

    /// Handle to a scope; passed to `scope`'s closure and to every spawned
    /// thread's closure.
    pub struct Scope<'scope, 'env: 'scope>(&'scope std::thread::Scope<'scope, 'env>);

    impl<'scope, 'env> Clone for Scope<'scope, 'env> {
        fn clone(&self) -> Self {
            *self
        }
    }
    impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

    /// Join handle for a scoped thread.
    pub struct ScopedJoinHandle<'scope, T>(std::thread::ScopedJoinHandle<'scope, T>);

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Wait for the thread to finish.
        pub fn join(self) -> std::thread::Result<T> {
            self.0.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a scoped thread; the closure receives the scope so it can
        /// spawn siblings.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.0;
            ScopedJoinHandle(inner.spawn(move || f(&Scope(inner))))
        }
    }

    /// Run `f` with a scope in which threads borrowing from the enclosing
    /// environment can be spawned; all are joined before `scope` returns.
    ///
    /// Unlike crossbeam, a panicking child propagates on join instead of
    /// being collected into the `Err` variant — the workspace only ever
    /// `expect`s the result, so the observable behavior matches.
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope(s))))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scope_spawns_and_joins() {
        let data = [1, 2, 3];
        let sum = crate::thread::scope(|scope| {
            let h = scope.spawn(|_| data.iter().sum::<i32>());
            h.join().unwrap()
        })
        .unwrap();
        assert_eq!(sum, 6);
    }

    #[test]
    fn nested_scopes() {
        let r = crate::thread::scope(|outer| {
            let h = outer.spawn(|_| {
                crate::thread::scope(|inner| {
                    let a = inner.spawn(|_| 2);
                    a.join().unwrap() + 1
                })
                .unwrap()
            });
            h.join().unwrap()
        })
        .unwrap();
        assert_eq!(r, 3);
    }

    #[test]
    fn cache_padded_alignment() {
        let v = crate::utils::CachePadded::new(0u64);
        assert_eq!(&v as *const _ as usize % 128, 0);
        assert_eq!(*v, 0);
    }
}
