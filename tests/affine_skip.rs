//! Differential suite for the affine skip tier.
//!
//! The tier replays a precompiled straight-line plan for counted loops
//! whose in-loop accesses are all statically proven affine, bypassing the
//! interpreter's dispatch loop. Its correctness claim is total
//! observational transparency: the event stream — every access, its op id,
//! and its timestamp — must be bit-identical with the tier on and off,
//! under every engine, with and without superinstruction fusion, across
//! scheduler quanta, and through mid-loop fallbacks (budget expiry, fault
//! injection). These tests are the gate for that claim; the perf win
//! (fewer dispatches) is asserted alongside so the tier cannot silently
//! stop engaging.

use interp::{DecodeConfig, Program, RecordingSink, RunConfig};
use profiler::{EngineKind, ProfileConfig, ProfileOutput};
use proptest::prelude::*;

/// The workloads the tier must be transparent on: dense linear algebra
/// (matmul), the simplest reduction (dotprod), and a sparse NAS kernel
/// with indirect accesses the tier must decline (CG).
fn programs() -> Vec<(&'static str, Program)> {
    ["matmul", "dotprod", "CG"]
        .into_iter()
        .map(|name| {
            let w = workloads::by_name(name).expect("workload exists");
            (name, w.program().expect("workload compiles"))
        })
        .collect()
}

fn engines() -> Vec<EngineKind> {
    vec![
        EngineKind::SerialPerfect,
        EngineKind::SerialSignature { slots: 1 << 22 },
        EngineKind::parallel(2),
    ]
}

fn run_cfg(skip: bool) -> RunConfig {
    RunConfig {
        affine_skip: skip,
        ..Default::default()
    }
}

fn profile(p: &Program, engine: EngineKind, skip: bool) -> ProfileOutput {
    let cfg = ProfileConfig {
        engine,
        run: run_cfg(skip),
        ..Default::default()
    };
    profiler::profile_program_with(p, &cfg).expect("profiles")
}

/// Record the full event stream under a config; returns the run result too
/// so step/dispatch accounting can be compared.
fn record(p: &Program, cfg: RunConfig) -> (interp::RunResult, Vec<interp::Event>) {
    let mut sink = RecordingSink::default();
    let r = interp::run_with_config(p, &mut sink, cfg).expect("runs");
    (r, sink.events)
}

/// Assert two recorded streams are bit-identical, reporting the first
/// divergence (events carry op ids and timestamps, so this is the full
/// observational-identity check).
fn assert_streams_identical(
    label: &str,
    on: &(interp::RunResult, Vec<interp::Event>),
    off: &(interp::RunResult, Vec<interp::Event>),
) {
    let (ron, evon) = on;
    let (roff, evoff) = off;
    assert_eq!(evon.len(), evoff.len(), "{label}: stream lengths differ");
    if let Some(i) = (0..evon.len()).find(|&i| evon[i] != evoff[i]) {
        panic!(
            "{label}: first divergence at event {i}:\n  skip-on:  {:?}\n  skip-off: {:?}",
            evon[i], evoff[i]
        );
    }
    assert_eq!(ron.ret, roff.ret, "{label}: return values differ");
    assert_eq!(ron.steps, roff.steps, "{label}: step counts differ");
    assert_eq!(ron.printed, roff.printed, "{label}: printed output differs");
    assert_eq!(roff.synth.loops, 0, "{label}: skip-off must not engage");
}

// ---------------------------------------------------------------------------
// Interpreter-level stream identity
// ---------------------------------------------------------------------------

/// The headline differential: on every workload, fused and unfused, the
/// skip-on event stream (op ids, addresses, timestamps) is bit-identical
/// to full interpretation — and on the affine workloads the tier actually
/// engages and eliminates dispatches.
#[test]
fn event_streams_identical_with_and_without_fusion() {
    for (name, p) in programs() {
        let unfused = Program::with_decode_config(p.module.clone(), DecodeConfig { fuse: false });
        for (mode, p) in [("fused", &p), ("unfused", &unfused)] {
            let label = format!("{name}/{mode}");
            let on = record(p, run_cfg(true));
            let off = record(p, run_cfg(false));
            assert_streams_identical(&label, &on, &off);
            assert!(!on.1.is_empty(), "{label}: empty stream proves nothing");
            if matches!(name, "matmul" | "dotprod") {
                assert!(
                    on.0.synth.loops > 0 && on.0.synth.accesses > 0,
                    "{label}: the tier must engage on affine workloads ({:?})",
                    on.0.synth
                );
                assert!(
                    on.0.dispatches < off.0.dispatches,
                    "{label}: plan replay must reduce dispatches ({} vs {})",
                    on.0.dispatches,
                    off.0.dispatches
                );
            }
        }
    }
}

/// Slice-budget parks land mid-cycle at arbitrary constituents; every
/// quantum must produce the same stream, and tiny quanta must actually
/// exercise the budget fallback.
#[test]
fn quantum_sweep_preserves_stream_and_exercises_budget_fallback() {
    let (name, p) = &programs()[1]; // dotprod: small but fully engaging
    let mut budget_fallbacks = 0;
    for quantum in [1u32, 2, 3, 5, 64, 1 << 20] {
        let cfg = |skip| RunConfig {
            quantum,
            ..run_cfg(skip)
        };
        let on = record(p, cfg(true));
        let off = record(p, cfg(false));
        assert_streams_identical(&format!("{name}/quantum={quantum}"), &on, &off);
        budget_fallbacks += on.0.synth.fallback_budget;
    }
    assert!(
        budget_fallbacks > 0,
        "small quanta must park plan replay mid-cycle"
    );
}

/// Fault injection: the tier shuts itself down after N synthesized cycles
/// — a genuinely mid-loop drop back to interpretation — without
/// perturbing the stream.
#[test]
fn fault_injection_drops_to_interpretation_without_stream_change() {
    for (name, p) in programs() {
        for limit in [0u64, 1, 3] {
            let cfg = RunConfig {
                affine_skip_fault: Some(limit),
                ..run_cfg(true)
            };
            let on = record(&p, cfg);
            let off = record(&p, run_cfg(false));
            assert_streams_identical(&format!("{name}/fault@{limit}"), &on, &off);
            if matches!(name, "matmul" | "dotprod") {
                assert_eq!(
                    on.0.synth.fallback_fault, 1,
                    "{name}/fault@{limit}: the fault must trip exactly once"
                );
                // The fault trips at the next cycle boundary, so one cycle
                // beyond the limit can complete before the tier disarms.
                assert!(
                    on.0.synth.cycles <= limit + 1,
                    "{name}/fault@{limit}: ran {} cycles past the fault point",
                    on.0.synth.cycles
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Profiler-level dependence identity: engines × fusion
// ---------------------------------------------------------------------------

/// Dependence output — merged set, occurrence counts, pre-merge totals,
/// PET — is identical skip-on vs skip-off under every engine, fused and
/// unfused.
#[test]
fn dependence_output_identical_across_engines_and_fusion() {
    for (name, p) in programs() {
        let unfused = Program::with_decode_config(p.module.clone(), DecodeConfig { fuse: false });
        for (mode, p) in [("fused", &p), ("unfused", &unfused)] {
            for engine in engines() {
                let label = format!("{name}/{mode}/{engine:?}");
                let on = profile(p, engine, true);
                let off = profile(p, engine, false);
                assert_eq!(
                    on.deps.sorted(),
                    off.deps.sorted(),
                    "{label}: dependence sets differ"
                );
                assert_eq!(
                    on.deps.total_found, off.deps.total_found,
                    "{label}: pre-merge totals differ"
                );
                for d in on.deps.sorted() {
                    assert_eq!(
                        on.deps.count(&d),
                        off.deps.count(&d),
                        "{label}: count differs for {d:?}"
                    );
                }
                assert_eq!(on.steps, off.steps, "{label}: step counts differ");
                assert_eq!(
                    format!("{:?}", on.pet.nodes),
                    format!("{:?}", off.pet.nodes),
                    "{label}: PET differs"
                );
                assert_eq!(off.synth.loops_skipped, 0, "{label}: skip-off engaged");
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Generated affine nests
// ---------------------------------------------------------------------------

/// One generated affine statement; indices stay inside `a[64]`/`b[64]` by
/// construction (stride ≤ 3, offset ≤ 7, trip ≤ 16 → max index 52). Same
/// shape family as the static-vs-dynamic suite, here driving the replay
/// tier instead of the claim prover.
#[derive(Debug, Clone, Copy)]
enum Stmt {
    /// `a[c1*i + d1] = a[c2*i + d2] + 1;`
    RewriteA { c1: i64, d1: i64, c2: i64, d2: i64 },
    /// `b[c1*i + d1] = a[c2*i + d2];`
    Copy { c1: i64, d1: i64, c2: i64, d2: i64 },
    /// `s = s + a[c2*i + d2];`
    Reduce { c2: i64, d2: i64 },
}

#[derive(Debug, Clone)]
struct Nest {
    trip: i64,
    stmts: Vec<Stmt>,
}

impl Nest {
    fn source(&self) -> String {
        let idx = |c: i64, d: i64| format!("{c} * i + {d}");
        let mut body = String::new();
        for s in &self.stmts {
            let line = match *s {
                Stmt::RewriteA { c1, d1, c2, d2 } => {
                    format!("a[{}] = a[{}] + 1;", idx(c1, d1), idx(c2, d2))
                }
                Stmt::Copy { c1, d1, c2, d2 } => {
                    format!("b[{}] = a[{}];", idx(c1, d1), idx(c2, d2))
                }
                Stmt::Reduce { c2, d2 } => format!("s = s + a[{}];", idx(c2, d2)),
            };
            body.push_str("        ");
            body.push_str(&line);
            body.push('\n');
        }
        format!(
            "global int a[64];\nglobal int b[64];\nglobal int s;\n\
             fn main() {{\n    for (int i = 0; i < {}; i = i + 1) {{\n{body}    }}\n}}\n",
            self.trip
        )
    }
}

fn nests() -> impl Strategy<Value = Nest> {
    (
        4i64..16,
        prop::collection::vec((0u32..3, 0i64..4, 0i64..8, 0i64..4, 0i64..8), 1..4),
    )
        .prop_map(|(trip, raw)| Nest {
            trip,
            stmts: raw
                .into_iter()
                .map(|(kind, c1, d1, c2, d2)| match kind {
                    0 => Stmt::RewriteA { c1, d1, c2, d2 },
                    1 => Stmt::Copy { c1, d1, c2, d2 },
                    _ => Stmt::Reduce { c2, d2 },
                })
                .collect(),
        })
}

proptest! {
    /// Every generated affine nest compiles to a plan, engages the tier,
    /// and replays a bit-identical stream, fused and unfused — and the
    /// serial-perfect dependence set is unchanged.
    #[test]
    fn generated_nests_replay_bit_identical(nest in nests()) {
        let src = nest.source();
        let module = lang::compile(&src, "gen").expect("generated nest compiles");
        let fused = Program::new(module.clone());
        let unfused = Program::with_decode_config(module, DecodeConfig { fuse: false });
        for (mode, p) in [("fused", &fused), ("unfused", &unfused)] {
            let on = record(p, run_cfg(true));
            let off = record(p, run_cfg(false));
            prop_assert_eq!(&on.1, &off.1, "{} stream differs for\n{}", mode, src);
            prop_assert_eq!(on.0.steps, off.0.steps);
            prop_assert!(
                on.0.synth.loops > 0 && on.0.synth.accesses > 0,
                "{}: affine nest must engage the tier ({:?}) for\n{}",
                mode, on.0.synth, src
            );
            prop_assert!(on.0.dispatches < off.0.dispatches);
        }
        let on = profile(&fused, EngineKind::SerialPerfect, true);
        let off = profile(&fused, EngineKind::SerialPerfect, false);
        prop_assert_eq!(on.deps.sorted(), off.deps.sorted(), "deps differ for\n{}", src);
    }
}
