//! Decode-equivalence suite for the pre-decoded interpreter.
//!
//! `Program::new` lowers the tree-shaped MIR into a compact flat
//! instruction stream — with the superinstruction peephole on by default —
//! and `interp::machine` executes it; `interp::reference` keeps the
//! original tree-walking loop (per-step frame/block/pc resolution, name-map
//! calls). The decode is pure lowering and fusion is observationally
//! invisible, so all three forms (fused, unfused, tree-walking) must
//! produce **byte-identical event streams** — not merely identical
//! dependence sets — on every workload, configuration, seed, and delivery
//! mode, including slices whose step budget expires in the middle of a
//! superinstruction.

use interp::{DecodeConfig, HotOp, Program, RecordingSink, RunConfig};

fn multithreaded_src() -> &'static str {
    "global int counter;
global int a[64];
fn w(int n) {
    for (int i = 0; i < n; i = i + 1) {
        lock(1);
        counter = counter + 1;
        unlock(1);
        a[i % 64] = a[i % 64] + i;
    }
}
fn main() {
    int t1 = spawn(w, 40);
    int t2 = spawn(w, 40);
    join(t1);
    join(t2);
}"
}

fn programs() -> Vec<(&'static str, Program)> {
    vec![
        ("MG", workloads::by_name("MG").unwrap().program().unwrap()),
        (
            "matmul",
            workloads::by_name("matmul").unwrap().program().unwrap(),
        ),
        (
            "multithreaded",
            Program::new(lang::compile(multithreaded_src(), "mt").unwrap()),
        ),
    ]
}

/// The same programs with the superinstruction peephole disabled —
/// derived from [`programs`] so the two lists cannot drift apart.
fn unfuse(programs: Vec<(&'static str, Program)>) -> Vec<(&'static str, Program)> {
    programs
        .into_iter()
        .map(|(name, p)| {
            (
                name,
                Program::with_decode_config(p.module, DecodeConfig { fuse: false }),
            )
        })
        .collect()
}

fn has_superinstructions(p: &Program) -> bool {
    p.code().iter().any(|f| {
        f.hot.iter().any(|op| {
            matches!(
                op,
                HotOp::CmpBranch { .. }
                    | HotOp::LoadCmpBranch { .. }
                    | HotOp::Rmw { .. }
                    | HotOp::RmwJump { .. }
                    | HotOp::LoadRmw { .. }
                    | HotOp::LoadRmwJump { .. }
                    | HotOp::LoadBin { .. }
                    | HotOp::LoadLoadBin { .. }
            )
        })
    })
}

fn record(p: &Program, cfg: RunConfig) -> (interp::RunResult, Vec<interp::Event>) {
    let mut sink = RecordingSink::default();
    let r = interp::run_with_config(p, &mut sink, cfg).unwrap();
    (r, sink.events)
}

fn record_reference(p: &Program, cfg: RunConfig) -> (interp::RunResult, Vec<interp::Event>) {
    let mut sink = RecordingSink::default();
    let r = interp::reference::run_with_config(p, &mut sink, cfg).unwrap();
    (r, sink.events)
}

#[test]
fn decoded_event_stream_identical_to_reference() {
    for (name, p) in programs() {
        let (nr, nev) = record(&p, RunConfig::default());
        let (rr, rev) = record_reference(&p, RunConfig::default());
        assert_eq!(nev.len(), rev.len(), "{name}: stream lengths differ");
        if let Some(i) = (0..nev.len()).find(|&i| nev[i] != rev[i]) {
            panic!(
                "{name}: first divergence at event {i}:\n  decoded:   {:?}\n  reference: {:?}",
                nev[i], rev[i]
            );
        }
        assert_eq!(nr.ret, rr.ret, "{name}: return values differ");
        assert_eq!(nr.steps, rr.steps, "{name}: step counts differ");
        assert_eq!(nr.threads, rr.threads, "{name}: thread counts differ");
        assert_eq!(nr.printed, rr.printed, "{name}: printed output differs");
        assert!(!nev.is_empty(), "{name}: empty stream proves nothing");
    }
}

#[test]
fn decoded_stream_identical_under_racy_delivery() {
    // Racy mode reorders delivery across threads at synchronization points;
    // the decoded loop must reproduce the exact same (reordered) stream.
    for (name, p) in programs() {
        let cfg = || RunConfig {
            racy_delivery: true,
            buffer_cap: 8,
            ..Default::default()
        };
        let (_, nev) = record(&p, cfg());
        let (_, rev) = record_reference(&p, cfg());
        assert_eq!(nev, rev, "{name}: racy-mode streams differ");
    }
}

#[test]
fn decoded_stream_identical_across_batch_caps_and_seeds() {
    let (_, p) = programs().pop().unwrap(); // the multithreaded workload
    for seed in [1u64, 0x5eed, u64::MAX / 3] {
        for batch_cap in [0usize, 7, 256] {
            let cfg = || RunConfig {
                seed,
                batch_cap,
                ..Default::default()
            };
            let (_, nev) = record(&p, cfg());
            let (_, rev) = record_reference(&p, cfg());
            assert_eq!(nev, rev, "seed {seed} batch_cap {batch_cap}");
        }
    }
}

#[test]
fn duplicate_function_names_bind_identically() {
    // Unverified hand-built modules may contain duplicate function names;
    // both interpreters must bind calls the same way (last definition
    // wins, the insert-overwrite semantics of the original name map).
    use mir::{FunctionBuilder, ModuleBuilder, Terminator, Ty, Value};
    let mut mb = ModuleBuilder::new("dup");
    for ret in [7i64, 42] {
        let mut fb = FunctionBuilder::new("pick", Some(Ty::I64), 1);
        fb.terminate(Terminator::Return(Some(Value::I64(ret).into())));
        mb.add_function(fb.build(1));
    }
    let mut fb = FunctionBuilder::new("main", Some(Ty::I64), 2);
    let dst = fb.call("pick", vec![], true, 2).unwrap();
    fb.terminate(Terminator::Return(Some(dst.into())));
    mb.add_function(fb.build(2));
    let p = Program::new(mb.build());
    let (nr, nev) = record(&p, RunConfig::default());
    let (rr, rev) = record_reference(&p, RunConfig::default());
    assert_eq!(nr.ret, rr.ret, "call bound to different definitions");
    assert_eq!(nr.ret, Some(mir::Value::I64(42)), "last definition wins");
    assert_eq!(nev, rev);
}

#[test]
fn unreachable_terminator_is_lazy() {
    // A dead block with no terminator (defaults to Unreachable) must not
    // fail at Program::new — only if it executes, like the tree walker.
    use mir::{FunctionBuilder, ModuleBuilder, Terminator};
    let mut mb = ModuleBuilder::new("dead");
    let mut fb = FunctionBuilder::new("main", None, 1);
    let dead = fb.new_block(); // never targeted, terminator stays Unreachable
    let _ = dead;
    fb.terminate(Terminator::Return(None));
    mb.add_function(fb.build(1));
    let p = Program::new(mb.build()); // must not panic
    let (_, nev) = record(&p, RunConfig::default());
    let (_, rev) = record_reference(&p, RunConfig::default());
    assert_eq!(nev, rev);
}

#[test]
fn decoded_errors_match_reference() {
    for src in [
        "fn main() -> int { int z = 0; return 4 / z; }",
        "global int a[4]; fn main() { int i = 9; a[i] = 1; }",
        "fn main() { lock(1); int t = spawn(h, 0); join(t); }\nfn h(int x) { lock(1); }",
    ] {
        let p = Program::new(lang::compile(src, "err").unwrap());
        let new = interp::run_with_config(&p, interp::NullSink, RunConfig::default());
        let old = interp::reference::run_with_config(&p, interp::NullSink, RunConfig::default());
        assert_eq!(new.unwrap_err(), old.unwrap_err(), "{src}");
    }
}

#[test]
fn fusion_on_and_off_are_byte_identical_everywhere() {
    // The four combinations — {fused, unfused} × {deterministic, racy} —
    // must all reproduce the tree-walking oracle's stream byte for byte,
    // across workloads and seeds. CG joins the sweep as the heaviest
    // superinstruction consumer (long Load+Load+Bin+Store chains).
    let mut fused = programs();
    fused.push(("CG", workloads::by_name("CG").unwrap().program().unwrap()));
    let unfused = unfuse(fused.clone());
    let fused = fused;
    for ((name, pf), (_, pu)) in fused.iter().zip(unfused.iter()) {
        assert!(
            has_superinstructions(pf),
            "{name}: fused program must contain superinstructions for this sweep to mean anything"
        );
        assert!(
            !has_superinstructions(pu),
            "{name}: fuse=false must not fuse"
        );
        for seed in [1u64, 0x5eed] {
            for racy in [false, true] {
                let cfg = || RunConfig {
                    seed,
                    racy_delivery: racy,
                    buffer_cap: 8,
                    ..Default::default()
                };
                let (fr, fev) = record(pf, cfg());
                let (ur, uev) = record(pu, cfg());
                let (rr, rev) = record_reference(pf, cfg());
                assert_eq!(
                    fev, uev,
                    "{name}: fused vs unfused (seed {seed}, racy {racy})"
                );
                assert_eq!(
                    fev, rev,
                    "{name}: fused vs oracle (seed {seed}, racy {racy})"
                );
                assert_eq!(fr.steps, ur.steps, "{name}: step counts");
                assert_eq!(fr.steps, rr.steps, "{name}: step counts vs oracle");
                assert_eq!(fr.ret, rr.ret, "{name}: return values");
                assert!(!fev.is_empty(), "{name}: empty stream proves nothing");
            }
        }
    }
}

#[test]
fn budget_expiry_mid_superinstruction_suspends_and_resumes_identically() {
    // The sharpest hazard fusion introduces: the scheduler's step budget
    // can expire between two constituents of a fused op. `quantum: 1`
    // forces that on *every* multi-constituent superinstruction (each
    // slice admits exactly one logical step, so every fused op parks
    // mid-sequence and resumes through its plain tail slots); 2, 3, and 5
    // exercise every other split point. The suspended/resumed stream must
    // stay byte-identical to the oracle and the unfused stream — same
    // events, same timestamps, same batch boundaries.
    let src = "global int a[16];
global int s;
fn main() {
    for (int i = 0; i < 16; i = i + 1) {
        s = s + a[i];
        a[i] = a[i] + 1;
    }
}";
    let m = lang::compile(src, "budget").unwrap();
    let fused = Program::new(m.clone());
    let unfused = Program::with_decode_config(m, DecodeConfig { fuse: false });
    assert!(
        has_superinstructions(&fused),
        "the loop must fuse for this test to bite"
    );
    for quantum in [1u32, 2, 3, 5, 64] {
        for batch_cap in [0usize, 3, 256] {
            let cfg = || RunConfig {
                quantum,
                batch_cap,
                ..Default::default()
            };
            let (fr, fev) = record(&fused, cfg());
            let (ur, uev) = record(&unfused, cfg());
            let (rr, rev) = record_reference(&fused, cfg());
            if let Some(i) = (0..fev.len().min(rev.len())).find(|&i| fev[i] != rev[i]) {
                panic!(
                    "quantum {quantum} batch {batch_cap}: divergence at event {i}:\n  fused:  {:?}\n  oracle: {:?}",
                    fev[i], rev[i]
                );
            }
            assert_eq!(fev.len(), rev.len(), "quantum {quantum} batch {batch_cap}");
            assert_eq!(
                fev, uev,
                "quantum {quantum} batch {batch_cap}: fused vs unfused"
            );
            assert_eq!(fr.steps, rr.steps);
            assert_eq!(fr.steps, ur.steps);
        }
    }
    // The multithreaded workload adds scheduler interleaving on top: a
    // thread parked mid-superinstruction must resume correctly even when
    // other threads ran in between.
    let m = lang::compile(multithreaded_src(), "mtq").unwrap();
    let fused = Program::new(m.clone());
    let unfused = Program::with_decode_config(m, DecodeConfig { fuse: false });
    assert!(has_superinstructions(&fused));
    for quantum in [1u32, 3, 64] {
        let cfg = || RunConfig {
            quantum,
            ..Default::default()
        };
        let (_, fev) = record(&fused, cfg());
        let (_, uev) = record(&unfused, cfg());
        let (_, rev) = record_reference(&fused, cfg());
        assert_eq!(fev, rev, "mt quantum {quantum}: fused vs oracle");
        assert_eq!(fev, uev, "mt quantum {quantum}: fused vs unfused");
    }
}

#[test]
fn traps_inside_fused_constituents_match_reference() {
    // An out-of-bounds trap can fire in any memory constituent of a fused
    // op (the load, the second load, or the store). The error and the
    // emitted event *prefix* must match the oracle and the unfused form
    // exactly — including under quantum 1, where the trap happens in a
    // resumed tail rather than inside the fused head.
    let srcs = [
        // Load constituent traps: reading a[i] walks past the end.
        "global int a[8];\nglobal int s;\nfn main() { for (int i = 0; i < 9; i = i + 1) { s = s + a[i]; } }",
        // Store constituent traps: a[i] = a[i] + 1 where the bound check
        // fails only at the last iteration's store-side index.
        "global int a[8];\nglobal int s;\nfn main() { for (int i = 0; i < 9; i = i + 1) { a[i] = a[i] + 1; } }",
    ];
    for src in srcs {
        let m = lang::compile(src, "trap").unwrap();
        let fused = Program::new(m.clone());
        let unfused = Program::with_decode_config(m, DecodeConfig { fuse: false });
        assert!(has_superinstructions(&fused), "{src}");
        for quantum in [1u32, 64] {
            let cfg = || RunConfig {
                quantum,
                ..Default::default()
            };
            let run = |p: &Program| {
                let mut sink = RecordingSink::default();
                let err = interp::run_with_config(p, &mut sink, cfg()).unwrap_err();
                (err, sink.events)
            };
            let run_ref = |p: &Program| {
                let mut sink = RecordingSink::default();
                let err = interp::reference::run_with_config(p, &mut sink, cfg()).unwrap_err();
                (err, sink.events)
            };
            let (fe, fev) = run(&fused);
            let (ue, uev) = run(&unfused);
            let (re, rev) = run_ref(&fused);
            assert_eq!(fe, re, "{src} (quantum {quantum})");
            assert_eq!(fe, ue, "{src} (quantum {quantum})");
            assert_eq!(fev, rev, "{src} (quantum {quantum}): error-path prefix");
            assert_eq!(
                fev, uev,
                "{src} (quantum {quantum}): fused vs unfused prefix"
            );
            assert!(!fev.is_empty(), "{src}: the trap must happen mid-run");
        }
    }
}
