//! Decode-equivalence suite for the pre-decoded interpreter.
//!
//! `Program::new` lowers the tree-shaped MIR into a flat instruction stream
//! and `interp::machine` executes it; `interp::reference` keeps the original
//! tree-walking loop (per-step frame/block/pc resolution, name-map calls).
//! The decode is pure lowering, so the two interpreters must produce
//! **byte-identical event streams** — not merely identical dependence sets —
//! on every workload, configuration, and delivery mode.

use interp::{Program, RecordingSink, RunConfig};

fn programs() -> Vec<(&'static str, Program)> {
    let multithreaded = "global int counter;
global int a[64];
fn w(int n) {
    for (int i = 0; i < n; i = i + 1) {
        lock(1);
        counter = counter + 1;
        unlock(1);
        a[i % 64] = a[i % 64] + i;
    }
}
fn main() {
    int t1 = spawn(w, 40);
    int t2 = spawn(w, 40);
    join(t1);
    join(t2);
}";
    vec![
        ("MG", workloads::by_name("MG").unwrap().program().unwrap()),
        (
            "matmul",
            workloads::by_name("matmul").unwrap().program().unwrap(),
        ),
        (
            "multithreaded",
            Program::new(lang::compile(multithreaded, "mt").unwrap()),
        ),
    ]
}

fn record(p: &Program, cfg: RunConfig) -> (interp::RunResult, Vec<interp::Event>) {
    let mut sink = RecordingSink::default();
    let r = interp::run_with_config(p, &mut sink, cfg).unwrap();
    (r, sink.events)
}

fn record_reference(p: &Program, cfg: RunConfig) -> (interp::RunResult, Vec<interp::Event>) {
    let mut sink = RecordingSink::default();
    let r = interp::reference::run_with_config(p, &mut sink, cfg).unwrap();
    (r, sink.events)
}

#[test]
fn decoded_event_stream_identical_to_reference() {
    for (name, p) in programs() {
        let (nr, nev) = record(&p, RunConfig::default());
        let (rr, rev) = record_reference(&p, RunConfig::default());
        assert_eq!(nev.len(), rev.len(), "{name}: stream lengths differ");
        if let Some(i) = (0..nev.len()).find(|&i| nev[i] != rev[i]) {
            panic!(
                "{name}: first divergence at event {i}:\n  decoded:   {:?}\n  reference: {:?}",
                nev[i], rev[i]
            );
        }
        assert_eq!(nr.ret, rr.ret, "{name}: return values differ");
        assert_eq!(nr.steps, rr.steps, "{name}: step counts differ");
        assert_eq!(nr.threads, rr.threads, "{name}: thread counts differ");
        assert_eq!(nr.printed, rr.printed, "{name}: printed output differs");
        assert!(!nev.is_empty(), "{name}: empty stream proves nothing");
    }
}

#[test]
fn decoded_stream_identical_under_racy_delivery() {
    // Racy mode reorders delivery across threads at synchronization points;
    // the decoded loop must reproduce the exact same (reordered) stream.
    for (name, p) in programs() {
        let cfg = || RunConfig {
            racy_delivery: true,
            buffer_cap: 8,
            ..Default::default()
        };
        let (_, nev) = record(&p, cfg());
        let (_, rev) = record_reference(&p, cfg());
        assert_eq!(nev, rev, "{name}: racy-mode streams differ");
    }
}

#[test]
fn decoded_stream_identical_across_batch_caps_and_seeds() {
    let (_, p) = programs().pop().unwrap(); // the multithreaded workload
    for seed in [1u64, 0x5eed, u64::MAX / 3] {
        for batch_cap in [0usize, 7, 256] {
            let cfg = || RunConfig {
                seed,
                batch_cap,
                ..Default::default()
            };
            let (_, nev) = record(&p, cfg());
            let (_, rev) = record_reference(&p, cfg());
            assert_eq!(nev, rev, "seed {seed} batch_cap {batch_cap}");
        }
    }
}

#[test]
fn duplicate_function_names_bind_identically() {
    // Unverified hand-built modules may contain duplicate function names;
    // both interpreters must bind calls the same way (last definition
    // wins, the insert-overwrite semantics of the original name map).
    use mir::{FunctionBuilder, ModuleBuilder, Terminator, Ty, Value};
    let mut mb = ModuleBuilder::new("dup");
    for ret in [7i64, 42] {
        let mut fb = FunctionBuilder::new("pick", Some(Ty::I64), 1);
        fb.terminate(Terminator::Return(Some(Value::I64(ret).into())));
        mb.add_function(fb.build(1));
    }
    let mut fb = FunctionBuilder::new("main", Some(Ty::I64), 2);
    let dst = fb.call("pick", vec![], true, 2).unwrap();
    fb.terminate(Terminator::Return(Some(dst.into())));
    mb.add_function(fb.build(2));
    let p = Program::new(mb.build());
    let (nr, nev) = record(&p, RunConfig::default());
    let (rr, rev) = record_reference(&p, RunConfig::default());
    assert_eq!(nr.ret, rr.ret, "call bound to different definitions");
    assert_eq!(nr.ret, Some(mir::Value::I64(42)), "last definition wins");
    assert_eq!(nev, rev);
}

#[test]
fn unreachable_terminator_is_lazy() {
    // A dead block with no terminator (defaults to Unreachable) must not
    // fail at Program::new — only if it executes, like the tree walker.
    use mir::{FunctionBuilder, ModuleBuilder, Terminator};
    let mut mb = ModuleBuilder::new("dead");
    let mut fb = FunctionBuilder::new("main", None, 1);
    let dead = fb.new_block(); // never targeted, terminator stays Unreachable
    let _ = dead;
    fb.terminate(Terminator::Return(None));
    mb.add_function(fb.build(1));
    let p = Program::new(mb.build()); // must not panic
    let (_, nev) = record(&p, RunConfig::default());
    let (_, rev) = record_reference(&p, RunConfig::default());
    assert_eq!(nev, rev);
}

#[test]
fn decoded_errors_match_reference() {
    for src in [
        "fn main() -> int { int z = 0; return 4 / z; }",
        "global int a[4]; fn main() { int i = 9; a[i] = 1; }",
        "fn main() { lock(1); int t = spawn(h, 0); join(t); }\nfn h(int x) { lock(1); }",
    ] {
        let p = Program::new(lang::compile(src, "err").unwrap());
        let new = interp::run_with_config(&p, interp::NullSink, RunConfig::default());
        let old = interp::reference::run_with_config(&p, interp::NullSink, RunConfig::default());
        assert_eq!(new.unwrap_err(), old.unwrap_err(), "{src}");
    }
}
