//! Property-based tests over core invariants, using generated mini-C
//! programs and generated access traces.

use profiler::{
    Access, AccessMap, Cell, DepBuilder, EngineConfig, HashShadowMap, InstanceTable, PerfectMap,
    SignatureMap, NO_INSTANCE,
};
use proptest::prelude::*;

/// Strategy: a random access trace over a small address set.
fn traces() -> impl Strategy<Value = Vec<Access>> {
    prop::collection::vec((0u64..24, 0u32..12, any::<bool>()), 1..200).prop_map(|raw| {
        raw.into_iter()
            .enumerate()
            .map(|(i, (slot, op, is_write))| {
                // A static memory operation has a fixed access type
                // ("accessType … does not change over time", §2.4), so
                // loads and stores draw from disjoint op-id ranges.
                let op = op * 2 + is_write as u32;
                Access {
                    addr: 0x1000 + slot * 8,
                    op,
                    line: op + 1,
                    var: op % 5,
                    thread: 0,
                    ts: i as u64 + 1,
                    is_write,
                    instance: NO_INSTANCE,
                    iter: 0,
                }
            })
            .collect()
    })
}

proptest! {
    /// A sufficiently large signature must agree exactly with the perfect
    /// shadow on any trace (no collisions → no approximation error).
    #[test]
    fn large_signature_equals_perfect(trace in traces()) {
        let t = InstanceTable::new();
        let mut sig = DepBuilder::new(
            SignatureMap::new(1 << 16),
            SignatureMap::new(1 << 16),
            32,
            EngineConfig::default(),
        );
        let mut per = DepBuilder::new(
            PerfectMap::new(),
            PerfectMap::new(),
            32,
            EngineConfig::default(),
        );
        for a in &trace {
            sig.process(a, &t);
            per.process(a, &t);
        }
        prop_assert_eq!(sig.deps.sorted(), per.deps.sorted());
    }

    /// The page-table shadow memory agrees with the legacy `HashMap`
    /// shadow on any trace — the engines are interchangeable bit for bit.
    #[test]
    fn page_table_equals_hash_shadow(trace in traces()) {
        let t = InstanceTable::new();
        let mut page = DepBuilder::new(
            PerfectMap::new(),
            PerfectMap::new(),
            32,
            EngineConfig::default(),
        );
        let mut hash = DepBuilder::new(
            HashShadowMap::new(),
            HashShadowMap::new(),
            32,
            EngineConfig::default(),
        );
        for a in &trace {
            page.process(a, &t);
            hash.process(a, &t);
        }
        prop_assert_eq!(page.deps.sorted(), hash.deps.sorted());
        prop_assert_eq!(page.deps.total_found, hash.deps.total_found);
    }

    /// Skipping never changes the dependence output, on any trace.
    #[test]
    fn skip_is_output_transparent(trace in traces()) {
        let t = InstanceTable::new();
        let mut plain = DepBuilder::new(
            PerfectMap::new(),
            PerfectMap::new(),
            32,
            EngineConfig { skip_loops: false },
        );
        let mut skip = DepBuilder::new(
            PerfectMap::new(),
            PerfectMap::new(),
            32,
            EngineConfig { skip_loops: true },
        );
        for a in &trace {
            plain.process(a, &t);
            skip.process(a, &t);
        }
        prop_assert_eq!(plain.deps.sorted(), skip.deps.sorted());
    }

    /// Merging is idempotent in the merged size: processing a trace twice
    /// must not add new *distinct* dependences beyond the union semantics
    /// of merged output (counts grow, set may only grow by deps created at
    /// the replay boundary).
    #[test]
    fn dep_counts_accumulate(trace in traces()) {
        let t = InstanceTable::new();
        let mut e = DepBuilder::new(
            PerfectMap::new(),
            PerfectMap::new(),
            32,
            EngineConfig::default(),
        );
        for a in &trace {
            e.process(a, &t);
        }
        let first_total = e.deps.total_found;
        let first_merged = e.deps.len() as u64;
        prop_assert!(first_merged <= first_total.max(1));
    }

    /// Signature membership: after inserting an address, `get` on a
    /// collision-free table returns exactly what was stored.
    #[test]
    fn signature_roundtrip(addrs in prop::collection::btree_set(0u64..512, 1..64)) {
        let mut m = SignatureMap::new(1 << 16);
        for (i, &a) in addrs.iter().enumerate() {
            m.set(0x4000 + a * 8, Cell {
                op: i as u32,
                line: i as u32 + 1,
                var: 0,
                thread: 0,
                ts: i as u64,
                instance: NO_INSTANCE,
                iter: 0,
            });
        }
        for (i, &a) in addrs.iter().enumerate() {
            let c = m.get(0x4000 + a * 8);
            prop_assert_eq!(c.map(|c| c.op), Some(i as u32));
        }
    }

    /// The carried-by relation is symmetric in its verdict (a dep between
    /// two contexts is carried by the same loop regardless of argument
    /// order).
    #[test]
    fn carried_by_symmetric(
        depth_a in 0usize..4,
        depth_b in 0usize..4,
        iters in prop::collection::vec(1u32..5, 8),
    ) {
        let mut t = InstanceTable::new();
        // Build one nested chain of instances.
        let mut chain = vec![];
        let mut parent = NO_INSTANCE;
        for d in 0..4u32 {
            let inst = t.enter((0, d + 1), parent, iters[d as usize]);
            chain.push(inst);
            parent = inst;
        }
        let (ia, ib) = (chain[depth_a], chain[depth_b]);
        let (ua, ub) = (iters[4 + depth_a % 4], iters[(5 + depth_b) % 8]);
        let ab = t.carried_by(ia, ua, ib, ub);
        let ba = t.carried_by(ib, ub, ia, ua);
        prop_assert_eq!(ab, ba);
    }
}

mod program_props {
    use super::*;

    /// Strategy: generate a random but well-formed mini-C loop nest over
    /// two global arrays.
    fn programs() -> impl Strategy<Value = String> {
        (
            1u32..5,            // outer trip count divisor
            prop::bool::ANY,    // reduction?
            prop::bool::ANY,    // recurrence?
            2u32..6,            // work lines
        )
            .prop_map(|(div, reduction, recurrence, work)| {
                let n = 64 / div;
                let mut body = String::new();
                for w in 0..work {
                    body.push_str(&format!("        b[i] = a[i] * {w} + b[i];\n"));
                }
                if reduction {
                    body.push_str("        s = s + a[i];\n");
                }
                if recurrence {
                    body.push_str("        c[i + 1] = c[i] + 1;\n");
                }
                format!(
                    "global int a[70];\nglobal int b[70];\nglobal int c[70];\nglobal int s;\nfn main() {{\n    for (int i = 0; i < {n}; i = i + 1) {{\n{body}    }}\n}}\n"
                )
            })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Generated programs always compile, run, and profile; the
        /// discovery verdict matches the generated structure: a recurrence
        /// forces non-DOALL, otherwise the loop is parallel.
        #[test]
        fn discovery_matches_generated_structure(src in programs()) {
            let program = interp::Program::new(
                lang::compile(&src, "gen").expect("generated program compiles"),
            );
            let report = discopop::analyze_program(&program).expect("analyzes");
            let has_recurrence = src.contains("c[i + 1]");
            let l = &report.discovery.loops[0];
            if has_recurrence {
                prop_assert!(
                    matches!(
                        l.class,
                        discovery::LoopClass::Doacross | discovery::LoopClass::Sequential
                    ),
                    "recurrence mis-detected: {:?}\n{}",
                    l,
                    src
                );
            } else {
                prop_assert!(
                    matches!(
                        l.class,
                        discovery::LoopClass::Doall | discovery::LoopClass::Reduction
                    ),
                    "parallel loop mis-detected: {:?}\n{}",
                    l,
                    src
                );
            }
        }

        /// Every line with a memory access is covered by exactly one CU of
        /// the fine-grained decomposition (partition property).
        #[test]
        fn cus_partition_accessed_lines(src in programs()) {
            let program = interp::Program::new(
                lang::compile(&src, "gen").expect("compiles"),
            );
            let out = profiler::profile_program(&program).expect("profiles");
            let graph = cu::build_cu_graph_fine(&cu::CuBuildInput {
                program: &program,
                deps: &out.deps,
                pet: Some(&out.pet),
            });
            // Fragment CUs must never overlap each other's lines.
            let mut seen = std::collections::BTreeSet::new();
            for c in &graph.cus {
                if c.kind == cu::CuKind::Fragment {
                    for l in &c.lines {
                        prop_assert!(
                            seen.insert(*l),
                            "line {l} in two fragment CUs\n{src}"
                        );
                    }
                }
            }
        }
    }
}

mod robustness_props {
    use super::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// The frontend never panics: arbitrary byte soup either compiles
        /// or returns a structured error with a line number.
        #[test]
        fn compiler_never_panics(src in "[ -~\\n]{0,200}") {
            match lang::compile(&src, "fuzz") {
                Ok(m) => {
                    // Whatever compiles must verify.
                    prop_assert!(mir::verify_module(&m).is_empty());
                }
                Err(e) => prop_assert!(!e.message.is_empty()),
            }
        }

        /// Token-plausible soup built from language fragments also never
        /// panics (hits deeper parser paths than raw bytes).
        #[test]
        fn parser_never_panics_on_fragment_soup(
            parts in prop::collection::vec(
                prop::sample::select(vec![
                    "fn", "main", "(", ")", "{", "}", "int", "float", "for",
                    "while", "if", "else", "return", ";", "=", "+", "x",
                    "42", "1.5", "[", "]", ",", "<", "global", "break",
                ]),
                0..40,
            ),
        ) {
            let src = parts.join(" ");
            let _ = lang::compile(&src, "fuzz");
        }
    }
}

mod governance_props {
    use super::*;
    use profiler::estimated_fp_rate;
    use std::collections::BTreeSet;

    /// The signature slot counts the degradation ladder moves through at
    /// test scale: collision-free at the top, heavily colliding at the
    /// bottom (the trace strategy touches up to 24 distinct addresses).
    const TIERS: [usize; 4] = [1 << 16, 1 << 12, 256, 64];

    fn marker(i: usize) -> Cell {
        Cell {
            op: i as u32,
            line: i as u32 + 1,
            var: 0,
            thread: 0,
            ts: i as u64 + 1,
            instance: NO_INSTANCE,
            iter: 0,
        }
    }

    /// Distinct addresses of a trace.
    fn addrs_of(trace: &[Access]) -> Vec<u64> {
        trace
            .iter()
            .map(|a| a.addr)
            .collect::<BTreeSet<_>>()
            .into_iter()
            .collect()
    }

    /// Detect collision-freedom differentially: write one distinct marker
    /// per address, then check every marker reads back intact.
    fn collision_free(slots: usize, addrs: &[u64]) -> bool {
        let mut m = SignatureMap::new(slots);
        for (i, &a) in addrs.iter().enumerate() {
            m.set(a, marker(i));
        }
        addrs
            .iter()
            .enumerate()
            .all(|(i, &a)| m.get(a).map(|c| c.op) == Some(i as u32))
    }

    /// Two distinct addresses share a slot at this size (detected
    /// differentially: plant a marker under `a`, probe through `b`).
    fn same_slot(slots: usize, a: u64, b: u64) -> bool {
        let mut m = SignatureMap::new(slots);
        m.set(a, marker(0));
        m.get(b).is_some()
    }

    /// Addresses of the set whose slot is shared with a *different*
    /// address — the only places a signature can mis-report.
    fn colliding_addrs(slots: usize, addrs: &[u64]) -> BTreeSet<u64> {
        addrs
            .iter()
            .copied()
            .filter(|&a| addrs.iter().any(|&b| b != a && same_slot(slots, a, b)))
            .collect()
    }

    proptest! {
        /// The degradation ladder's accuracy contract, tier by tier
        /// against the perfect oracle: a collision-free signature is
        /// *exact*, and a colliding one only mis-reports where the
        /// published false-positive estimate (Eq. 2.2) admits error —
        /// extras stay bounded by the estimate taken over the probes that
        /// could produce them.
        #[test]
        fn signature_tiers_against_perfect_oracle(trace in traces()) {
            let t = InstanceTable::new();
            let mut per = DepBuilder::new(
                PerfectMap::new(),
                PerfectMap::new(),
                32,
                EngineConfig::default(),
            );
            for a in &trace {
                per.process(a, &t);
            }
            let oracle: BTreeSet<_> = per.deps.sorted().into_iter().collect();
            let addrs = addrs_of(&trace);

            for tier in TIERS {
                let mut sig = DepBuilder::new(
                    SignatureMap::new(tier),
                    SignatureMap::new(tier),
                    32,
                    EngineConfig::default(),
                );
                for a in &trace {
                    sig.process(a, &t);
                }
                let got: BTreeSet<_> = sig.deps.sorted().into_iter().collect();
                if collision_free(tier, &addrs) {
                    prop_assert_eq!(&got, &oracle, "collision-free tier {} must be exact", tier);
                } else {
                    let fp = estimated_fp_rate(tier, addrs.len());
                    prop_assert!(fp > 0.0, "colliding tier {} must publish a nonzero FP estimate", tier);
                    // Hard bound: a signature only mis-reports through a
                    // probe on a slot-sharing address, and one probe adds
                    // at most two dependence edges (vs last read and last
                    // write), so distinct extras cannot exceed twice the
                    // colliding probe count.
                    let colliding = colliding_addrs(tier, &addrs);
                    let colliding_probes =
                        trace.iter().filter(|p| colliding.contains(&p.addr)).count();
                    let extras = got.difference(&oracle).count();
                    let missing = oracle.difference(&got).count();
                    prop_assert!(
                        extras + missing <= 2 * colliding_probes,
                        "tier {}: {} extras + {} missing exceed 2×{} colliding probes",
                        tier, extras, missing, colliding_probes
                    );
                }
            }
        }

        /// Halving re-keys exactly (the ladder's slot-level exactness
        /// claim): inserting a stream into `m` slots and halving `k` times
        /// leaves precisely the state of a fresh `m/2^k`-slot signature
        /// fed the same stream. Timestamps grow with insertion order, so
        /// the halving merge (newest wins) and direct insertion (last
        /// write wins) must pick identical survivors.
        #[test]
        fn halving_matches_directly_built_signature(
            raw in prop::collection::vec(0u64..4096, 1..128),
            halvings in 1usize..4,
        ) {
            let start = 1usize << 10;
            let mut halved = SignatureMap::new(start);
            for (i, &a) in raw.iter().enumerate() {
                halved.set(0x2000 + a * 8, marker(i));
            }
            for _ in 0..halvings {
                halved.halve();
            }
            let finals = start >> halvings;
            prop_assert_eq!(halved.num_slots(), finals);

            let mut direct = SignatureMap::new(finals);
            for (i, &a) in raw.iter().enumerate() {
                direct.set(0x2000 + a * 8, marker(i));
            }
            for &a in &raw {
                let addr = 0x2000 + a * 8;
                prop_assert_eq!(
                    halved.get(addr).map(|c| (c.op, c.ts)),
                    direct.get(addr).map(|c| (c.op, c.ts)),
                    "address {:#x} diverges after {} halvings", addr, halvings
                );
            }
            prop_assert!(halved.occupied() <= direct.occupied().max(raw.len()));
        }

        /// `from_perfect` (the ladder's first rung) preserves exactly the
        /// newest cell per slot: on a collision-free address set the
        /// signature answers every address identically to the shadow it
        /// was built from.
        #[test]
        fn perfect_to_signature_rung_is_faithful(
            raw in prop::collection::vec(0u64..512, 1..64),
        ) {
            let mut per = PerfectMap::new();
            for (i, &a) in raw.iter().enumerate() {
                per.set(0x3000 + a * 8, marker(i));
            }
            let addrs: Vec<u64> = raw.iter().map(|&a| 0x3000 + a * 8).collect::<BTreeSet<_>>().into_iter().collect();
            let sig = SignatureMap::from_perfect(&per, 1 << 16);
            if collision_free(1 << 16, &addrs) {
                for &addr in &addrs {
                    prop_assert_eq!(
                        sig.get(addr).map(|c| (c.op, c.ts)),
                        per.get(addr).map(|c| (c.op, c.ts))
                    );
                }
            }
        }
    }
}

mod failure_injection {
    /// An infinite loop hits the step limit instead of hanging.
    #[test]
    fn step_limit_enforced() {
        let m = lang::compile("fn main() { while (1) { } }", "t").unwrap();
        let p = interp::Program::new(m);
        let cfg = interp::RunConfig {
            max_steps: 10_000,
            ..Default::default()
        };
        assert_eq!(
            interp::run_with_config(&p, interp::NullSink, cfg).unwrap_err(),
            interp::RuntimeError::StepLimit
        );
    }

    /// The profiler surfaces target-program failures instead of producing
    /// partial garbage silently.
    #[test]
    fn profiler_propagates_runtime_errors() {
        let m = lang::compile("global int a[4];\nfn main() { int i = 7; a[i] = 1; }", "t").unwrap();
        let p = interp::Program::new(m);
        assert!(matches!(
            profiler::profile_program(&p),
            Err(profiler::ProfileError::Runtime(
                interp::RuntimeError::OutOfBounds { .. }
            ))
        ));
    }

    /// The parallel profiler shuts its workers down cleanly even when the
    /// target program fails mid-run.
    #[test]
    fn parallel_profiler_cleans_up_on_error() {
        let m = lang::compile(
            "fn main() { for (int i = 0; i < 10; i = i + 1) { int z = 5 - i; int q = 10 / (z * z + z - 30); } }",
            "t",
        )
        .unwrap();
        let p = interp::Program::new(m);
        // Runs to completion or fails; either way this must not hang or
        // leak worker threads (thread join happens in finalize/drop).
        let _ = profiler::profile_parallel(
            &p,
            profiler::ParallelConfig {
                workers: 4,
                ..Default::default()
            },
            interp::RunConfig::default(),
        );
    }

    /// Deadlocked targets are detected, not spun on.
    #[test]
    fn deadlock_surfaces_through_profiler() {
        let m = lang::compile(
            "fn h(int x) { lock(2); unlock(2); }\nfn main() { lock(2); int t = spawn(h, 0); join(t); }",
            "t",
        )
        .unwrap();
        let p = interp::Program::new(m);
        assert!(matches!(
            profiler::profile_program(&p),
            Err(profiler::ProfileError::Runtime(
                interp::RuntimeError::Deadlock { .. }
            ))
        ));
    }
}
