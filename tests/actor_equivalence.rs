//! Differential gate for the actor scheduler tier.
//!
//! The run-queue scheduler and mailbox builtins live in two independent
//! implementations: `interp::machine` (pre-decoded dispatch) and
//! `interp::reference` (tree-walking oracle). Both share `interp::sched`
//! policy but derive mailbox op ids, timestamps, and park/wake points
//! independently — so their event streams must stay **byte-identical**
//! across seeds, batch caps, and delivery modes, and every profiler engine
//! must produce the same dependence set over those streams. The 10k-actor
//! stress workload additionally pins determinism at scale: same seed →
//! same dependence set, step count, and channel matrix.

use interp::{Program, RecordingSink, RunConfig};
use profiler::EngineKind;

fn actor_programs() -> Vec<(&'static str, Program)> {
    ["actor_pipeline", "actor_fanout", "actor_ring"]
        .into_iter()
        .map(|name| (name, workloads::by_name(name).unwrap().program().unwrap()))
        .collect()
}

fn record(p: &Program, cfg: RunConfig) -> (interp::RunResult, Vec<interp::Event>) {
    let mut sink = RecordingSink::default();
    let r = interp::run_with_config(p, &mut sink, cfg).unwrap();
    (r, sink.events)
}

fn record_reference(p: &Program, cfg: RunConfig) -> (interp::RunResult, Vec<interp::Event>) {
    let mut sink = RecordingSink::default();
    let r = interp::reference::run_with_config(p, &mut sink, cfg).unwrap();
    (r, sink.events)
}

#[test]
fn actor_streams_identical_to_reference_across_seeds_and_batch_caps() {
    for (name, p) in actor_programs() {
        for seed in [1u64, 0x5eed, u64::MAX / 3] {
            for batch_cap in [0usize, 7, 256] {
                let cfg = || RunConfig {
                    seed,
                    batch_cap,
                    ..Default::default()
                };
                let (nr, nev) = record(&p, cfg());
                let (rr, rev) = record_reference(&p, cfg());
                assert_eq!(
                    nev.len(),
                    rev.len(),
                    "{name} seed {seed} cap {batch_cap}: stream lengths differ"
                );
                if let Some(i) = (0..nev.len()).find(|&i| nev[i] != rev[i]) {
                    panic!(
                        "{name} seed {seed} cap {batch_cap}: first divergence at event {i}:\n  \
                         machine:   {:?}\n  reference: {:?}",
                        nev[i], rev[i]
                    );
                }
                assert_eq!(nr.ret, rr.ret, "{name}: return values differ");
                assert_eq!(nr.steps, rr.steps, "{name}: step counts differ");
                assert_eq!(nr.printed, rr.printed, "{name}: printed output differs");
                assert_eq!(nr.actors, rr.actors, "{name}: actor stats differ");
                assert!(!nev.is_empty(), "{name}: empty stream proves nothing");
            }
        }
    }
}

#[test]
fn actor_streams_identical_under_racy_delivery() {
    for (name, p) in actor_programs() {
        let cfg = || RunConfig {
            racy_delivery: true,
            buffer_cap: 8,
            ..Default::default()
        };
        let (_, nev) = record(&p, cfg());
        let (_, rev) = record_reference(&p, cfg());
        assert_eq!(nev, rev, "{name}: racy-mode streams differ");
    }
}

#[test]
fn engines_agree_on_actor_workloads() {
    // Every selectable engine consumes the same scheduler-interleaved
    // event stream, so the dependence sets must match bit-for-bit —
    // including the mailbox-slot RAW/WAR/WAW dependences the actor tier
    // introduces.
    for (name, p) in actor_programs() {
        let perfect = profiler::profile_program_with(
            &p,
            &profiler::ProfileConfig {
                engine: EngineKind::SerialPerfect,
                ..Default::default()
            },
        )
        .unwrap();
        let mbox = p.mailbox_symbol().expect("actor programs have mailboxes");
        assert!(
            perfect
                .deps
                .sorted()
                .iter()
                .any(|d| d.var == mbox && d.is_cross_thread()),
            "{name}: no cross-actor mailbox dependences observed"
        );
        for engine in [EngineKind::signature(1 << 20), EngineKind::parallel(4)] {
            let out = profiler::profile_program_with(
                &p,
                &profiler::ProfileConfig {
                    engine,
                    ..Default::default()
                },
            )
            .unwrap();
            assert_eq!(
                out.deps.sorted(),
                perfect.deps.sorted(),
                "{name}: {engine} diverged from SerialPerfect"
            );
            assert_eq!(
                out.actors, perfect.actors,
                "{name}: {engine} reported different actor stats"
            );
        }
    }
}

#[test]
fn actors_10k_deterministic_under_budget() {
    // The tier's acceptance pin: 10k actors complete under a 256M budget,
    // and two runs with the same scheduler seed reproduce the dependence
    // set, step count, and schedule (channel matrix) exactly.
    let p = workloads::by_name("actors_10k").unwrap().program().unwrap();
    let cfg = || profiler::ProfileConfig {
        engine: EngineKind::auto_for(&p),
        budget: profiler::Budget {
            max_memory_bytes: Some(256 << 20),
            deadline: None,
        },
        ..Default::default()
    };
    let a = profiler::profile_program_with(&p, &cfg()).unwrap();
    let b = profiler::profile_program_with(&p, &cfg()).unwrap();
    assert_eq!(
        a.deps.sorted(),
        b.deps.sorted(),
        "dependences not seed-stable"
    );
    assert_eq!(a.steps, b.steps, "schedule not seed-stable");
    assert_eq!(a.actors, b.actors, "channel matrix not seed-stable");
    let actors = a.actors.as_ref().expect("actors block present");
    assert_eq!(actors.spawned, 10_002);
    assert_eq!(actors.peak_live, 10_001, "all echoes live before draining");
}

#[test]
fn actors_10k_machine_matches_reference() {
    // The oracle holds at production task counts, not just on the small
    // topologies: byte-identical streams over ~10k park/wake cycles.
    let p = workloads::by_name("actors_10k").unwrap().program().unwrap();
    let (nr, nev) = record(&p, RunConfig::default());
    let (rr, rev) = record_reference(&p, RunConfig::default());
    assert_eq!(nev.len(), rev.len(), "stream lengths differ");
    if let Some(i) = (0..nev.len()).find(|&i| nev[i] != rev[i]) {
        panic!(
            "first divergence at event {i}:\n  machine:   {:?}\n  reference: {:?}",
            nev[i], rev[i]
        );
    }
    assert_eq!(nr.steps, rr.steps);
    assert_eq!(nr.printed, rr.printed);
    assert_eq!(nr.actors, rr.actors);
}
