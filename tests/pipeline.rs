//! End-to-end integration tests spanning every crate: compile → interpret →
//! profile (serial and parallel engines) → CUs → discovery → report.

use discopop::{analyze_source, render_report};

#[test]
fn full_pipeline_on_mixed_program() {
    let src = r#"
global float a[128];
global float b[128];
global float acc;
fn main() {
    for (int i = 0; i < 128; i = i + 1) {
        a[i] = i * 0.5;
    }
    for (int j = 1; j < 128; j = j + 1) {
        b[j] = b[j - 1] + a[j];
    }
    acc = 0.0;
    for (int k = 0; k < 128; k = k + 1) {
        acc += a[k] * b[k];
    }
    print(acc);
}
"#;
    let report = analyze_source(src, "mixed").unwrap();
    assert_eq!(report.discovery.loops.len(), 3);

    let class_of = |line: u32| {
        report
            .discovery
            .loops
            .iter()
            .find(|l| l.info.start_line == line)
            .map(|l| l.class)
            .unwrap()
    };
    assert_eq!(class_of(6), discovery::LoopClass::Doall, "init loop");
    assert!(
        matches!(
            class_of(9),
            discovery::LoopClass::Doacross | discovery::LoopClass::Sequential
        ),
        "prefix recurrence must not be parallel"
    );
    assert_eq!(class_of(13), discovery::LoopClass::Reduction, "dot product");

    // The recurrence must not appear among ranked suggestions; the DOALL
    // and reduction loops must.
    let ranked_lines: Vec<u32> = report
        .discovery
        .ranked
        .iter()
        .filter_map(|r| match &r.target {
            discovery::ranking::SuggestionTarget::Loop { start_line, .. } => Some(*start_line),
            _ => None,
        })
        .collect();
    assert!(ranked_lines.contains(&6));
    assert!(ranked_lines.contains(&13));
}

#[test]
fn serial_and_parallel_profilers_agree_end_to_end() {
    // Compare against the perfect-shadow baseline: with collision-free
    // signature sizes the parallel engine must be exact. (At small sizes,
    // one serial table and W partitioned worker tables collide
    // *differently*, so exact equality is only defined vs. perfect —
    // e.g. CG at 2^18 slots shows 6 collisions serially and 0 when
    // partitioned over 8 workers.)
    let w = workloads::by_name("CG").unwrap();
    let program = w.program().unwrap();
    let perfect = profiler::profile_program(&program).unwrap();
    let par = profiler::profile_parallel(
        &program,
        profiler::ParallelConfig {
            workers: 8,
            sig_slots: 1 << 22,
            ..Default::default()
        },
        interp::RunConfig::default(),
    )
    .unwrap();
    assert_eq!(perfect.deps.sorted(), par.deps.sorted());
}

#[test]
fn signature_accuracy_high_on_real_workload() {
    let w = workloads::by_name("kmeans").unwrap();
    let program = w.program().unwrap();
    let perfect = profiler::profile_program(&program).unwrap();
    let sig = profiler::profile_program_with(
        &program,
        &profiler::ProfileConfig {
            sig_slots: Some(1_000_000),
            ..Default::default()
        },
    )
    .unwrap();
    let (fpr, fnr) = sig.deps.accuracy_vs(&perfect.deps);
    assert!(fpr < 0.01, "false positive rate {fpr}");
    assert!(fnr < 0.01, "false negative rate {fnr}");
}

#[test]
fn skip_optimization_is_output_transparent_across_suites() {
    for name in ["MG", "dotprod", "histogram"] {
        let w = workloads::by_name(name).unwrap();
        let program = w.program().unwrap();
        let plain = profiler::profile_program(&program).unwrap();
        let skip = profiler::profile_program_with(
            &program,
            &profiler::ProfileConfig {
                skip_loops: true,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(
            plain.deps.sorted(),
            skip.deps.sorted(),
            "{name}: skipping changed the output"
        );
        assert!(
            skip.skip_stats.total_skipped > 0,
            "{name}: nothing was skipped"
        );
    }
}

#[test]
fn report_renders_for_every_textbook_program() {
    for w in workloads::suite(workloads::Suite::Textbook) {
        let program = w.program().unwrap();
        let report = discopop::analyze_program(&program).unwrap();
        let text = render_report(&program, &report);
        assert!(
            text.contains("Ranked parallelization opportunities"),
            "{}",
            w.name
        );
    }
}

#[test]
fn multithreaded_pipeline_with_locks_is_exact_on_locked_var() {
    let src = r#"
global int shared;
fn w(int n) {
    for (int i = 0; i < n; i = i + 1) {
        lock(7);
        shared = shared + 1;
        unlock(7);
    }
}
fn main() {
    int a = spawn(w, 30);
    int b = spawn(w, 30);
    join(a);
    join(b);
    print(shared);
}
"#;
    let program = interp::Program::new(lang::compile(src, "locked").unwrap());
    let out = profiler::profile_multithreaded_target(
        &program,
        profiler::ParallelConfig {
            workers: 4,
            ..Default::default()
        },
        interp::RunConfig::default(),
    )
    .unwrap();
    // Lock-ordered accesses must not be flagged as races.
    let shared_races: Vec<_> = out
        .deps
        .race_hints()
        .into_iter()
        .filter(|d| program.symbol(d.var) == "shared")
        .collect();
    assert!(
        shared_races.is_empty(),
        "lock-protected accesses flagged: {shared_races:?}"
    );
    // But cross-thread flow on the counter must be visible.
    assert!(out
        .deps
        .sorted()
        .iter()
        .any(|d| d.is_cross_thread() && program.symbol(d.var) == "shared"));
}
