//! End-to-end integration tests spanning every crate: compile → interpret →
//! profile (serial and parallel engines) → CUs → discovery → report, driven
//! through the staged `discopop::Analysis` API.

use discopop::{render_report, Analysis, Compiled, EngineKind};

#[test]
fn full_pipeline_on_mixed_program() {
    let src = r#"
global float a[128];
global float b[128];
global float acc;
fn main() {
    for (int i = 0; i < 128; i = i + 1) {
        a[i] = i * 0.5;
    }
    for (int j = 1; j < 128; j = j + 1) {
        b[j] = b[j - 1] + a[j];
    }
    acc = 0.0;
    for (int k = 0; k < 128; k = k + 1) {
        acc += a[k] * b[k];
    }
    print(acc);
}
"#;
    let mut analysis = Analysis::new();
    let compiled = analysis.compile(src, "mixed").unwrap();
    let profiled = analysis.profile(&compiled).unwrap();
    // The staged API exposes the profile before discovery runs.
    assert!(!profiled.deps().is_empty());
    assert!(profiled.pet().nodes.len() >= 4, "root + main + loops");
    let report = analysis.discover(&compiled, profiled);
    assert_eq!(report.discovery.loops.len(), 3);

    let class_of = |line: u32| {
        report
            .discovery
            .loops
            .iter()
            .find(|l| l.info.start_line == line)
            .map(|l| l.class)
            .unwrap()
    };
    assert_eq!(class_of(6), discovery::LoopClass::Doall, "init loop");
    assert!(
        matches!(
            class_of(9),
            discovery::LoopClass::Doacross | discovery::LoopClass::Sequential
        ),
        "prefix recurrence must not be parallel"
    );
    assert_eq!(class_of(13), discovery::LoopClass::Reduction, "dot product");

    // The recurrence must not appear among ranked suggestions; the DOALL
    // and reduction loops must.
    let ranked_lines: Vec<u32> = report
        .discovery
        .ranked
        .iter()
        .filter_map(|r| match &r.target {
            discovery::ranking::SuggestionTarget::Loop { start_line, .. } => Some(*start_line),
            _ => None,
        })
        .collect();
    assert!(ranked_lines.contains(&6));
    assert!(ranked_lines.contains(&13));
}

#[test]
fn serial_and_parallel_profilers_agree_end_to_end() {
    // With address-partitioned per-worker signatures
    // (EngineKind::parallel_worker_slots each) the parallel engine must be
    // exact against the perfect-shadow baseline on CG: partitioning spreads
    // the address set, so per-worker collisions vanish at sizes where one
    // serial table still collides.
    let w = workloads::by_name("CG").unwrap();
    let compiled = Compiled::new(w.program().unwrap());
    let mut analysis = Analysis::new();
    let perfect = analysis.profile(&compiled).unwrap();
    let parallel = analysis
        .engine_mut(EngineKind::parallel(8))
        .profile(&compiled)
        .unwrap();
    assert_eq!(perfect.deps().sorted(), parallel.deps().sorted());
    assert!(parallel.output.parallel.is_some());
}

#[test]
fn signature_accuracy_high_on_real_workload() {
    let w = workloads::by_name("kmeans").unwrap();
    let compiled = Compiled::new(w.program().unwrap());
    let mut analysis = Analysis::new();
    let perfect = analysis.profile(&compiled).unwrap();
    let sig = analysis
        .engine_mut(EngineKind::signature(1_000_000))
        .profile(&compiled)
        .unwrap();
    let (fpr, fnr) = sig.deps().accuracy_vs(perfect.deps());
    assert!(fpr < 0.01, "false positive rate {fpr}");
    assert!(fnr < 0.01, "false negative rate {fnr}");
}

#[test]
fn skip_optimization_is_output_transparent_across_suites() {
    for name in ["MG", "dotprod", "histogram"] {
        let w = workloads::by_name(name).unwrap();
        let compiled = Compiled::new(w.program().unwrap());
        let plain = Analysis::new().profile(&compiled).unwrap();
        let skip = Analysis::new().skip_loops(true).profile(&compiled).unwrap();
        assert_eq!(
            plain.deps().sorted(),
            skip.deps().sorted(),
            "{name}: skipping changed the output"
        );
        assert!(
            skip.output.skip_stats.total_skipped > 0,
            "{name}: nothing was skipped"
        );
    }
}

#[test]
fn report_renders_for_every_textbook_program() {
    for w in workloads::suite(workloads::Suite::Textbook) {
        let program = w.program().unwrap();
        let report = discopop::analyze_program(&program).unwrap();
        let text = render_report(&program, &report);
        assert!(
            text.contains("Ranked parallelization opportunities"),
            "{}",
            w.name
        );
    }
}

#[test]
fn json_report_of_workload_is_schema_valid() {
    let w = workloads::by_name("matmul").unwrap();
    let compiled = Compiled::new(w.program().unwrap());
    let mut analysis = Analysis::new();
    let report = analysis.analyze_compiled(&compiled).unwrap();
    let json = report.to_json_string(compiled.program());
    let doc = discopop::report::ReportDoc::from_json_str(&json).unwrap();
    assert_eq!(doc.schema_version, discopop::report::SCHEMA_VERSION);
    assert!(!doc.profile.dependences.is_empty());
    assert!(!doc.discovery.ranked.is_empty());
}

#[test]
fn multithreaded_pipeline_with_locks_is_exact_on_locked_var() {
    let src = r#"
global int shared;
fn w(int n) {
    for (int i = 0; i < n; i = i + 1) {
        lock(7);
        shared = shared + 1;
        unlock(7);
    }
}
fn main() {
    int a = spawn(w, 30);
    int b = spawn(w, 30);
    join(a);
    join(b);
    print(shared);
}
"#;
    let mut analysis = Analysis::new().engine(EngineKind::Parallel {
        workers: 4,
        chunk: 256,
        queue: profiler::QueueKind::LockFree,
    });
    let compiled = analysis.compile(src, "locked").unwrap();
    let profiled = analysis.profile_threads(&compiled).unwrap();
    let program = compiled.program();
    // Lock-ordered accesses must not be flagged as races.
    let shared_races: Vec<_> = profiled
        .deps()
        .race_hints()
        .into_iter()
        .filter(|d| program.symbol(d.var) == "shared")
        .collect();
    assert!(
        shared_races.is_empty(),
        "lock-protected accesses flagged: {shared_races:?}"
    );
    // But cross-thread flow on the counter must be visible.
    assert!(profiled
        .deps()
        .sorted()
        .iter()
        .any(|d| d.is_cross_thread() && program.symbol(d.var) == "shared"));
    let report = analysis.discover(&compiled, profiled);
    assert!(report.engine.starts_with("multithreaded:4x256"));
}
