//! Output-equivalence tests for the shadow-memory overhaul.
//!
//! The page-table shadow memory, fast-hash maps, and batched event pipeline
//! are pure throughput work: dependence output must be bit-identical to the
//! seed implementation. These tests pin that down on real workloads, for
//! both the merged [`profiler::DepSet`] and the rendered text format, and
//! for the multithreaded-target engine.

use interp::{Program, RunConfig, Sink};
use profiler::{
    control_spans, profile_multithreaded_target, profile_program, render_text, DepSet,
    EngineConfig, HashShadowMap, ParallelConfig, QueueKind, SerialProfiler,
};

fn program(src: &str) -> Program {
    Program::new(lang::compile(src, "equiv").unwrap())
}

/// Profile with the legacy `HashMap` shadow maps through today's pipeline.
fn profile_hashmap(p: &Program) -> (DepSet, profiler::Pet) {
    let mut prof = SerialProfiler::with_maps(
        HashShadowMap::new(),
        HashShadowMap::new(),
        p.num_mem_ops(),
        EngineConfig::default(),
        true,
    );
    let r = interp::run_with_config(p, &mut prof, RunConfig::default()).unwrap();
    let (deps, pet, _, _) = prof.finish(r.steps);
    (deps, pet)
}

/// A call-heavy program that exercises stack reuse + lifetime eviction
/// across page boundaries.
fn calls_program() -> Program {
    program(
        "global int acc;
fn leaf(int x) -> int { int t = x * 2; int u = t + 1; return u; }
fn mid(int n) -> int {
    int s = 0;
    for (int i = 0; i < n; i = i + 1) { s = s + leaf(i); }
    return s;
}
fn main() {
    for (int r = 0; r < 30; r = r + 1) { acc = acc + mid(40); }
}",
    )
}

/// The three sequential equivalence workloads: a NAS kernel, the textbook
/// matmul, and the call-heavy stack-reuse program.
fn workload_programs() -> Vec<(&'static str, Program)> {
    vec![
        ("MG", workloads::by_name("MG").unwrap().program().unwrap()),
        (
            "matmul",
            workloads::by_name("matmul").unwrap().program().unwrap(),
        ),
        ("calls", calls_program()),
    ]
}

#[test]
fn page_table_matches_hash_shadow_on_workloads() {
    for (name, p) in workload_programs() {
        let new = profile_program(&p).unwrap();
        let (old_deps, old_pet) = profile_hashmap(&p);
        assert_eq!(
            new.deps.sorted(),
            old_deps.sorted(),
            "{name}: dependence sets differ"
        );
        assert_eq!(
            new.deps.total_found, old_deps.total_found,
            "{name}: pre-merge totals differ"
        );
        // Occurrence counts, not just the merged set.
        for d in new.deps.sorted() {
            assert_eq!(
                new.deps.count(&d),
                old_deps.count(&d),
                "{name}: count differs for {d:?}"
            );
        }
        // Rendered text format, including BGN/END control spans.
        let sym = |s: u32| p.symbol(s).to_string();
        let new_text = render_text(&new.deps, &sym, &control_spans(&p, &new.pet), false);
        let old_text = render_text(&old_deps, &sym, &control_spans(&p, &old_pet), false);
        assert_eq!(new_text, old_text, "{name}: rendered text differs");
        assert!(!new_text.is_empty());
    }
}

#[test]
fn seed_pipeline_reconstruction_matches_current() {
    // The full pre-overhaul pipeline (HashMap shadow + SipHash dep store +
    // allocating carried-by + per-event delivery), reconstructed in
    // `bench::seed_baseline`, against today's engine.
    for (name, p) in workload_programs() {
        let seed = bench::seed_baseline::profile_seed(&p).unwrap();
        let new = profile_program(&p).unwrap();
        assert_eq!(seed.sorted(), new.deps.sorted(), "{name}: deps differ");
        assert_eq!(seed.total_found, new.deps.total_found, "{name}");
    }
}

#[test]
fn batching_is_invisible_to_sinks() {
    // The identical event stream must reach a sink regardless of the batch
    // granularity (1 = unbatched path, 7 = ragged tail, 256 = default).
    let p = calls_program();
    let record = |batch_cap: usize| {
        let mut sink = interp::RecordingSink::default();
        interp::run_with_config(
            &p,
            &mut sink,
            RunConfig {
                batch_cap,
                ..Default::default()
            },
        )
        .unwrap();
        sink.events
    };
    let unbatched = record(0);
    assert_eq!(unbatched, record(7));
    assert_eq!(unbatched, record(256));
    assert!(!unbatched.is_empty());
}

#[test]
fn batch_cap_does_not_change_dependences() {
    for (name, p) in workload_programs() {
        let run = |batch_cap: usize| {
            profiler::profile_program_with(
                &p,
                &profiler::ProfileConfig {
                    run: RunConfig {
                        batch_cap,
                        ..Default::default()
                    },
                    ..Default::default()
                },
            )
            .unwrap()
        };
        let batched = run(256);
        let unbatched = run(0);
        assert_eq!(
            batched.deps.sorted(),
            unbatched.deps.sorted(),
            "{name}: batching changed dependences"
        );
        assert_eq!(
            batched.skip_stats.total_accesses,
            unbatched.skip_stats.total_accesses
        );
    }
}

#[test]
fn engine_kinds_agree_on_workloads() {
    // The acceptance bar of the engine-explicit API: every selectable
    // engine produces the identical dependence set on the equivalence
    // suite, with `EngineKind::Parallel` matching `SerialPerfect`
    // bit-for-bit.
    use profiler::EngineKind;
    for (name, p) in [
        ("MG", workloads::by_name("MG").unwrap().program().unwrap()),
        (
            "matmul",
            workloads::by_name("matmul").unwrap().program().unwrap(),
        ),
    ] {
        let perfect = profiler::profile_program_with(
            &p,
            &profiler::ProfileConfig {
                engine: EngineKind::SerialPerfect,
                ..Default::default()
            },
        )
        .unwrap();
        for engine in [
            EngineKind::signature(1 << 20),
            EngineKind::parallel(4),
            EngineKind::parallel(8),
            EngineKind::Parallel {
                workers: 4,
                chunk: 32,
                queue: QueueKind::LockBased,
            },
        ] {
            let out = profiler::profile_program_with(
                &p,
                &profiler::ProfileConfig {
                    engine,
                    ..Default::default()
                },
            )
            .unwrap();
            assert_eq!(
                out.deps.sorted(),
                perfect.deps.sorted(),
                "{name}: {engine} diverged from SerialPerfect"
            );
            assert_eq!(
                out.deps.total_found, perfect.deps.total_found,
                "{name}: {engine} pre-merge totals differ"
            );
        }
    }
}

/// The adaptive parallel engine must stay bit-for-bit identical to
/// `serial-perfect` on real workloads across transport shapes: worker,
/// chunk, and queue-capacity sweeps; inline-only runs; forced spawning
/// (threshold 0 exercises the builder hand-off on any host); and a
/// rebalance-triggering run.
#[test]
fn adaptive_parallel_matches_perfect_across_configs() {
    for (name, p) in [
        ("MG", workloads::by_name("MG").unwrap().program().unwrap()),
        ("CG", workloads::by_name("CG").unwrap().program().unwrap()),
        (
            "matmul",
            workloads::by_name("matmul").unwrap().program().unwrap(),
        ),
    ] {
        let perfect = profile_program(&p).unwrap();
        let configs = [
            // (workers, chunk ceiling, queue cap, spawn threshold)
            (2, 16, 8, u64::MAX),    // inline, tiny chunks
            (4, 64, 64, u64::MAX),   // inline, mid
            (8, 256, 512, u64::MAX), // inline, default shape
            (4, 64, 8, 0),           // spawned from access 0
            (3, 32, 16, 1 << 12),    // escalates mid-run
        ];
        for (workers, chunk, queue_cap, spawn_threshold) in configs {
            let cfg = ParallelConfig {
                workers,
                chunk_size: chunk,
                queue_cap,
                spawn_threshold,
                rebalance_interval: 0,
                ..Default::default()
            };
            let par = profiler::profile_parallel(&p, cfg, RunConfig::default()).unwrap();
            assert_eq!(
                par.deps.sorted(),
                perfect.deps.sorted(),
                "{name}: parallel {workers}w x{chunk} q{queue_cap} t{spawn_threshold} diverged"
            );
            assert_eq!(
                par.deps.total_found, perfect.deps.total_found,
                "{name}: pre-merge totals differ"
            );
            for d in par.deps.sorted() {
                assert_eq!(
                    par.deps.count(&d),
                    perfect.deps.count(&d),
                    "{name}: occurrence count differs for {d:?}"
                );
            }
        }
        // Rebalance-triggering runs, all modes: inline (partition merges),
        // spawned (exact hot-address migration), and a mid-run escalation
        // after possible merges (partition compaction hand-off).
        for spawn_threshold in [u64::MAX, 0, 1 << 13] {
            let cfg = ParallelConfig {
                workers: 8,
                chunk_size: 32,
                queue_cap: 64,
                spawn_threshold,
                rebalance_interval: 5,
                ..Default::default()
            };
            let par = profiler::profile_parallel(&p, cfg, RunConfig::default()).unwrap();
            assert_eq!(
                par.deps.sorted(),
                perfect.deps.sorted(),
                "{name}: rebalancing run (threshold {spawn_threshold}) diverged"
            );
            assert_eq!(par.deps.total_found, perfect.deps.total_found);
        }
    }
}

#[test]
fn multithreaded_target_matches_serial_replay() {
    // Lock-ordered multithreaded target: every cross-thread access to the
    // shared counter is serialized, so the parallel MPSC engine must agree
    // exactly with a serial replay of the recorded stream through the
    // legacy HashMap shadow.
    let src = "global int counter;
fn w(int n) { for (int i = 0; i < n; i = i + 1) { lock(1); counter = counter + 1; unlock(1); } }
fn main() { int a = spawn(w, 30); int b = spawn(w, 30); join(a); join(b); }";
    let p = program(src);

    let par = profile_multithreaded_target(
        &p,
        ParallelConfig {
            workers: 4,
            chunk_size: 16,
            sig_slots: 1 << 18,
            queue: QueueKind::LockFree,
            queue_cap: 64,
            rebalance_interval: 0,
            ..Default::default()
        },
        RunConfig::default(),
    )
    .unwrap();

    // Serial replay baseline over the same recorded execution.
    let mut rec = interp::RecordingSink::default();
    interp::run_with_config(&p, &mut rec, RunConfig::default()).unwrap();
    let mut serial = SerialProfiler::with_maps(
        HashShadowMap::new(),
        HashShadowMap::new(),
        p.num_mem_ops(),
        EngineConfig::default(),
        true,
    );
    for ev in &rec.events {
        serial.event(ev);
    }
    let (serial_deps, _, _, _) = serial.finish(0);

    assert_eq!(
        par.deps.sorted(),
        serial_deps.sorted(),
        "multithreaded engine diverged from serial replay"
    );
    assert!(par.deps.sorted().iter().any(|d| d.is_cross_thread()));
}

#[test]
fn multithreaded_target_is_deterministic() {
    let src = "global int counter;
fn w(int n) { for (int i = 0; i < n; i = i + 1) { lock(9); counter = counter + 2; unlock(9); } }
fn main() { int a = spawn(w, 25); int b = spawn(w, 25); join(a); join(b); }";
    let p = program(src);
    let cfg = || ParallelConfig {
        workers: 4,
        chunk_size: 8,
        sig_slots: 1 << 18,
        queue: QueueKind::LockFree,
        queue_cap: 64,
        rebalance_interval: 0,
        ..Default::default()
    };
    let a = profile_multithreaded_target(&p, cfg(), RunConfig::default()).unwrap();
    let b = profile_multithreaded_target(&p, cfg(), RunConfig::default()).unwrap();
    assert_eq!(a.deps.sorted(), b.deps.sorted());
}
