//! Detection-quality integration test: run discovery over every annotated
//! workload loop and check the verdicts against ground truth — the
//! mechanism behind the Table 4.1 recall numbers.

use discovery::LoopClass;

/// Classify one annotated loop of a workload.
fn verdict(w: &workloads::Workload, marker: &str) -> (LoopClass, bool) {
    let program = w.program().unwrap();
    let out = profiler::profile_program(&program).unwrap();
    let d = discovery::discover(&program, &out.deps, &out.pet);
    let line = w.line_of(marker).unwrap();
    let l = d
        .loops
        .iter()
        .find(|l| l.info.start_line == line)
        .unwrap_or_else(|| panic!("{}: loop at line {line} not analysed", w.name));
    let parallel = matches!(l.class, LoopClass::Doall | LoopClass::Reduction);
    (l.class, parallel)
}

#[test]
fn nas_detection_recall_is_high() {
    // Table 4.1: DiscoPoP identifies 92.5% of the parallelizable NAS
    // loops. Our stand-ins must reach at least that recall, with no
    // false positives on annotated sequential loops.
    let mut total_parallel = 0;
    let mut found_parallel = 0;
    let mut false_positives = Vec::new();
    for w in workloads::suite(workloads::Suite::Nas) {
        let program = w.program().unwrap();
        let out = profiler::profile_program(&program).unwrap();
        let d = discovery::discover(&program, &out.deps, &out.pet);
        for t in w.truths {
            let line = w.line_of(t.marker).unwrap();
            let l = d
                .loops
                .iter()
                .find(|l| l.info.start_line == line)
                .unwrap_or_else(|| panic!("{}: loop `{}` missing", w.name, t.marker));
            let detected = matches!(l.class, LoopClass::Doall | LoopClass::Reduction);
            if t.parallel {
                total_parallel += 1;
                if detected {
                    found_parallel += 1;
                }
            } else if detected {
                false_positives.push(format!("{}:{} ({})", w.name, line, t.note));
            }
        }
    }
    let recall = found_parallel as f64 / total_parallel as f64;
    assert!(
        recall >= 0.925,
        "NAS recall {recall:.3} below the paper's 92.5% ({found_parallel}/{total_parallel})"
    );
    assert!(
        false_positives.is_empty(),
        "sequential loops wrongly declared parallel: {false_positives:?}"
    );
}

#[test]
fn reduction_flags_match_annotations() {
    for w in workloads::suite(workloads::Suite::Textbook) {
        for t in w.truths.iter().filter(|t| t.parallel && t.reduction) {
            let (class, _) = verdict(&w, t.marker);
            assert_eq!(
                class,
                LoopClass::Reduction,
                "{}: `{}` should be a reduction",
                w.name,
                t.note
            );
        }
    }
}

#[test]
fn sequential_truths_never_doall_anywhere() {
    for w in workloads::all() {
        if w.parallel_target {
            continue;
        }
        for t in w.truths.iter().filter(|t| !t.parallel) {
            let (class, parallel) = verdict(&w, t.marker);
            assert!(
                !parallel,
                "{}: `{}` ({}) wrongly {class:?}",
                w.name, t.marker, t.note
            );
        }
    }
}

#[test]
fn starbench_verdicts_match_annotations() {
    // The Starbench remainder (kmeans, md5, tinyjpeg, bodytrack, h264dec,
    // the rotate/ray family, …): every annotated loop verdict on the
    // sequential stand-ins matches its ground truth.
    let mut checked = 0;
    for w in workloads::suite(workloads::Suite::Starbench) {
        if w.parallel_target {
            continue;
        }
        for t in w.truths {
            let (class, parallel) = verdict(&w, t.marker);
            assert_eq!(
                parallel, t.parallel,
                "{}: `{}` ({}) got {class:?}",
                w.name, t.marker, t.note
            );
            checked += 1;
        }
    }
    assert!(
        checked >= 25,
        "too few annotated Starbench loops: {checked}"
    );
}

#[test]
fn full_corpus_verdicts_match_annotations() {
    // Every sequential workload in every suite — NAS, Starbench, BOTS,
    // Apps, PARSEC, Textbook — gets the correct parallel/sequential
    // decision on every annotated loop. The detection suite covers the
    // whole corpus, not a per-suite sample.
    let mut checked = 0;
    for w in workloads::all() {
        if w.parallel_target {
            continue;
        }
        for t in w.truths {
            let (class, parallel) = verdict(&w, t.marker);
            assert_eq!(
                parallel, t.parallel,
                "{}: `{}` ({}) got {class:?}",
                w.name, t.marker, t.note
            );
            checked += 1;
        }
    }
    assert!(
        checked >= 80,
        "corpus shrank: only {checked} annotated loops"
    );
}

#[test]
fn actor_workloads_report_communication_patterns() {
    // The actor family is judged on communication structure rather than
    // loop classes: the profiler's `actors` block and the mailbox
    // dependence view must reproduce each topology.
    let run = |name: &str| {
        let w = workloads::by_name(name).unwrap();
        let p = w.program().unwrap();
        let out = profiler::profile_program(&p).unwrap();
        let actors = out.actors.clone().expect("actors block present");
        let comm = apps::actor_comm(
            &actors.channels,
            actors.spawned as usize,
            &out.deps,
            p.mailbox_symbol(),
        );
        (actors, comm)
    };

    let (actors, comm) = run("actor_pipeline");
    assert_eq!(actors.spawned, 3);
    assert_eq!(actors.channels, vec![(0, 2, 65), (1, 0, 1), (2, 1, 65)]);
    assert!(comm.handoff_deps > 0, "pipeline handoffs are RAW deps");

    let (actors, comm) = run("actor_ring");
    assert_eq!(actors.spawned, 9);
    assert_eq!(comm.matrix.pattern(), "nearest-neighbour");

    let (actors, comm) = run("actor_fanout");
    assert_eq!(actors.spawned, 9);
    // 8 workers × (16 items + sentinel) out, 8 partials back.
    assert_eq!(actors.sent, 8 * 17 + 8);
    assert!(comm.capacity_deps > 0 || comm.handoff_deps > 0);
}

#[test]
fn bots_hot_spots_all_get_correct_decisions() {
    // §4.4.3: "correct parallelization decisions on all the 20 hot spots
    // from the Barcelona OpenMP Task Suite". Here: every annotated BOTS
    // loop verdict matches its truth.
    let mut checked = 0;
    for w in workloads::suite(workloads::Suite::Bots) {
        for t in w.truths {
            let (class, parallel) = verdict(&w, t.marker);
            assert_eq!(
                parallel, t.parallel,
                "{}: `{}` ({}) got {class:?}",
                w.name, t.marker, t.note
            );
            checked += 1;
        }
    }
    assert!(checked >= 8, "too few annotated BOTS hot spots: {checked}");
}
