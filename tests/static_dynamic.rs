//! Static-vs-dynamic cross-check suite: every independence claim the
//! static pre-pass proves must survive dynamic profiling under every
//! engine, and — independently of the profiler — must agree with a
//! brute-force enumeration oracle over the generated loop's actual index
//! sets. A single surviving contradiction means the affine classifier or
//! the GCD/interval solver is unsound, so these tests are the gate for
//! both.

use discopop::{Analysis, StaticReport};
use profiler::EngineKind;
use proptest::prelude::*;

/// The engines the cross-check must hold under. The signature engine gets
/// enough slots to be collision-free on these programs (the paper runs
/// 1e6–1e8 slots; the hash is deterministic, so so is this property):
/// signature collisions manufacture *false* dependences, which would
/// contradict a perfectly sound claim — the oracle test below is the
/// collision-immune soundness check.
fn engines() -> Vec<EngineKind> {
    vec![
        EngineKind::SerialPerfect,
        EngineKind::SerialSignature { slots: 1 << 22 },
        EngineKind::parallel(2),
    ]
}

/// Run one source through static analysis + dynamic profiling under
/// `engine` and return (static report, cross-check violations).
fn check(src: &str, name: &str, engine: EngineKind) -> (StaticReport, usize) {
    let mut analysis = Analysis::new().engine(engine).with_static(true);
    let compiled = analysis.compile(src, name).expect("compiles");
    let report = analysis.analyze_compiled(&compiled).expect("profiles");
    let statics = report.statics.clone().expect("static pre-pass ran");
    let violations = discopop::cross_check(compiled.program(), &statics, &report.profile.deps);
    for v in &violations {
        eprintln!("cross-check violation in {name}: {v}");
    }
    (statics, violations.len())
}

// ---------------------------------------------------------------------------
// Deterministic cases
// ---------------------------------------------------------------------------

/// A genuine loop-carried recurrence: the static pass must never claim
/// the a[j] / a[j-1] line independent, so the cross-check stays clean
/// even though the dynamic profiler observes the carried RAW every
/// iteration.
#[test]
fn carried_recurrence_is_never_claimed() {
    let src = "global int a[32];\n\
               fn main() {\n\
                   for (int j = 1; j < 32; j = j + 1) {\n\
                       a[j] = a[j - 1] + 1;\n\
                   }\n\
               }\n";
    for engine in engines() {
        let (statics, violations) = check(src, "recurrence", engine);
        assert!(
            statics.claims.iter().all(|c| c.var_name != "a"),
            "no independence claim on the recurrence: {:?}",
            statics.claims
        );
        assert_eq!(violations, 0, "engine {engine:?}");
    }
}

/// Strided disjoint accesses (even writes, odd reads): provable by the
/// GCD test, and the dynamic run must confirm it under every engine.
#[test]
fn strided_disjoint_claim_survives_every_engine() {
    let src = "global int a[64];\n\
               fn main() {\n\
                   for (int i = 0; i < 31; i = i + 1) {\n\
                       a[2 * i] = a[2 * i + 1] + 1;\n\
                   }\n\
               }\n";
    for engine in engines() {
        let (statics, violations) = check(src, "strided", engine);
        assert!(
            statics.claims.iter().any(|c| c.var_name == "a"),
            "the even/odd split is statically provable: {:?}",
            statics.claims
        );
        assert_eq!(violations, 0, "engine {engine:?}");
    }
}

/// The acceptance benchmark: on at least two real workloads the affine
/// classifier must resolve at least half of all in-loop memory operations,
/// and the resulting claims must survive the dynamic cross-check.
#[test]
fn affine_coverage_at_least_half_on_workloads() {
    let mut covered = 0;
    for name in ["matmul", "dotprod"] {
        let w = workloads::by_name(name).expect("workload exists");
        let (statics, violations) = check(w.source, w.name, EngineKind::SerialPerfect);
        let (affine, total) = statics.coverage();
        eprintln!("{name}: {affine}/{total} affine in-loop mem ops");
        assert!(total > 0, "{name} has in-loop memory traffic");
        assert!(
            statics.affine_fraction() >= 0.5,
            "{name}: {affine}/{total} below the 50% bar"
        );
        assert_eq!(violations, 0, "{name} cross-check");
        covered += 1;
    }
    assert_eq!(covered, 2);
}

/// Every sequential textbook workload cross-checks clean under every
/// engine: no statically proven independence is ever contradicted by an
/// observed dependence.
#[test]
fn textbook_workloads_cross_check_clean_across_engines() {
    for w in workloads::suite(workloads::Suite::Textbook) {
        if w.parallel_target {
            continue; // spawning targets suppress claims; nothing to check
        }
        for engine in engines() {
            let (_, violations) = check(w.source, w.name, engine);
            assert_eq!(violations, 0, "{} under {engine:?}", w.name);
        }
    }
}

// ---------------------------------------------------------------------------
// Generated affine loop nests
// ---------------------------------------------------------------------------

/// One generated statement inside the loop body; all indices stay inside
/// `a[64]`/`b[64]` by construction (stride ≤ 3, offset ≤ 7, trip ≤ 16 →
/// max index 3·15+7 = 52).
#[derive(Debug, Clone, Copy)]
enum Stmt {
    /// `a[c1*i + d1] = a[c2*i + d2] + 1;` — write and read of `a`.
    RewriteA { c1: i64, d1: i64, c2: i64, d2: i64 },
    /// `b[c1*i + d1] = a[c2*i + d2];` — write `b`, read `a`.
    Copy { c1: i64, d1: i64, c2: i64, d2: i64 },
    /// `s = s + a[c2*i + d2];` — scalar reduction, read `a`.
    Reduce { c2: i64, d2: i64 },
}

/// A generated single-loop program plus everything the oracle needs.
#[derive(Debug, Clone)]
struct Nest {
    trip: i64,
    stmts: Vec<Stmt>,
}

fn idx(c: i64, d: i64) -> String {
    format!("{c} * i + {d}")
}

impl Nest {
    fn source(&self) -> String {
        let mut body = String::new();
        for s in &self.stmts {
            let line = match *s {
                Stmt::RewriteA { c1, d1, c2, d2 } => {
                    format!("a[{}] = a[{}] + 1;", idx(c1, d1), idx(c2, d2))
                }
                Stmt::Copy { c1, d1, c2, d2 } => {
                    format!("b[{}] = a[{}];", idx(c1, d1), idx(c2, d2))
                }
                Stmt::Reduce { c2, d2 } => format!("s = s + a[{}];", idx(c2, d2)),
            };
            body.push_str("        ");
            body.push_str(&line);
            body.push('\n');
        }
        format!(
            "global int a[64];\nglobal int b[64];\nglobal int s;\n\
             fn main() {{\n    for (int i = 0; i < {}; i = i + 1) {{\n{body}    }}\n}}\n",
            self.trip
        )
    }

    /// All accesses of `var` as (line, iteration, element index, is_write).
    /// Lines follow `source()` exactly: statement k sits on line 6 + k.
    fn accesses_of(&self, var: &str) -> Vec<(u32, i64, i64, bool)> {
        let mut out = Vec::new();
        for (k, s) in self.stmts.iter().enumerate() {
            let line = 6 + k as u32;
            for i in 0..self.trip {
                match *s {
                    Stmt::RewriteA { c1, d1, c2, d2 } => {
                        if var == "a" {
                            out.push((line, i, c2 * i + d2, false));
                            out.push((line, i, c1 * i + d1, true));
                        }
                    }
                    Stmt::Copy { c1, d1, c2, d2 } => {
                        if var == "a" {
                            out.push((line, i, c2 * i + d2, false));
                        }
                        if var == "b" {
                            out.push((line, i, c1 * i + d1, true));
                        }
                    }
                    Stmt::Reduce { c2, d2 } => {
                        if var == "a" {
                            out.push((line, i, c2 * i + d2, false));
                        }
                        if var == "s" {
                            out.push((line, i, 0, false));
                            out.push((line, i, 0, true));
                        }
                    }
                }
            }
        }
        out
    }

    /// Brute-force oracle: true iff a loop-carried conflict (same element,
    /// different iterations, at least one write) exists between the two
    /// lines for `var`.
    fn carried_conflict(&self, var: &str, line_a: u32, line_b: u32) -> bool {
        let accs = self.accesses_of(var);
        accs.iter().any(|&(la, ia, ea, wa)| {
            la == line_a
                && accs
                    .iter()
                    .any(|&(lb, ib, eb, wb)| lb == line_b && ia != ib && ea == eb && (wa || wb))
        })
    }
}

fn nests() -> impl Strategy<Value = Nest> {
    (
        4i64..16,
        prop::collection::vec((0u32..3, 0i64..4, 0i64..8, 0i64..4, 0i64..8), 1..4),
    )
        .prop_map(|(trip, raw)| Nest {
            trip,
            stmts: raw
                .into_iter()
                .map(|(kind, c1, d1, c2, d2)| match kind {
                    0 => Stmt::RewriteA { c1, d1, c2, d2 },
                    1 => Stmt::Copy { c1, d1, c2, d2 },
                    _ => Stmt::Reduce { c2, d2 },
                })
                .collect(),
        })
}

proptest! {
    /// Soundness against the enumeration oracle: every claim the static
    /// pass makes about a generated nest is confirmed by brute-force
    /// enumeration of the loop's actual index sets. This is the
    /// profiler-independent half of the cross-check (immune to signature
    /// collisions and engine quirks).
    #[test]
    fn static_claims_sound_against_enumeration_oracle(nest in nests()) {
        let src = nest.source();
        let module = lang::compile(&src, "gen").expect("generated nest compiles");
        let statics = StaticReport::of(&module);
        for c in &statics.claims {
            prop_assert!(
                !nest.carried_conflict(&c.var_name, c.line_a, c.line_b),
                "unsound claim {}:{}-{} in\n{src}",
                c.var_name, c.line_a, c.line_b
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    /// The full dynamic cross-check on generated nests, under every
    /// engine: profiling must never observe a dependence that the static
    /// pass proved away.
    #[test]
    fn generated_nests_cross_check_clean(nest in nests()) {
        let src = nest.source();
        for engine in engines() {
            let (_, violations) = check(&src, "gen", engine);
            prop_assert!(violations == 0, "{engine:?} on\n{src}");
        }
    }
}
